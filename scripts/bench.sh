#!/usr/bin/env bash
# Run the benchmark harnesses and refresh the committed reports.
#
#   scripts/bench.sh [perf]  [args...]   pipeline harness -> BENCH_pipeline.json
#   scripts/bench.sh serve   [args...]   serving sweep    -> BENCH_serve.json
#   scripts/bench.sh all     [args...]   both, same args forwarded to each
#
# With no subcommand (or when the first argument is a flag) the pipeline
# harness runs, so existing `scripts/bench.sh --quick` invocations keep
# working.  Extra arguments are forwarded to the harness (e.g. --quick,
# --output /tmp/report.json).
set -euo pipefail

cd "$(dirname "$0")/.."

subcommand="perf"
case "${1:-}" in
    perf|serve|all)
        subcommand="$1"
        shift
        ;;
esac

case "$subcommand" in
    perf)
        PYTHONPATH=src python benchmarks/bench_perf.py "$@"
        ;;
    serve)
        PYTHONPATH=src python benchmarks/bench_serve.py "$@"
        ;;
    all)
        PYTHONPATH=src python benchmarks/bench_perf.py "$@"
        PYTHONPATH=src python benchmarks/bench_serve.py "$@"
        ;;
esac
