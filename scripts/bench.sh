#!/usr/bin/env bash
# Run the benchmark harnesses and refresh the committed reports.
#
#   scripts/bench.sh [perf]  [args...]   pipeline harness -> BENCH_pipeline.json
#   scripts/bench.sh serve   [args...]   serving sweep    -> BENCH_serve.json
#   scripts/bench.sh serve-smoke         quick serving sweep to a temp file,
#                                        asserting goodput holds under overload
#   scripts/bench.sh fleet-smoke         quick pipeline run to a temp file,
#                                        asserting the 4-worker fleet scaling
#                                        point composes to >= 2.5x batched
#   scripts/bench.sh detectors [args...] detector accuracy matrix
#                                        -> BENCH_detectors.json
#   scripts/bench.sh cascade [args...]   tiered-cascade frontier
#                                        -> BENCH_cascade.json
#   scripts/bench.sh cascade-smoke       quick cascade frontier to a temp
#                                        file, asserting the cascade is
#                                        >= 3x cheaper than always-on DI
#                                        within 2x its abrupt delay
#   scripts/bench.sh all     [args...]   perf + serve + detectors + cascade,
#                                        same args to each
#
# With no subcommand (or when the first argument is a flag) the pipeline
# harness runs, so existing `scripts/bench.sh --quick` invocations keep
# working.  Extra arguments are forwarded to the harness (e.g. --quick,
# --output /tmp/report.json).
set -euo pipefail

cd "$(dirname "$0")/.."

subcommand="perf"
case "${1:-}" in
    perf|serve|serve-smoke|fleet-smoke|detectors|cascade|cascade-smoke|all)
        subcommand="$1"
        shift
        ;;
esac

case "$subcommand" in
    perf)
        PYTHONPATH=src python benchmarks/bench_perf.py "$@"
        ;;
    serve)
        PYTHONPATH=src python benchmarks/bench_serve.py "$@"
        ;;
    serve-smoke)
        # quick sweep to a throwaway file, then hold the overload layer to
        # the same bar the committed report meets: at 2x offered load,
        # goodput >= 80% of capacity with both overload outcomes firing
        smoke_dir="$(mktemp -d)"
        trap 'rm -rf "$smoke_dir"' EXIT
        PYTHONPATH=src python benchmarks/bench_serve.py --quick \
            --output "$smoke_dir/serve_smoke.json" > /dev/null
        PYTHONPATH=src python - "$smoke_dir/serve_smoke.json" <<'PY'
import sys
from repro.serve import load_serve_report
report = load_serve_report(sys.argv[1])
assert report["quick"], "smoke pass must be flagged quick"
capacity = report["capacity_fps"]
saturated = [e for e in report["sweep"] if e["offered_load"] >= 1.0]
assert saturated, "sweep must cover saturation"
peak = max(saturated, key=lambda e: e["offered_load"])
totals = peak["totals"]
assert peak["offered_load"] >= 2.0, "sweep must reach 2x offered load"
assert totals["goodput_fps"] >= 0.8 * capacity, (
    f"goodput collapsed at {peak['offered_load']}x: "
    f"{totals['goodput_fps']:.1f} fps vs capacity {capacity:.1f} fps")
assert totals["degraded"] > 0, "degraded pass never fired"
assert totals["rejected_infeasible"] > 0, "no infeasible rejections"
print(f"serve smoke OK: goodput {totals['goodput_fps']:.1f} fps at "
      f"{peak['offered_load']}x load (capacity {capacity:.1f} fps, "
      f"{totals['degraded']} degraded, "
      f"{totals['rejected_infeasible']} rejected infeasible)")
PY
        ;;
    fleet-smoke)
        # quick pipeline harness to a throwaway file, then hold the fleet
        # composition to its bar: the 4-worker sweep point must compose
        # batched kernels with the shard plan's parallelism to >= 2.5x the
        # single-process batched mode (the plan factor is deterministic,
        # so this gate never flakes on a loaded or single-core CI host)
        smoke_dir="$(mktemp -d)"
        trap 'rm -rf "$smoke_dir"' EXIT
        PYTHONPATH=src python benchmarks/bench_perf.py --quick \
            --output "$smoke_dir/fleet_smoke.json" > /dev/null
        PYTHONPATH=src python - "$smoke_dir/fleet_smoke.json" <<'PY'
import sys
from repro.parallel import load_bench_report
report = load_bench_report(sys.argv[1])
assert report["quick"], "smoke pass must be flagged quick"
batched = report["modes"]["batched"]["speedup_vs_sequential"]
assert batched > 1.0, f"batched kernel lost to sequential: {batched}x"
points = [e for e in report["scaling"] if e["workers"] == 4]
assert points, "scaling sweep is missing the 4-worker point"
point = min(points, key=lambda e: e["streams"])
speedup = point["speedup_vs_sequential"]
assert speedup >= 2.5 * batched, (
    f"fleet(4 workers, batched) composed to {speedup:.2f}x sequential; "
    f"needs >= 2.5x the batched mode's {batched:.2f}x")
print(f"fleet smoke OK: 4 workers x {point['streams']} streams -> "
      f"{speedup:.2f}x sequential ({speedup / batched:.2f}x batched, "
      f"balance {point['balance']:.3f}, {point['steals']} steals)")
PY
        ;;
    detectors)
        PYTHONPATH=src python benchmarks/bench_detectors.py "$@"
        ;;
    cascade)
        PYTHONPATH=src python benchmarks/bench_cascade.py "$@"
        ;;
    cascade-smoke)
        # quick frontier to a throwaway file, then hold the headline
        # cascade mode to the ISSUE bars: stationary escalation <= 20% at
        # >= 3x lower simulated cost than always-on DI, and abrupt
        # detection delay within 2x of the always-on ceiling
        smoke_dir="$(mktemp -d)"
        trap 'rm -rf "$smoke_dir"' EXIT
        PYTHONPATH=src python benchmarks/bench_cascade.py --quick \
            --output "$smoke_dir/cascade_smoke.json" > /dev/null
        PYTHONPATH=src python - "$smoke_dir/cascade_smoke.json" <<'PY'
import sys
from repro.cascade import frontier_summary, load_cascade_report
report = load_cascade_report(sys.argv[1])
assert report["quick"], "smoke pass must be flagged quick"
summary = frontier_summary(report)
cascade = summary[report["default_mode"]]
always = summary["always-on-di"]
assert cascade["stationary_escalated_pct"] <= 20.0, (
    f"stationary escalation {cascade['stationary_escalated_pct']:.1f}% "
    f"blew the 20% budget")
assert cascade["stationary_us_per_frame"] <= \
    always["stationary_us_per_frame"] / 3.0, (
    f"cascade costs {cascade['stationary_us_per_frame']:.0f} us/frame; "
    f"needs >= 3x under always-on DI's "
    f"{always['stationary_us_per_frame']:.0f}")
assert cascade["abrupt_detected_runs"] == always["abrupt_detected_runs"], (
    "cascade missed an abrupt drift the always-on DI caught")
assert cascade["abrupt_delay"] <= 2.0 * always["abrupt_delay"], (
    f"abrupt delay {cascade['abrupt_delay']:.1f} frames; needs <= 2x "
    f"always-on DI's {always['abrupt_delay']:.1f}")
print(f"cascade smoke OK: {report['default_mode']} at "
      f"{cascade['stationary_us_per_frame']:.0f} us/frame "
      f"({cascade['stationary_escalated_pct']:.1f}% escalated, "
      f"abrupt delay {cascade['abrupt_delay']:.1f} vs always-on "
      f"{always['abrupt_delay']:.1f} frames at "
      f"{always['stationary_us_per_frame']:.0f} us/frame)")
PY
        ;;
    all)
        PYTHONPATH=src python benchmarks/bench_perf.py "$@"
        PYTHONPATH=src python benchmarks/bench_serve.py "$@"
        PYTHONPATH=src python benchmarks/bench_detectors.py "$@"
        PYTHONPATH=src python benchmarks/bench_cascade.py "$@"
        ;;
esac
