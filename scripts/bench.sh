#!/usr/bin/env bash
# Run the pipeline performance harness and refresh BENCH_pipeline.json.
#
#   scripts/bench.sh            full run (writes BENCH_pipeline.json)
#   scripts/bench.sh --quick    short streams, for CI smoke / local sanity
#
# Extra arguments are forwarded to benchmarks/bench_perf.py (e.g.
# --output /tmp/report.json --batch-size 128 --workers 2).
set -euo pipefail

cd "$(dirname "$0")/.."
PYTHONPATH=src python benchmarks/bench_perf.py "$@"
