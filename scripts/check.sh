#!/usr/bin/env bash
# Repo health check: byte-compile the library, run the tier-1 suite (with
# slowest-test timings), the chaos/fault suite, an optional coverage floor,
# an examples smoke pass, and benchmark/schema smoke passes.  Run from the
# repo root:  bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== compileall =="
python -m compileall -q src

echo "== import layering =="
python scripts/check_layers.py

echo "== tier-1 tests =="
python -m pytest -x -q --durations=10

echo "== chaos suite =="
python -m pytest -x -q tests/faults

echo "== coverage floor (repro.core + repro.parallel + repro.serve) =="
if python -c "import coverage" >/dev/null 2>&1; then
    python -m coverage run --branch \
        --include="src/repro/core/*,src/repro/parallel/*,src/repro/serve/*" \
        -m pytest -q tests
    python -m coverage report --fail-under=85
else
    echo "coverage package not installed; skipping the 85% floor"
fi

echo "== telemetry schema =="
# the committed golden snapshot must satisfy the telemetry contract ...
python - <<'PY'
from repro.obs import load_telemetry
summary = load_telemetry("tests/golden/pipeline_telemetry.json")
events = summary["events"]
print(f"golden telemetry valid ({events['logical']} logical / "
      f"{events['timing']} timing events)")
PY
# ... and a live instrumented run must still emit a valid summary
python - <<'PY'
from repro.obs import Recorder, validate_telemetry
from repro.testing import gaussian_stream, make_pipeline

pipeline = make_pipeline(seed=0, recorder=Recorder())
result = pipeline.process(gaussian_stream(31, [(0.0, 60), (6.0, 60)]))
validate_telemetry(result.telemetry["summary"])
print("live telemetry summary OK")
PY

echo "== serve schema =="
# both committed serving documents must satisfy the SERVE_SCHEMA contract
python - <<'PY'
from repro.serve import load_serve_report
golden = load_serve_report("tests/golden/serve_slo.json")
report = load_serve_report("BENCH_serve.json")
overload = report["sweep"][-1]["totals"]
print(f"serve reports valid (golden + BENCH_serve.json: "
      f"{overload['throughput_fps']:.1f} fps at "
      f"{report['sweep'][-1]['offered_load']}x offered load, "
      f"capacity {report['capacity_fps']:.1f} fps)")
PY

echo "== detectors smoke =="
# the committed detector accuracy report must satisfy DETECTORS_SCHEMA and
# actually score the zoo: >= 6 detectors, each carrying the three accuracy
# metrics for every scenario of the matrix
python - <<'PY'
from repro.detectors.report import load_detectors_report

report = load_detectors_report("BENCH_detectors.json")
detectors = report["detectors"]
scenarios = set(report["scenarios"])
assert len(detectors) >= 6, (
    f"BENCH_detectors.json scores only {len(detectors)} detectors; "
    f"the contract requires at least 6")
for name, entry in detectors.items():
    assert set(entry["scenarios"]) == scenarios, (
        f"{name} is missing scenarios: "
        f"{scenarios - set(entry['scenarios'])}")
    for scenario, cell in entry["scenarios"].items():
        for metric in ("detection_delay", "false_alarms", "mtbfa"):
            assert metric in cell, f"{name}/{scenario} lacks {metric}"
# the catch-every-drift bar is scoped to the paper's core drifting
# scenarios: the operational matrix deliberately includes adversaries
# (adversarial_slow creeps below detector thresholds by design)
core_drifting = {"abrupt", "subtle", "gradual", "slow"} & scenarios
assert len(core_drifting) == 4, f"core matrix incomplete: {core_drifting}"
caught = sum(
    1 for entry in detectors.values()
    if all(entry["scenarios"][s]["detected_runs"] > 0
           for s in core_drifting))
assert caught >= 6, (
    f"only {caught} detectors catch every core drifting scenario")
# the operational matrix must ship >= 4 scripted scenarios beyond the
# core five, each labelled with its drifted factors and drift kind ...
core = {"abrupt", "subtle", "gradual", "slow", "stationary"}
operational = {s: spec for s, spec in report["scenarios"].items()
               if s not in core}
assert len(operational) >= 4, (
    f"only {len(operational)} operational scenarios; contract needs >= 4")
for name, spec in operational.items():
    assert spec.get("factors") and spec.get("kind"), (
        f"operational scenario {name} lacks factor/kind labels")
# ... and detections over them must carry per-factor attribution
attributed = {
    scenario
    for entry in detectors.values()
    for scenario, cell in entry["scenarios"].items()
    if scenario in operational and "attribution" in cell}
assert attributed == set(operational), (
    f"operational scenarios without attribution: "
    f"{set(operational) - attributed}")
print(f"BENCH_detectors.json valid ({len(detectors)} detectors x "
      f"{len(scenarios)} scenarios, {caught} catch every core drift, "
      f"{len(operational)} operational scenarios attributed)")
PY
echo "== scenarios smoke =="
# every built-in drift script must compile to all three backends and its
# ground-truth document must satisfy SCENARIO_SCHEMA
python - <<'PY'
from repro.scenarios import (
    WorkloadCoupling, builtin_scripts, compile_features, compile_video,
    compile_workload, get_script, script_document, validate_scenario_document)

for name in sorted(builtin_scripts()):
    script = get_script(name)
    features = compile_features(script, seed=0)
    video = compile_video(script, seed=0)
    workload = compile_workload(script, WorkloadCoupling(fps=30.0, surge=2.5))
    assert len(features.frames) == script.frames, name
    assert sum(s.length for s in video.segments) == script.frames, name
    assert workload.pieces[0][0] == 0.0, name
    validate_scenario_document(script_document(script))
print(f"{len(builtin_scripts())} built-in scripts compile to "
      f"feature / pixel / workload backends and validate")
PY
echo "== cascade smoke =="
# the committed cascade frontier must satisfy CASCADE_SCHEMA and its
# headline mode must hold the ISSUE bars against the always-on ceiling
python - <<'PY'
from repro.cascade import frontier_summary, load_cascade_report

report = load_cascade_report("BENCH_cascade.json")
assert not report["quick"], "the committed frontier must be the full run"
summary = frontier_summary(report)
cascade = summary[report["default_mode"]]
always = summary["always-on-di"]
assert cascade["stationary_escalated_pct"] <= 20.0, (
    f"stationary escalation {cascade['stationary_escalated_pct']:.1f}% "
    f"blew the 20% budget")
assert cascade["stationary_us_per_frame"] <= \
    always["stationary_us_per_frame"] / 3.0, (
    f"cascade costs {cascade['stationary_us_per_frame']:.0f} us/frame; "
    f"needs >= 3x under always-on DI")
assert cascade["abrupt_detected_runs"] == always["abrupt_detected_runs"]
assert cascade["abrupt_delay"] <= 2.0 * always["abrupt_delay"]
print(f"BENCH_cascade.json valid ({len(summary)} modes; "
      f"{report['default_mode']}: "
      f"{cascade['stationary_us_per_frame']:.0f} us/frame vs always-on "
      f"{always['stationary_us_per_frame']:.0f}, "
      f"{cascade['stationary_escalated_pct']:.1f}% escalated)")
PY
# every example must run end to end in quick mode
for example in examples/*.py; do
    echo "-- $example"
    REPRO_EXAMPLE_QUICK=1 python "$example" > /dev/null \
        || { echo "$example failed"; exit 1; }
done
echo "examples smoke pass OK"

echo "== bench reports =="
# the committed pipeline report must satisfy the schema (v2, with the
# fleet scaling sweep) ...
python - <<'PY'
from repro.parallel import BENCH_SCHEMA_VERSION, load_bench_report
report = load_bench_report("BENCH_pipeline.json")
assert report["schema_version"] == BENCH_SCHEMA_VERSION
batched = report["modes"]["batched"]
assert report["scaling"], "committed report must carry the scaling sweep"
print(f"BENCH_pipeline.json valid "
      f"(batched {batched['speedup_vs_sequential']}x sequential, "
      f"{len(report['scaling'])} scaling points)")
PY
# ... and both harnesses must still run end to end and emit valid reports
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
bash scripts/bench.sh --quick --output "$smoke_dir/bench_smoke.json" \
    > "$smoke_dir/bench_smoke.log" \
    || { cat "$smoke_dir/bench_smoke.log"; exit 1; }
python - "$smoke_dir/bench_smoke.json" <<'PY'
import sys
from repro.parallel import load_bench_report
report = load_bench_report(sys.argv[1])
assert report["quick"], "smoke pass must be flagged quick"
print("pipeline bench smoke pass OK")
PY
# the serving smoke also asserts goodput holds near capacity at 2x load
bash scripts/bench.sh serve-smoke
# the fleet smoke asserts fleet(4 workers, batched) composes to >= 2.5x
# the single-process batched mode on the smoke workload
bash scripts/bench.sh fleet-smoke
# the cascade smoke re-earns the frontier bars on a fresh quick run
bash scripts/bench.sh cascade-smoke

echo "all checks passed"
