#!/usr/bin/env bash
# Repo health check: byte-compile the library, run the tier-1 suite, then
# the chaos/fault suite.  Run from the repo root:  bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== chaos suite =="
python -m pytest -x -q tests/faults

echo "all checks passed"
