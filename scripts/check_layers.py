#!/usr/bin/env python
"""Import-layering lint for the repro package.

Builds the module-level import graph of ``src/repro`` via AST (no code is
executed) and enforces two rules:

1. **Layering**: per-layer rules in ``LAYER_RULES``.  The kernel layers
   ``repro.core`` and ``repro.runtime`` must not import -- directly or
   transitively -- the execution substrates ``repro.parallel``,
   ``repro.serve`` or ``repro.experiments`` (the substrates drive the
   kernel, never the other way around), ``repro.serve`` must not
   reach ``repro.experiments`` (the serving layer is driven by
   experiment harnesses, not built on them), and ``repro.detectors``
   -- the zoo that plugs into the kernel's monitor seam -- must not
   reach any execution substrate.
2. **Acyclicity**: no module-level import cycles anywhere in the package
   (a cycle means two modules each need the other at import time; Python
   tolerates some orderings, but they rot into ImportErrors).

Run from the repo root: ``python scripts/check_layers.py`` (exit code 0 on
a clean graph, 1 with a violation report otherwise).  Wired into
``scripts/check.sh``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

PACKAGE = "repro"
SRC = Path(__file__).resolve().parent.parent / "src"

#: per-layer rules: (constrained layer, subpackages it must not reach)
LAYER_RULES = (
    ("repro.core", ("repro.parallel", "repro.serve", "repro.experiments")),
    ("repro.runtime", ("repro.parallel", "repro.serve",
                       "repro.experiments")),
    ("repro.serve", ("repro.experiments",)),
    # the detector zoo and its benchmark feed the kernel's monitor seam;
    # they must stay upstream of every execution substrate (the
    # conformance kit reaches repro.serve, which is exactly why it lives
    # in repro.testing.conformance, not under repro.detectors)
    ("repro.detectors", ("repro.parallel", "repro.serve",
                         "repro.experiments")),
    # the cascade composes monitors for the same seam: it must stay
    # substrate-free too (its bench drives the kernel via repro.testing,
    # never the serving or fleet layers), and the tier-0 screen is
    # numpy-only by construction -- no neural stack
    ("repro.cascade", ("repro.parallel", "repro.serve",
                       "repro.experiments")),
    ("repro.detectors.tier0", ("repro.nn",)),
    # drift scripts are pure scenario descriptions compiled down to
    # streams and traces; the substrates consume them (the workload
    # backend hands repro.serve a plain callable), never vice versa
    ("repro.scenarios", ("repro.parallel", "repro.serve",
                         "repro.experiments")),
)


def module_name(path: Path) -> str:
    """``src/repro/core/pipeline.py`` -> ``repro.core.pipeline``."""
    relative = path.relative_to(SRC).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def collect_modules() -> Dict[str, Path]:
    return {module_name(path): path
            for path in sorted((SRC / PACKAGE).rglob("*.py"))}


def imported_modules(path: Path, current: str,
                     modules: Set[str]) -> Set[str]:
    """Resolve ``import`` / ``from ... import`` statements to module names
    within the package (absolute and relative forms)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    targets: Set[str] = set()

    def resolve(name: str) -> None:
        # map a dotted target onto the closest known module (a ``from pkg
        # import symbol`` may name either a module or an attribute)
        candidate = name
        while candidate:
            if candidate in modules:
                targets.add(candidate)
                return
            candidate = candidate.rpartition(".")[0]

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == PACKAGE:
                    resolve(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: anchor at the current package
                base = current.split(".")
                if path.name != "__init__.py":
                    base = base[:-1]
                base = base[: len(base) - node.level + 1]
                prefix = ".".join(base)
                module = f"{prefix}.{node.module}" if node.module else prefix
            else:
                module = node.module or ""
            if module.split(".")[0] != PACKAGE:
                continue
            for alias in node.names:
                # ``from pkg import submodule`` depends on the submodule,
                # not the package __init__ (the conventional treatment --
                # a partially initialized parent is enough at import time)
                full = f"{module}.{alias.name}"
                if full in modules:
                    targets.add(full)
                else:
                    resolve(module)
    targets.discard(current)
    return targets


def build_graph() -> Dict[str, Set[str]]:
    modules = collect_modules()
    names = set(modules)
    return {name: imported_modules(path, name, names)
            for name, path in modules.items()}


def subpackage(name: str) -> str:
    parts = name.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else name


def reachable(graph: Dict[str, Set[str]], start: str) -> Set[str]:
    seen: Set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        for dep in graph.get(node, ()):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
    return seen


def find_layering_violations(
        graph: Dict[str, Set[str]]) -> List[Tuple[str, str, List[str]]]:
    """(module, forbidden target, shortest import chain) per violation."""
    violations = []
    for module in sorted(graph):
        forbidden = [bad for layer, targets in LAYER_RULES
                     if module == layer or module.startswith(layer + ".")
                     for bad in targets]
        if not forbidden:
            continue
        for target in sorted(reachable(graph, module)):
            if any(target == bad or target.startswith(bad + ".")
                   for bad in forbidden):
                violations.append(
                    (module, target, import_chain(graph, module, target)))
    return violations


def import_chain(graph: Dict[str, Set[str]], start: str,
                 end: str) -> List[str]:
    """Shortest import path from ``start`` to ``end`` (BFS), for reporting."""
    parents = {start: None}
    queue = [start]
    while queue:
        node = queue.pop(0)
        if node == end:
            chain = []
            while node is not None:
                chain.append(node)
                node = parents[node]
            return list(reversed(chain))
        for dep in sorted(graph.get(node, ())):
            if dep not in parents:
                parents[dep] = node
                queue.append(dep)
    return [start, "...", end]


def find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with more than one module (Tarjan)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(node: str) -> None:
        # iterative Tarjan: (module, iterator over its dependencies)
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, deps = work[-1]
            advanced = False
            for dep in deps:
                if dep not in index:
                    index[dep] = lowlink[dep] = counter[0]
                    counter[0] += 1
                    stack.append(dep)
                    on_stack.add(dep)
                    work.append((dep, iter(sorted(graph.get(dep, ())))))
                    advanced = True
                    break
                if dep in on_stack:
                    lowlink[current] = min(lowlink[current], index[dep])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return cycles


def main() -> int:
    graph = build_graph()
    failed = False

    violations = find_layering_violations(graph)
    if violations:
        failed = True
        print("layering violations (lower layers must not import the "
              "layers that drive them):")
        for module, target, chain in violations:
            print(f"  {module} -> {target}")
            print(f"    via: {' -> '.join(chain)}")

    cycles = find_cycles(graph)
    if cycles:
        failed = True
        print("module-level import cycles:")
        for cycle in cycles:
            print(f"  {' <-> '.join(cycle)}")

    if failed:
        return 1
    rules = "; ".join(f"{layer} !-> {', '.join(targets)}"
                      for layer, targets in LAYER_RULES)
    print(f"import layering OK ({len(graph)} modules; {rules}; no cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
