"""Traffic monitoring across switching camera angles (Detrac-style).

A traffic authority provisions count models for five fixed cameras; the
feed switches between them (the Detrac setting).  The example runs the
full (DI, MSBO) pipeline, reports per-angle query accuracy and the
simulated processing cost, and contrasts it with ODIN's per-frame
cluster-driven selection.

Run:  python examples/traffic_monitoring.py
(``--quick`` or ``REPRO_EXAMPLE_QUICK=1`` shrinks the dataset and the
training budget for smoke runs, e.g. from ``scripts/check.sh``.)
"""

import os
import sys

from repro.baselines.odin.detect import OdinConfig
from repro.baselines.odin.system import OdinAnalytics
from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.queries.count import CountQuery
from repro.sim.clock import SimulatedClock
from repro.video.datasets import make_detrac


def main() -> None:
    quick = ("--quick" in sys.argv[1:]
             or bool(os.environ.get("REPRO_EXAMPLE_QUICK")))
    config = (fast_config(scale=150.0, train_frames=120, vae_epochs=2,
                          classifier_epochs=4, ensemble_epochs=2)
              if quick else fast_config())
    dataset = make_detrac(scale=config.scale, frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)
    query = CountQuery(dataset.num_count_classes, dataset.count_bucket_width)

    print("training per-angle bundles (VAE + classifier + ensemble) ...")
    registry = context.registry(with_ensembles=True)

    # --- (DI, MSBO): detect once per drift, select the single best model
    clock = SimulatedClock()
    selector = MSBO(registry, MSBOConfig(window_size=10, seed=0),
                    clock=clock)
    pipeline = DriftAwareAnalytics(
        registry, dataset.segment_names[0], selector,
        annotator=context.annotator,
        config=PipelineConfig(selection_window=10,
                              drift_inspector=DriftInspectorConfig(seed=0)),
        clock=clock)
    ours = pipeline.process(context.stream)

    # --- ODIN: per-frame cluster assignment with ensembles
    odin_clock = SimulatedClock()
    odin = OdinAnalytics({b.name: b.model for b in registry},
                         embedder=context.shared_embedder,
                         config=OdinConfig(), clock=odin_clock)
    for segment in dataset.segment_names:
        odin.seed_cluster(segment, context.segment_embeddings(segment))
    theirs = odin.process(context.stream)

    print(f"\n{'angle':<10}{'A_q (DI,MSBO)':>15}{'A_q ODIN':>12}")
    ours_by_seq = query.per_sequence_accuracy(context.stream,
                                              ours.predictions)
    theirs_by_seq = query.per_sequence_accuracy(context.stream,
                                                theirs.predictions)
    for angle in dataset.segment_names:
        print(f"{angle:<10}{ours_by_seq[angle]:>15.2f}"
              f"{theirs_by_seq[angle]:>12.2f}")
    print(f"{'OVERALL':<10}"
          f"{query.accuracy(context.stream, ours.predictions):>15.2f}"
          f"{query.accuracy(context.stream, theirs.predictions):>12.2f}")

    print(f"\nmodel invocations/frame: "
          f"(DI, MSBO) {ours.invocations.invocations_per_frame:.2f} "
          f"vs ODIN {theirs.invocations.invocations_per_frame:.2f}")
    print(f"simulated processing time: "
          f"(DI, MSBO) {ours.simulated_ms / 1000:.1f} s "
          f"vs ODIN {theirs.simulated_ms / 1000:.1f} s "
          f"(per-frame ODIN cost scales with the number of clusters)")
    print(f"drifts handled by (DI, MSBO): "
          f"{[d.selected_model for d in ours.detections]}")


if __name__ == "__main__":
    main()
