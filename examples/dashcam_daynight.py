"""Slow drift at dusk: conformal martingales vs classical detectors.

A live camera transitions gradually from day to night (the paper's
Section 6.1.3 setting).  The example compares the Drift Inspector's
conformal martingale against classical change detectors (two-sample KS,
CUSUM, moment test) on detection delay over the same gradual transition,
and shows the martingale trajectory around the change point.

Run:  python examples/dashcam_daynight.py
"""

import numpy as np

from repro.baselines.statistical import CusumDetector, KSDetector, MomentDetector
from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.video.datasets import make_slow_drift


def main() -> None:
    config = fast_config()
    dataset = make_slow_drift(scale=config.scale,
                              frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)
    drift_start = dataset.drift_frames[0]
    transition = dataset.metadata["transition_frames"]
    print(f"stream: {len(context.stream)} frames; dusk begins at frame "
          f"{drift_start} and lasts {transition} frames")

    print("training the day model's VAE ...")
    registry = context.registry(with_ensembles=False)
    day = registry.get("day")

    # All detectors monitor the same stream against the day distribution.
    detectors = {
        "Drift Inspector": DriftInspector(
            day.sigma, DriftInspectorConfig(seed=0), embedder=day.vae),
        "KS test": KSDetector(day.sigma, window=25, significance=1e-4,
                              embedder=day.vae),
        "CUSUM": CusumDetector(day.sigma, threshold=8.0, embedder=day.vae),
        "Moment test": MomentDetector(day.sigma, window=20, z_threshold=4.0,
                                      embedder=day.vae),
    }

    print(f"\n{'detector':<18}{'detected at':>12}{'delay':>8}"
          "   (negative delay = false alarm before the drift)")
    for name, detector in detectors.items():
        detected = None
        if isinstance(detector, DriftInspector):
            for frame in context.stream:
                if detector.observe(frame.pixels).drift:
                    detected = frame.index
                    break
        else:
            for frame in context.stream:
                if detector.observe(frame.pixels):
                    detected = frame.index
                    break
        delay = "-" if detected is None else str(detected - drift_start)
        shown = "-" if detected is None else str(detected)
        print(f"{name:<18}{shown:>12}{delay:>8}")
    print("\nnote: the windowed KS test assumes i.i.d. samples; consecutive "
          "video frames are\ncorrelated, so its p-values are anticonservative "
          "and it tends to fire on null\nsegments -- the problem the paper's "
          "VAE-based i.i.d. sampling exists to solve.")

    # Martingale trajectory around the change point (text sparkline).
    inspector = DriftInspector(day.sigma, DriftInspectorConfig(seed=1),
                               embedder=day.vae)
    values = []
    for frame in context.stream[: drift_start + 20]:
        values.append(inspector.observe(frame.pixels).martingale)
    print("\nmartingale score around the change point "
          f"(frames {drift_start - 10}..{drift_start + 19}):")
    window = values[drift_start - 10:]
    peak = max(max(window), 1e-9)
    for offset, value in enumerate(window, start=drift_start - 10):
        bar = "#" * int(40 * value / peak)
        marker = " <- dusk begins" if offset == drift_start else ""
        print(f"  frame {offset:4d} {value:8.2f} {bar}{marker}")


if __name__ == "__main__":
    main()
