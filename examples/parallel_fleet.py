"""Batched monitoring and a sharded camera fleet, bit-identical throughout.

Four synthetic cameras stream gaussian frames that drift mid-stream.  The
example runs the same fleet three ways -- sequential `process()`, batched
`process_batched()` and a `FleetExecutor` sharded across worker processes
-- verifies the results are identical frame for frame, then kills a worker
mid-stream and shows checkpoint recovery merging to the exact same output.

Run:  python examples/parallel_fleet.py
"""

import tempfile
import time

import numpy as np

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.nonconformity import KNNDistance
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.parallel import FleetExecutor, FleetTask, stream_seed

DIM = 8


class ConstantModel:
    def __init__(self, label):
        self.label = label

    def predict(self, frames):
        return np.full(np.asarray(frames).shape[0], self.label,
                       dtype=np.int64)


def make_registry():
    rng = np.random.default_rng(777)

    def bundle(name, centre, label):
        sigma = rng.normal(centre, 1.0, size=(150, DIM))
        return ModelBundle(name=name, sigma=sigma,
                           reference_scores=KNNDistance(5)
                           .reference_scores(sigma),
                           model=ConstantModel(label))

    return ModelRegistry([bundle("clear", 0.0, 0), bundle("fog", 6.0, 1)])


def factory(task, seed):
    """One pipeline per stream; `seed` is the task's stream_seed."""
    registry = make_registry()
    config = PipelineConfig(selection_window=8,
                            drift_inspector=DriftInspectorConfig(seed=seed))
    return DriftAwareAnalytics(registry, "clear",
                               MSBI(registry, MSBIConfig(window_size=8,
                                                         seed=seed)),
                               config=config)


def record_keys(result):
    return [(r.frame_index, r.prediction, r.model) for r in result.records]


def main() -> None:
    tasks = []
    for index in range(4):
        rng = np.random.default_rng(100 + index)
        frames = np.vstack([rng.normal(0.0, 1.0, size=(800, DIM)),
                            rng.normal(6.0, 1.0, size=(800, DIM))])
        tasks.append(FleetTask(stream_id=f"cam-{index}", frames=frames))
    total = sum(task.frames.shape[0] for task in tasks)

    print(f"fleet: {len(tasks)} cameras x {tasks[0].frames.shape[0]} frames")
    timings, outputs = {}, {}
    for mode, run in [
        ("sequential", lambda t: factory(t, stream_seed(0, t.stream_id))
            .process(t.frames)),
        ("batched", lambda t: factory(t, stream_seed(0, t.stream_id))
            .process_batched(t.frames, batch_size=256)),
    ]:
        start = time.perf_counter()
        outputs[mode] = {task.stream_id: run(task) for task in tasks}
        timings[mode] = time.perf_counter() - start

    start = time.perf_counter()
    fleet = FleetExecutor(factory, workers=4, batch_size=256)
    outputs["fleet"] = {e.stream_id: e.result for e in fleet.run(tasks)}
    timings["fleet"] = time.perf_counter() - start

    for mode in ("sequential", "batched", "fleet"):
        identical = all(
            record_keys(outputs[mode][t.stream_id])
            == record_keys(outputs["sequential"][t.stream_id])
            for t in tasks)
        print(f"  {mode:<10} {total / timings[mode]:>9.0f} fps   "
              f"identical={identical}")

    print("\ncrash recovery: killing cam-1's worker at frame 500 ...")
    crashing = [FleetTask(t.stream_id, t.frames,
                          crash_at_frame=500 if i == 1 else None)
                for i, t in enumerate(tasks)]
    with tempfile.TemporaryDirectory() as ckpt_dir:
        executor = FleetExecutor(factory, workers=4, batch_size=256,
                                 checkpoint_dir=ckpt_dir,
                                 checkpoint_every=200, max_restarts=1)
        recovered = {e.stream_id: e for e in executor.run(crashing)}
    crashed = recovered["cam-1"]
    identical = all(
        record_keys(recovered[t.stream_id].result)
        == record_keys(outputs["sequential"][t.stream_id]) for t in tasks)
    print(f"  cam-1 attempts={crashed.attempts} "
          f"resumed_at={crashed.resumed_at}  merged identical={identical}")
    detections = [(d.frame_index, d.selected_model)
                  for d in recovered["cam-1"].result.detections]
    print(f"  cam-1 detections: {detections}")


if __name__ == "__main__":
    main()
