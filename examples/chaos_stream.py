"""Chaos engineering tour: fault injection, degradation, checkpointing.

Wraps a synthetic day->night stream in a seeded 5 % fault schedule
(dropped frames, NaN pixel corruption, duplicates), runs the drift-aware
pipeline with the ``repair`` frame policy, prints the fault accounting,
then checkpoints mid-stream and shows the resumed run finishing with
records identical to the uninterrupted one.

Run:  python examples/chaos_stream.py
"""

import os

import numpy as np

from repro.core.checkpoint import restore_checkpoint, save_checkpoint
from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.faults import FaultInjector, FaultSchedule
from repro.video.datasets import make_bdd

#: Example artifacts go under ``results/`` at the repo root (gitignored),
#: never next to the sources.
RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


def build_pipeline(registry, annotator):
    config = PipelineConfig(selection_window=10,
                            drift_inspector=DriftInspectorConfig(seed=0),
                            frame_policy="repair",
                            max_retries=2,
                            breaker_threshold=3)
    selector = MSBI(registry, MSBIConfig(window_size=10, seed=0))
    return DriftAwareAnalytics(registry, "day", selector,
                               annotator=annotator, config=config)


def main() -> None:
    # 1. A drifting stream plus per-condition bundles (as in quickstart).
    config = fast_config()
    dataset = make_bdd(scale=config.scale, frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)
    print(f"stream: {len(context.stream)} frames, "
          f"ground-truth drifts at {dataset.drift_frames}")
    print("training per-condition model bundles ...")
    registry = context.registry(with_ensembles=False)

    # 2. Inject seeded faults: every draw is a pure function of
    #    (seed, frame index), so this chaos run is fully reproducible.
    schedule = FaultSchedule(rate=0.05, kinds=("drop", "nan", "duplicate"),
                             seed=7)
    pipeline = build_pipeline(registry, context.annotator)
    injector = FaultInjector(schedule, clock=pipeline.clock)
    faulty = list(injector.wrap(context.stream))
    print(f"injected faults: {dict(schedule.counts())} "
          f"({len(faulty)} frames reach the pipeline)")

    # 3. The pipeline survives: NaN frames are repaired by imputing from
    #    the last good frame, and every intervention is accounted for.
    result = pipeline.process(faulty)
    stats = result.faults
    print(f"\nfault accounting: ok={stats.frames_ok} "
          f"repaired={stats.frames_repaired} "
          f"quarantined={stats.frames_quarantined} "
          f"(degraded={stats.degraded})")
    print(f"drifts handled under chaos: {len(result.detections)}")
    for event in result.detections:
        print(f"  frame {event.frame_index}: deployed "
              f"{event.selected_model!r} (was {event.previous_model!r})")

    # 4. Checkpoint/restore: cut the same faulty stream mid-way, save the
    #    session, resume in a fresh pipeline, and compare with the
    #    uninterrupted run -- the remaining records must be identical.
    cut = len(faulty) // 2
    first = build_pipeline(registry, context.annotator)
    first.start()
    for item in faulty[:cut]:
        first.step(item)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    checkpoint_path = os.path.join(RESULTS_DIR, "chaos_session.npz")
    save_checkpoint(checkpoint_path, first)
    print(f"\ncheckpointed after {cut} frames -> {checkpoint_path}")

    resumed = build_pipeline(registry, context.annotator)
    restore_checkpoint(checkpoint_path, resumed)
    for item in faulty[cut:]:
        resumed.step(item)
    resumed.flush()
    replay = resumed.result()

    match = (np.array_equal(replay.predictions, result.predictions)
             and [d.frame_index for d in replay.detections]
             == [d.frame_index for d in result.detections])
    print(f"resumed run matches uninterrupted run exactly: {match}")


if __name__ == "__main__":
    main()
