"""Handling never-seen conditions: the trainNewModel path (Section 5.4).

An operator provisions models only for day and night; the stream then
drifts into rain, which no model covers.  MSBI rejects every provisioned
model (a NovelDistribution), the trainer collects post-drift frames,
annotates them with the oracle (the Mask R-CNN role), and builds a fresh
bundle -- VAE, Sigma_T and count classifier -- that the pipeline deploys
and that covers rain next time it appears.

Run:  python examples/novel_conditions.py
"""

import numpy as np

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.registry import ModelRegistry
from repro.core.selection.trainer import ModelTrainer, TrainerConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.queries.count import CountQuery
from repro.video.datasets import make_bdd


def main() -> None:
    config = fast_config()
    dataset = make_bdd(scale=config.scale, frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)

    print("provisioning models for day and night only ...")
    full = context.registry(with_ensembles=False)
    registry = ModelRegistry([full.get("day"), full.get("night")])

    trainer = ModelTrainer(
        vae_factory=context.make_vae,
        classifier_factory=context.make_classifier,
        annotator=context.annotator,
        config=TrainerConfig(frames_to_collect=60,
                             sigma_size=config.sigma_size,
                             seed=config.seed))
    selector = MSBI(registry, MSBIConfig(window_size=10, seed=0))
    pipeline = DriftAwareAnalytics(
        registry, "day", selector, annotator=context.annotator,
        trainer=trainer,
        config=PipelineConfig(selection_window=10, training_budget=60,
                              drift_inspector=DriftInspectorConfig(seed=0)))

    # day -> night (known) -> rain (novel)
    frames = [f for f in context.stream
              if f.segment in ("day", "night", "rain")]
    print(f"processing {len(frames)} frames (day -> night -> rain) ...")
    result = pipeline.process(frames)

    for event in result.detections:
        kind = "NOVEL -> trained new model" if event.novel else "provisioned"
        print(f"  drift at frame {event.frame_index}: deployed "
              f"{event.selected_model!r} ({kind})")

    print(f"\nregistry now holds: {registry.names()}")
    novel_name = next(d.selected_model for d in result.detections if d.novel)
    bundle = registry.get(novel_name)
    print(f"new bundle {novel_name!r}: trained on "
          f"{bundle.metadata['trained_frames']} collected frames")

    # the freshly trained model answers count queries on rain frames
    query = CountQuery(dataset.num_count_classes, dataset.count_bucket_width)
    rain_frames = [f for f in frames if f.segment == "rain"]
    predictions = bundle.model.predict(
        np.stack([f.pixels for f in rain_frames]))
    print(f"count-query accuracy of the new model on rain: "
          f"{query.accuracy(rain_frames, predictions):.2f}")


if __name__ == "__main__":
    main()
