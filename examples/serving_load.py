"""Serving a camera fleet at 2x capacity: degrade, don't fail.

Three tenants share one simulated inference backend through
``repro.serve``: a premium stream (scheduling priority, drop-oldest), a
standard stream (drop-oldest) and a best-effort stream that degrades to
a prediction-only pass instead of shedding.  The fleet offers twice what
the backend can sustain, and the point of the example is the shape of
the overload response: throughput holds at capacity, the excess is shed
or degraded per policy, every queue and breaker decision lands in the
telemetry stream, and each tenant still gets its drift detections.

Run:  python examples/serving_load.py
(``--quick`` or ``REPRO_EXAMPLE_QUICK=1`` shortens the streams.)
"""

import os
import sys

from repro.obs import Recorder
from repro.serve import (
    DriftServer,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.testing import gaussian_stream, make_pipeline

TENANTS = (
    # (stream id, priority, shed policy)
    ("premium", 1, "drop-oldest"),
    ("standard", 0, "drop-oldest"),
    ("best-effort", 0, "degrade"),
)
OFFERED_LOAD = 2.0
DEADLINE_MS = 60.0


def main() -> None:
    quick = ("--quick" in sys.argv[1:]
             or bool(os.environ.get("REPRO_EXAMPLE_QUICK")))
    frames_per_stream = 120 if quick else 400
    capacity = capacity_fps()
    per_stream_rate = OFFERED_LOAD * capacity / len(TENANTS)
    print(f"backend capacity {capacity:.1f} fps; offering "
          f"{OFFERED_LOAD:.0f}x that across {len(TENANTS)} tenants "
          f"({per_stream_rate:.1f} fps each, deadline {DEADLINE_MS:.0f} ms)")

    sessions, arrivals = [], []
    for index, (stream_id, priority, policy) in enumerate(TENANTS):
        seed = 100 + index
        sessions.append(StreamSession(
            stream_id, make_pipeline(seed=seed),
            SessionConfig(priority=priority, deadline_ms=DEADLINE_MS,
                          queue_capacity=8, shed_policy=policy)))
        # each stream drifts halfway through, so serving decisions and
        # drift detections have to coexist under overload
        frames = gaussian_stream(seed, [(0.0, frames_per_stream // 2),
                                        (6.0, frames_per_stream // 2)])
        arrivals.extend(generate_arrivals(
            frames, WorkloadConfig(rate_fps=per_stream_rate,
                                   pattern="burst"),
            stream_id=stream_id, deadline_ms=DEADLINE_MS, seed=seed))

    recorder = Recorder()
    server = DriftServer(sessions, ServeConfig(
        scheduler=SchedulerConfig(batch_size=16)), recorder=recorder)
    result = server.run(arrivals)

    print(f"\n{'tenant':<12} {'policy':<12} {'arrived':>8} {'served':>7} "
          f"{'degraded':>9} {'shed':>5} {'p99 ms':>7} {'drifts':>7}")
    for stream_id, slo in result.streams.items():
        entry = slo.as_dict()
        print(f"{stream_id:<12} {slo.shed_policy:<12} "
              f"{slo.arrivals:>8} {slo.processed:>7} {slo.degraded:>9} "
              f"{slo.shed_total:>5} {entry['p99_latency_ms']:>7.1f} "
              f"{slo.detections:>7}")

    print(f"\nthroughput {result.throughput_fps:.1f} fps at "
          f"{OFFERED_LOAD:.0f}x overload "
          f"({result.throughput_fps / capacity * 100:.0f}% of capacity: "
          f"degraded, not collapsed)")
    summary = recorder.snapshot()["summary"]
    by_kind = summary["events"]["by_kind"]
    print(f"telemetry: {int(summary['counters']['serve.batches'])} "
          f"micro-batches, {by_kind.get('backpressure_on', 0)} "
          f"backpressure episodes, {by_kind.get('breaker_open', 0)} "
          f"breaker trips, {by_kind.get('frame_degraded', 0)} degraded "
          f"frames")


if __name__ == "__main__":
    main()
