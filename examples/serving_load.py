"""Serving a camera fleet at 2x capacity: degrade, don't fail.

Three tenants share one simulated inference backend through
``repro.serve``: a premium stream (scheduling priority, double fairness
weight, never degraded -- its infeasible frames are rejected at
admission), a standard stream and a best-effort stream whose excess
rides the cheap degraded pass.  The fleet offers twice what the backend
can sustain, and the point of the example is the shape of the overload
response: the ``OverloadController`` walks NORMAL -> DEGRADED (->
SHEDDING under bursts), goodput holds near capacity instead of
collapsing, every admission and controller decision lands in the
telemetry stream, and each tenant still gets its drift detections.

Run:  python examples/serving_load.py
(``--quick`` or ``REPRO_EXAMPLE_QUICK=1`` shortens the streams.)
"""

import os
import sys

from repro.obs import Recorder
from repro.serve import (
    DriftServer,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.testing import gaussian_stream, make_pipeline

TENANTS = (
    # (stream id, priority, weight, degraded allowed)
    ("premium", 1, 2.0, False),
    ("standard", 0, 1.0, True),
    ("best-effort", 0, 1.0, True),
)
OFFERED_LOAD = 2.0
DEADLINE_MS = 60.0


def main() -> None:
    quick = ("--quick" in sys.argv[1:]
             or bool(os.environ.get("REPRO_EXAMPLE_QUICK")))
    frames_per_stream = 120 if quick else 400
    capacity = capacity_fps()
    per_stream_rate = OFFERED_LOAD * capacity / len(TENANTS)
    print(f"backend capacity {capacity:.1f} fps; offering "
          f"{OFFERED_LOAD:.0f}x that across {len(TENANTS)} tenants "
          f"({per_stream_rate:.1f} fps each, deadline {DEADLINE_MS:.0f} ms)")

    sessions, arrivals = [], []
    for index, (stream_id, priority, weight, degradable) in enumerate(
            TENANTS):
        seed = 100 + index
        sessions.append(StreamSession(
            stream_id, make_pipeline(seed=seed),
            SessionConfig(priority=priority, deadline_ms=DEADLINE_MS,
                          queue_capacity=8, weight=weight,
                          degraded_allowed=degradable)))
        # each stream drifts halfway through, so serving decisions and
        # drift detections have to coexist under overload
        frames = gaussian_stream(seed, [(0.0, frames_per_stream // 2),
                                        (6.0, frames_per_stream // 2)])
        arrivals.extend(generate_arrivals(
            frames, WorkloadConfig(rate_fps=per_stream_rate,
                                   pattern="burst"),
            stream_id=stream_id, deadline_ms=DEADLINE_MS, seed=seed))

    recorder = Recorder()
    server = DriftServer(sessions, ServeConfig(
        scheduler=SchedulerConfig(batch_size=16)), recorder=recorder)
    result = server.run(arrivals)

    print(f"\n{'tenant':<12} {'arrived':>8} {'served':>7} {'degraded':>9} "
          f"{'rej-inf':>8} {'shed':>5} {'good fps':>9} {'drifts':>7}")
    for stream_id, slo in result.streams.items():
        entry = slo.as_dict(result.makespan_ms)
        print(f"{stream_id:<12} {slo.arrivals:>8} {slo.processed:>7} "
              f"{slo.degraded:>9} {slo.rejected_infeasible:>8} "
              f"{slo.shed_total:>5} {entry['goodput_fps']:>9.1f} "
              f"{slo.detections:>7}")

    print("\noverload controller transitions:")
    for event in recorder.events:
        if event["kind"] == "overload_transition":
            print(f"  t={event['now_ms']:>8.1f} ms  "
                  f"{event['previous'].upper():>8} -> "
                  f"{event['state'].upper():<8} "
                  f"(degrade share {event['degrade_share']:.2f})")

    print(f"\ngoodput {result.goodput_fps:.1f} fps at "
          f"{OFFERED_LOAD:.0f}x overload "
          f"({result.goodput_fps / capacity * 100:.0f}% of capacity: "
          f"degraded and rejected at admission, not collapsed)")
    summary = recorder.snapshot()["summary"]
    by_kind = summary["events"]["by_kind"]
    print(f"telemetry: {int(summary['counters']['serve.batches'])} "
          f"micro-batches, {by_kind.get('overload_transition', 0)} "
          f"controller transitions, {by_kind.get('frame_degraded', 0)} "
          f"degraded frames, {by_kind.get('frame_rejected', 0)} "
          f"rejected frames")


if __name__ == "__main__":
    main()
