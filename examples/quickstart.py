"""Quickstart: detect a drift and recover with model selection.

Builds a synthetic day->night dashcam stream, provisions per-condition
models (VAE + count classifier), monitors the stream with the Drift
Inspector, and recovers with MSBI -- the smallest end-to-end tour of the
paper's architecture (Figure 1).

Run:  python examples/quickstart.py
"""

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.queries.count import CountQuery
from repro.video.datasets import make_bdd


def main() -> None:
    # 1. A drifting video stream: day -> night -> rain -> snow.
    config = fast_config()
    dataset = make_bdd(scale=config.scale, frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)
    print(f"stream: {len(context.stream)} frames, "
          f"ground-truth drifts at {dataset.drift_frames}")

    # 2. Provision one model bundle per known condition (trains a small
    #    VAE and count classifier per segment; ~30 s on CPU).
    print("training per-condition model bundles ...")
    registry = context.registry(with_ensembles=False)
    print(f"provisioned models: {registry.names()}")

    # 3. Standalone drift detection: monitor the stream with the deployed
    #    (day) model's Sigma_T until the martingale fires.
    day = registry.get("day")
    inspector = DriftInspector(day.sigma,
                               DriftInspectorConfig(seed=0),
                               embedder=day.vae)
    for frame in context.stream:
        decision = inspector.observe(frame.pixels)
        if decision.drift:
            truth = dataset.drift_frames[0]
            print(f"drift declared at frame {frame.index} "
                  f"(ground truth {truth}, delay "
                  f"{frame.index - truth} frames)")
            break

    # 4. The full pipeline: DI + MSBI, automatic model swaps.
    selector = MSBI(registry, MSBIConfig(window_size=10, seed=0))
    pipeline = DriftAwareAnalytics(
        registry, "day", selector, annotator=context.annotator,
        config=PipelineConfig(selection_window=10,
                              drift_inspector=DriftInspectorConfig(seed=0)))
    result = pipeline.process(context.stream)
    print(f"\npipeline: {len(result.detections)} drifts handled")
    for event in result.detections:
        print(f"  frame {event.frame_index}: deployed "
              f"{event.selected_model!r} (was {event.previous_model!r})")

    # 5. Query accuracy: how well did the adaptive pipeline answer the
    #    count query compared to never adapting?
    query = CountQuery(dataset.num_count_classes, dataset.count_bucket_width)
    adaptive = query.accuracy(context.stream, result.predictions)
    import numpy as np
    static = query.accuracy(
        context.stream,
        day.model.predict(np.stack([f.pixels for f in context.stream])))
    print(f"\ncount-query accuracy: adaptive {adaptive:.2f} "
          f"vs static day-model {static:.2f}")


if __name__ == "__main__":
    main()
