"""A fleet of cameras sharing one model zoo.

Two intersection cameras run drift-aware analytics over a *shared* model
registry.  Camera A drifts into a condition nobody provisioned (snow); the
fleet trains a bundle for it once, and when camera B later hits snow, its
selector simply deploys the shared bundle -- no second training run.  The
example also shows a fleet-level activity query built from the predicate
combinators.

Run:  python examples/camera_fleet.py
"""

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.monitor import FleetConfig, FleetMonitor
from repro.core.pipeline import PipelineConfig
from repro.core.selection.registry import ModelRegistry
from repro.core.selection.trainer import ModelTrainer, TrainerConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.queries.predicates import LeftOf, MinCount
from repro.video.datasets import make_bdd


def main() -> None:
    config = fast_config()
    dataset = make_bdd(scale=config.scale, frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)

    print("provisioning shared bundles for day and night ...")
    full = context.registry(with_ensembles=False)
    registry = ModelRegistry([full.get("day"), full.get("night")])

    trainer = ModelTrainer(
        vae_factory=context.make_vae,
        classifier_factory=context.make_classifier,
        annotator=context.annotator,
        config=TrainerConfig(frames_to_collect=60,
                             sigma_size=config.sigma_size,
                             seed=config.seed))
    fleet = FleetMonitor(
        registry, annotator=context.annotator, trainer=trainer,
        config=FleetConfig(
            selection_window=10,
            pipeline=PipelineConfig(
                selection_window=10, training_budget=60,
                drift_inspector=DriftInspectorConfig(seed=config.seed))))
    fleet.add_camera("north", "day")
    fleet.add_camera("south", "day")

    # camera NORTH: day -> rain (unprovisioned -> fleet trains a bundle)
    north_frames = [f for f in context.stream
                    if f.segment in ("day", "rain")]
    print(f"camera north: {len(north_frames)} frames (day -> rain)")
    for frame in north_frames:
        fleet.step("north", frame)
    fleet.flush("north")
    north = fleet.result("north")
    for event in north.detections:
        tag = "trained NEW shared bundle" if event.novel else "provisioned"
        print(f"  north drift @ {event.frame_index}: deployed "
              f"{event.selected_model!r} ({tag})")

    # camera SOUTH hits rain later: the shared bundle is simply selected
    south_frames = [f for f in context.stream
                    if f.segment in ("day", "rain")]
    print(f"camera south: {len(south_frames)} frames (day -> rain)")
    for frame in south_frames:
        fleet.step("south", frame)
    fleet.flush("south")
    south = fleet.result("south")
    for event in south.detections:
        tag = "trained NEW shared bundle" if event.novel else "reused fleet model"
        print(f"  south drift @ {event.frame_index}: deployed "
              f"{event.selected_model!r} ({tag})")

    summary = fleet.fleet_summary()
    print(f"\nfleet summary: {summary['cameras']} cameras, "
          f"{summary['frames']} frames, {summary['detections']} drifts, "
          f"{summary['novel_models']} new model(s) trained; registry now "
          f"holds {summary['registry_models']}")

    # a fleet-level activity query over ground truth
    query = MinCount("car", 5) & LeftOf("bus", "car")
    hits = sum(1 for f in north_frames if query(f))
    print(f"\nactivity query {query.name!r}: matched {hits} of "
          f"{len(north_frames)} frames on camera north")


if __name__ == "__main__":
    main()
