"""Push-based (live) processing with the streaming API.

Production video analytics receives frames one at a time; this example
drives the pipeline through ``start() / step(frame) / flush()`` instead of
a batch ``process(stream)`` call, printing events as they happen: normal
frames flow through, a drift pauses emission while the selection window
buffers, and the swap releases the buffered frames under the new model.

Run:  python examples/live_monitoring.py
(``--quick`` or ``REPRO_EXAMPLE_QUICK=1`` shrinks the dataset and the
training budget for smoke runs, e.g. from ``scripts/check.sh``.)
"""

import os
import sys

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.experiments.common import ExperimentContext, fast_config
from repro.video.datasets import make_bdd


def main() -> None:
    quick = ("--quick" in sys.argv[1:]
             or bool(os.environ.get("REPRO_EXAMPLE_QUICK")))
    config = (fast_config(scale=150.0, train_frames=120, vae_epochs=2,
                          classifier_epochs=4)
              if quick else fast_config())
    dataset = make_bdd(scale=config.scale, frame_size=config.frame_size)
    context = ExperimentContext(dataset, config)
    print("training per-condition bundles ...")
    registry = context.registry(with_ensembles=False)

    selector = MSBI(registry, MSBIConfig(window_size=10, seed=0))
    pipeline = DriftAwareAnalytics(
        registry, "day", selector, annotator=context.annotator,
        config=PipelineConfig(selection_window=10,
                              drift_inspector=DriftInspectorConfig(seed=0)))

    pipeline.start()
    buffering_since = None
    seen_detections = 0
    for frame in context.stream:
        emitted = pipeline.step(frame)
        partial = pipeline.result()
        if not emitted and buffering_since is None:
            buffering_since = frame.index
            print(f"frame {frame.index:4d}: drift declared -- buffering the "
                  "selection window ...")
        elif emitted and buffering_since is not None:
            event = partial.detections[-1]
            print(f"frame {frame.index:4d}: deployed "
                  f"{event.selected_model!r} after buffering "
                  f"{event.selection_frames} frames; released "
                  f"{len(emitted)} predictions")
            buffering_since = None
            seen_detections += 1
        elif emitted and frame.index % 50 == 0:
            print(f"frame {frame.index:4d}: model "
                  f"{pipeline.deployed_model!r}, prediction "
                  f"{emitted[0].prediction}")
    pipeline.flush()
    result = pipeline.result()
    print(f"\nstream complete: {len(result.records)} frames, "
          f"{len(result.detections)} drifts handled, "
          f"simulated {result.simulated_ms / 1000:.1f} s")


if __name__ == "__main__":
    main()
