"""Bench: Figure 4 (slow-drift detection)."""

from conftest import emit

from repro.experiments import fig4_slow_drift


def test_fig4_slow_drift(benchmark, config):
    result = benchmark.pedantic(
        lambda: fig4_slow_drift.run(config=config), rounds=1, iterations=1)
    emit(result)
    row = result.rows[0]
    assert row["di_delay"] is not None
    assert not row["di_false_positive"]
    if row["odin_delay"] is not None:
        # paper shape: DI needs fewer frames on the gradual transition
        assert row["di_delay"] <= row["odin_delay"]
