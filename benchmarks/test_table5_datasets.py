"""Bench: Table 5 (dataset characteristics)."""

from conftest import emit

from repro.experiments import table5_datasets


def test_table5_datasets(benchmark, config):
    result = benchmark.pedantic(
        lambda: table5_datasets.run(config, sample=150),
        rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        assert abs(row["obj_per_frame"] - row["paper_obj_per_frame"]) < 2.5
