"""Bench: Table 7 (per-frame model-selection time)."""

from conftest import emit

from repro.experiments import table7_per_frame


def test_table7_per_frame(benchmark, all_contexts):
    def run_all():
        return [table7_per_frame.run(ctx) for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results:
        emit(result)
        row = result.rows[0]
        # paper shape: ODIN-Select is far cheaper *per frame* than MSBO/MSBI
        assert row["odin_ms_per_frame"] < row["msbo_ms_per_frame"]
        assert row["odin_ms_per_frame"] < row["msbi_ms_per_frame"]
        if row["dataset"] == "Detrac":
            # exact paper figure for the Detrac configuration
            assert abs(row["odin_ms_per_frame"] - 17.8) < 0.2
