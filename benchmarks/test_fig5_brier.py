"""Bench: Figure 5 (Brier score vs accuracy on BDD)."""

from conftest import emit

from repro.experiments import fig5_brier


def test_fig5_brier(benchmark, bdd):
    result = benchmark.pedantic(
        lambda: fig5_brier.run(bdd, eval_frames=60), rounds=1, iterations=1)
    emit(result)
    # paper shape: the matched model has the lowest Brier score on its own
    # sequence for (at least) 3 of the 4 BDD sequences
    matched = sum(1 for row in result.rows
                  if row["best_by_brier"] == row["sequence"])
    assert matched >= 3
