"""Bench: Table 8 (model-selection time performance)."""

from conftest import emit

from repro.experiments import table8_selection_time


def test_table8_selection_time(benchmark, all_contexts):
    def run_all():
        return [table8_selection_time.run(ctx)
                for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results:
        emit(result)
        row = result.rows[0]
        # paper shape: per-drift MSBO/MSBI selection is orders of magnitude
        # cheaper than ODIN's per-frame selection over the stream
        assert row["msbo_s_per_drift"] < row["odin_s_paper_scale"] / 10
        assert row["msbi_s_per_drift"] < row["odin_s_paper_scale"] / 10
