"""Performance harness for the pipeline's execution modes.

Measures end-to-end frames/sec for the three ways to run a camera fleet --
sequential (:meth:`~repro.core.pipeline.DriftAwareAnalytics.process` per
stream), batched (:meth:`process_batched`) and sharded
(:class:`~repro.parallel.FleetExecutor` across worker processes) -- plus
per-stage microbenchmarks (encode / p-value / martingale / selection)
comparing each stage's scalar loop against its vectorized counterpart.

The workload is the synthetic gaussian fleet used across the test suite:
``--streams`` null streams of ``DIM``-dimensional frames monitored against
a ``REFERENCE_SIZE``-point reference bag, so throughput reflects the
monitor path's per-frame cost rather than drift-resolution work (batched
and sequential resolve drifts identically by construction; the equivalence
suite proves it bit for bit, and this harness re-asserts it on the
records it produces).

On top of the mode measurements, the harness runs the **fleet scaling
sweep**: 1/2/4/8 workers over populations of 100 and 1000 streams with
heterogeneous lengths, planned by the deterministic shard planner
(:func:`repro.parallel.plan_shards`).  Each sweep point reports the
plan's virtual-time numbers (critical path, balance, steal count) and
``speedup_vs_sequential`` -- the batched-mode measured speedup composed
with the plan's parallelism (total frames over the critical path).  The
plan half of that product is bit-reproducible on any machine; where the
sweep also executes the fleet it records the wall-clock ``elapsed_s`` /
``fps`` as optional extra fields (this host serialises workers onto its
cores, so measured wall-clock is the honest-but-host-specific number
and the plan-derived speedup is the portable one).

The findings are written as ``BENCH_pipeline.json`` at the repo root,
validated against :data:`repro.parallel.BENCH_SCHEMA` (v2) before
writing.  Run via ``scripts/bench.sh`` (or directly); ``--quick``
shrinks the stream length and the sweep for a CI smoke pass and is
flagged in the report.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src"))

from repro.core.betting import LogScore, PowerBetting
from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.martingale import AdditiveMartingale
from repro.core.nonconformity import KNNDistance
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.pvalues import PValueCalculator
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.nn.vae import VAE, VAEConfig
from repro.parallel import (
    BENCH_SCHEMA_VERSION,
    BatchedFeatureExtractor,
    FleetExecutor,
    FleetTask,
    plan_shards,
    stream_seed,
    write_bench_report,
)

DIM = 8
REFERENCE_SIZE = 100
BASE_SEED = 0
#: Worker counts the scaling sweep plans (and, where cheap, executes).
SWEEP_WORKERS = (1, 2, 4, 8)
#: Stream-population sizes for the sweep (quick mode keeps the first).
SWEEP_STREAMS = (100, 1000)
#: Sweep points at or below this many streams also execute the fleet
#: for a wall-clock measurement; larger points are plan-only.
SWEEP_MEASURE_LIMIT = 100
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")


class ConstantModel:
    """Fixed-class classifier: keeps inference cost out of the numbers."""

    def __init__(self, label: int):
        self.label = label

    def predict(self, frames):
        return np.full(np.asarray(frames).shape[0], self.label,
                       dtype=np.int64)


def make_registry() -> ModelRegistry:
    rng = np.random.default_rng(777)

    def bundle(name: str, centre: float, label: int) -> ModelBundle:
        sigma = rng.normal(centre, 1.0, size=(REFERENCE_SIZE, DIM))
        scores = KNNDistance(5).reference_scores(sigma)
        return ModelBundle(name=name, sigma=sigma, reference_scores=scores,
                           model=ConstantModel(label))

    return ModelRegistry([bundle("low", 0.0, 0), bundle("high", 6.0, 1)])


def make_pipeline(task: FleetTask, seed: int) -> DriftAwareAnalytics:
    """The fleet factory: one pipeline per stream, seeded per shard."""
    registry = make_registry()
    config = PipelineConfig(
        selection_window=8,
        drift_inspector=DriftInspectorConfig(seed=seed))
    selector = MSBI(registry, MSBIConfig(window_size=8, seed=seed))
    return DriftAwareAnalytics(registry, "low", selector, config=config)


def make_tasks(streams: int, frames_per_stream: int) -> list:
    tasks = []
    for index in range(streams):
        rng = np.random.default_rng(1000 + index)
        frames = rng.normal(0.0, 1.0, size=(frames_per_stream, DIM))
        tasks.append(FleetTask(stream_id=f"cam-{index:02d}", frames=frames))
    return tasks


def _best_of(fn, reps: int = 3) -> float:
    """Wall-clock of the fastest of ``reps`` runs of ``fn()``."""
    elapsed = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


# ----------------------------------------------------------------------
# execution modes
# ----------------------------------------------------------------------
def _run_sequential(tasks) -> dict:
    results = {}

    def run():
        results.clear()
        for task in tasks:
            pipeline = make_pipeline(task, stream_seed(BASE_SEED,
                                                       task.stream_id))
            results[task.stream_id] = pipeline.process(task.frames)

    elapsed = _best_of(run)
    return {"results": results, "elapsed_s": elapsed}


def _run_batched(tasks, batch_size: int) -> dict:
    results = {}

    def run():
        results.clear()
        for task in tasks:
            pipeline = make_pipeline(task, stream_seed(BASE_SEED,
                                                       task.stream_id))
            results[task.stream_id] = pipeline.process_batched(
                task.frames, batch_size=batch_size)

    elapsed = _best_of(run)
    return {"results": results, "elapsed_s": elapsed}


def _run_fleet(tasks, workers: int, batch_size: int) -> dict:
    executor = FleetExecutor(make_pipeline, workers=workers,
                             batch_size=batch_size, base_seed=BASE_SEED)
    results = {}

    def run():
        results.clear()
        for entry in executor.run(tasks):
            results[entry.stream_id] = entry.result

    elapsed = _best_of(run)
    return {"results": results, "elapsed_s": elapsed}


def _record_keys(result) -> list:
    return [(r.frame_index, r.prediction, r.model) for r in result.records]


def _mode_entry(frames: int, elapsed_s: float, baseline_s: float = None,
                **extra) -> dict:
    entry = {"frames": frames, "elapsed_s": round(elapsed_s, 6),
             "fps": round(frames / elapsed_s, 2)}
    if baseline_s is not None:
        entry["speedup_vs_sequential"] = round(baseline_s / elapsed_s, 3)
    entry.update(extra)
    return entry


# ----------------------------------------------------------------------
# stage microbenchmarks
# ----------------------------------------------------------------------
def _stage_entry(seq_s: float, bat_s: float, frames: int) -> dict:
    return {
        "sequential_us_per_frame": round(seq_s / frames * 1e6, 3),
        "batched_us_per_frame": round(bat_s / frames * 1e6, 3),
        "speedup": round(seq_s / bat_s, 3),
    }


def bench_encode(quick: bool) -> dict:
    """Dense VAE embedding: per-frame encode vs BatchedFeatureExtractor."""
    n = 128 if quick else 512
    rng = np.random.default_rng(42)
    vae = VAE(VAEConfig(input_shape=(1, 16, 16), latent_dim=DIM,
                        architecture="dense", hidden=64, epochs=1, seed=7))
    vae.fit(rng.uniform(0.0, 1.0, size=(64, 1, 16, 16)))
    frames = rng.uniform(0.0, 1.0, size=(n, 1, 16, 16))
    extractor = BatchedFeatureExtractor(vae, chunk_size=256, seed=11)

    def seq_run():
        seq_rng = np.random.default_rng(11)
        for i in range(n):
            vae.sample_embed(frames[i:i + 1], rng=seq_rng)

    seq_s = _best_of(seq_run)
    bat_s = _best_of(lambda: extractor.extract(frames))
    return _stage_entry(seq_s, bat_s, n)


def bench_pvalue(quick: bool) -> dict:
    """Smoothed conformal p-values: scalar calls vs one batch call."""
    n = 2000 if quick else 20000
    rng = np.random.default_rng(43)
    reference = rng.normal(1.0, 0.2, size=REFERENCE_SIZE)
    scores = rng.normal(1.0, 0.2, size=n)
    seq_calc = PValueCalculator(reference, seed=5)
    bat_calc = PValueCalculator(reference, seed=5)
    seq_s = _best_of(lambda: [seq_calc(s) for s in scores])
    bat_s = _best_of(lambda: bat_calc.batch(scores))
    return _stage_entry(seq_s, bat_s, n)


def bench_martingale(quick: bool) -> dict:
    """Additive CUSUM martingale: update loop vs update_batch."""
    n = 2000 if quick else 20000
    rng = np.random.default_rng(44)
    ps = rng.uniform(0.0, 1.0, size=n)

    def make():
        return AdditiveMartingale(LogScore(PowerBetting(0.1)), window=3)

    def seq_run():
        martingale = make()
        for p in ps:
            martingale.update(p)

    seq_s = _best_of(seq_run)
    bat_s = _best_of(lambda: make().update_batch(ps))
    return _stage_entry(seq_s, bat_s, n)


def bench_selection(quick: bool) -> dict:
    """MSBI window testing: per-frame observe loop vs observe_batch."""
    window = 32 if quick else 64
    reps = 5
    rng = np.random.default_rng(45)
    frames = rng.normal(0.0, 1.0, size=(window, DIM))
    registry = make_registry()

    def run(batched: bool):
        selector = MSBI(registry, MSBIConfig(
            window_size=window, seed=0, batched_testing=batched))
        for _ in range(reps):
            selector.select(frames)

    seq_s = _best_of(lambda: run(False))
    bat_s = _best_of(lambda: run(True))
    return _stage_entry(seq_s, bat_s, window * reps * len(registry))


# ----------------------------------------------------------------------
# fleet scaling sweep
# ----------------------------------------------------------------------
def sweep_loads(streams: int) -> list:
    """Heterogeneous per-stream frame counts (40..160) for a sweep
    population -- seeded by the population size, so every run of the
    harness plans exactly the same fleet."""
    rng = np.random.default_rng(BASE_SEED * 100003 + streams)
    return [int(n) for n in rng.integers(40, 161, size=streams)]


def sweep_tasks(streams: int) -> list:
    loads = sweep_loads(streams)
    tasks = []
    for index, length in enumerate(loads):
        rng = np.random.default_rng(5000 + index)
        frames = rng.normal(0.0, 1.0, size=(length, DIM))
        tasks.append(FleetTask(stream_id=f"sweep-{index:04d}",
                               frames=frames))
    return tasks


def run_scaling_sweep(batched_speedup: float, batch_size: int,
                      quick: bool) -> list:
    """One scaling entry per (workers, streams) point.

    ``speedup_vs_sequential`` composes the measured batched speedup with
    the shard plan's virtual-time parallelism (``total / critical``):
    the throughput a fleet of genuinely parallel workers achieves over
    one sequential process.  The plan factor is a pure function of the
    seeded loads, so the committed numbers reproduce bit-for-bit on any
    machine; wall-clock execution (done for the small population in full
    runs) lands in the optional ``elapsed_s`` / ``fps`` fields.
    """
    stream_counts = SWEEP_STREAMS[:1] if quick else SWEEP_STREAMS
    entries = []
    for streams in stream_counts:
        loads = sweep_loads(streams)
        total = sum(loads)
        measure = not quick and streams <= SWEEP_MEASURE_LIMIT
        tasks = sweep_tasks(streams) if measure else None
        for workers in SWEEP_WORKERS:
            plan = plan_shards(loads, workers, seed=BASE_SEED)
            entry = {
                "workers": workers,
                "streams": streams,
                "frames": total,
                "speedup_vs_sequential": round(
                    batched_speedup * plan.speedup(), 3),
                "critical_path_frames": plan.critical_path,
                "balance": round(plan.balance, 4),
                "steals": len(plan.steals),
            }
            if measure:
                executor = FleetExecutor(make_pipeline, workers=workers,
                                         batch_size=batch_size,
                                         base_seed=BASE_SEED)
                start = time.perf_counter()
                executor.run(tasks)
                elapsed = time.perf_counter() - start
                entry["elapsed_s"] = round(elapsed, 6)
                entry["fps"] = round(total / elapsed, 2)
            entries.append(entry)
    return entries


# ----------------------------------------------------------------------
def run_benchmark(streams: int = 4, frames_per_stream: int = 4500,
                  batch_size: int = 256, workers: int = 4,
                  quick: bool = False) -> dict:
    """Run all modes and stages; returns a BENCH_SCHEMA-valid report."""
    if quick:
        frames_per_stream = min(frames_per_stream, 600)
    tasks = make_tasks(streams, frames_per_stream)
    total = streams * frames_per_stream

    sequential = _run_sequential(tasks)
    batched = _run_batched(tasks, batch_size)
    fleet = _run_fleet(tasks, workers, batch_size)

    # the three modes must agree frame for frame; a mismatch means the
    # batched or sharded path broke equivalence, so fail loudly
    for task in tasks:
        expected = _record_keys(sequential["results"][task.stream_id])
        for name, mode in (("batched", batched), ("fleet", fleet)):
            got = _record_keys(mode["results"][task.stream_id])
            if got != expected:
                raise AssertionError(
                    f"{name} records diverged from sequential on "
                    f"{task.stream_id}")

    baseline = sequential["elapsed_s"]
    batched_speedup = round(baseline / batched["elapsed_s"], 3)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "drift-aware pipeline: sequential vs batched vs fleet",
        "quick": quick,
        "config": {
            "streams": streams,
            "frames_per_stream": frames_per_stream,
            "frame_shape": [DIM],
            "batch_size": batch_size,
            "workers": workers,
            "reference_size": REFERENCE_SIZE,
            "latent_dim": DIM,
            "transport": "shm",
            "host_cores": os.cpu_count() or 1,
        },
        "modes": {
            "sequential": _mode_entry(total, baseline),
            "batched": _mode_entry(total, batched["elapsed_s"], baseline,
                                   batch_size=batch_size),
            "fleet": _mode_entry(total, fleet["elapsed_s"], baseline,
                                 workers=workers, batch_size=batch_size,
                                 transport="shm"),
        },
        "stages": {
            "encode": bench_encode(quick),
            "pvalue": bench_pvalue(quick),
            "martingale": bench_martingale(quick),
            "selection": bench_selection(quick),
        },
        "scaling": run_scaling_sweep(batched_speedup, batch_size, quick),
    }


def _print_report(report: dict) -> None:
    config = report["config"]
    print(f"fleet: {config['streams']} streams x "
          f"{config['frames_per_stream']} frames "
          f"(dim {config['latent_dim']}, reference {config['reference_size']},"
          f" batch {config['batch_size']}, workers {config['workers']})")
    print(f"{'mode':<12} {'frames':>8} {'elapsed_s':>10} {'fps':>10} "
          f"{'speedup':>8}")
    for name in ("sequential", "batched", "fleet"):
        entry = report["modes"][name]
        speedup = entry.get("speedup_vs_sequential", 1.0)
        print(f"{name:<12} {entry['frames']:>8} {entry['elapsed_s']:>10.3f} "
              f"{entry['fps']:>10.0f} {speedup:>7.2f}x")
    print()
    print(f"{'stage':<12} {'seq us/frame':>13} {'bat us/frame':>13} "
          f"{'speedup':>8}")
    for name in ("encode", "pvalue", "martingale", "selection"):
        entry = report["stages"][name]
        print(f"{name:<12} {entry['sequential_us_per_frame']:>13.2f} "
              f"{entry['batched_us_per_frame']:>13.2f} "
              f"{entry['speedup']:>7.2f}x")
    print()
    print(f"{'workers':>7} {'streams':>8} {'frames':>8} {'critical':>9} "
          f"{'balance':>8} {'steals':>7} {'speedup':>8}")
    for entry in report["scaling"]:
        print(f"{entry['workers']:>7} {entry['streams']:>8} "
              f"{entry['frames']:>8} {entry['critical_path_frames']:>9} "
              f"{entry['balance']:>8.3f} {entry['steals']:>7} "
              f"{entry['speedup_vs_sequential']:>7.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short streams for a CI smoke pass")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument("--frames", type=int, default=4500,
                        help="frames per stream (capped at 600 with --quick)")
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    report = run_benchmark(streams=args.streams,
                           frames_per_stream=args.frames,
                           batch_size=args.batch_size,
                           workers=args.workers, quick=args.quick)
    _print_report(report)
    write_bench_report(args.output, report)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
