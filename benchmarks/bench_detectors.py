"""Accuracy shoot-out for the drift-detector zoo.

Runs every detector registered in :mod:`repro.detectors.zoo` through the
runtime kernel on the extended scenario matrix defined in
:mod:`repro.detectors.bench` -- the core matrix (abrupt, subtle, gradual
and slow distribution shifts plus a stationary specificity control) and
the operational drift scripts (single-factor lighting/geometry drifts,
recurring drift, an adversarially slow ramp, camera displacement with
recalibration, a transient occluder) -- and scores detection delay,
false alarms and mean time between false alarms per cell, averaged over
seeds.  Script-backed cells carry per-factor attribution scores.

The committed ``BENCH_detectors.json`` is the accuracy contract:
``scripts/check.sh detectors-smoke`` re-validates it against
``DETECTORS_SCHEMA`` on every run, so a detector silently losing its
ability to catch the matrix shows up as a diff in review, exactly like a
latency regression in ``BENCH_pipeline.json``.  ``--quick`` halves every
scenario and drops to one seed for a CI smoke pass and is flagged in the
report.  Run via ``scripts/bench.sh detectors``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src"))

from repro.detectors.bench import (
    DEFAULT_SEEDS,
    extended_scenario_matrix,
    run_benchmark,
    write_detectors_report,
)
from repro.detectors import zoo

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_detectors.json")


def _fmt(value, width: int) -> str:
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:>{width}.1f}"


def _print_report(report: dict) -> None:
    scenarios = list(report["scenarios"])
    seeds = report["scenarios"][scenarios[0]]["seeds"]
    print(f"detector matrix: {len(report['detectors'])} detectors x "
          f"{len(scenarios)} scenarios, {len(seeds)} seed(s) "
          f"(delay frames / false alarms per run)")
    header = f"{'detector':>13}"
    for name in scenarios:
        header += f" {name[:12]:>14}"
    print(header)
    for detector, entry in sorted(report["detectors"].items()):
        row = f"{detector:>13}"
        for name in scenarios:
            cell = entry["scenarios"][name]
            row += (f" {_fmt(cell['detection_delay'], 8)}/"
                    f"{cell['false_alarms']:<5.1f}")
        print(row)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="halved scenarios, one seed: CI smoke pass")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--detectors", default=None,
                        help="comma-separated subset (default: whole zoo)")
    parser.add_argument("--seeds", default=None,
                        help="comma-separated seeds (default: "
                             f"{','.join(map(str, DEFAULT_SEEDS))})")
    args = parser.parse_args(argv)

    detectors = (args.detectors.split(",") if args.detectors
                 else zoo.names())
    if args.seeds:
        seeds = tuple(int(seed) for seed in args.seeds.split(","))
    else:
        seeds = (DEFAULT_SEEDS[:1] if args.quick else DEFAULT_SEEDS)

    report = run_benchmark(detectors=detectors,
                           scenarios=extended_scenario_matrix(args.quick),
                           seeds=seeds, quick=args.quick)
    _print_report(report)
    write_detectors_report(args.output, report)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
