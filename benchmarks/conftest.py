"""Benchmark fixtures.

Benchmarks reproduce the paper's tables and figures and print them; set
``REPRO_BENCH_PROFILE=fast`` for a quick smoke pass (the default ``default``
profile trains the full per-segment model zoo and takes a few minutes on a
laptop-class CPU).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentContext, HarnessConfig, fast_config
from repro.video.datasets import make_bdd, make_detrac, make_tokyo


def bench_config() -> HarnessConfig:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "default")
    if profile == "fast":
        return fast_config()
    return HarnessConfig()


@pytest.fixture(scope="session")
def config():
    return bench_config()


def _context(maker, config):
    return ExperimentContext(
        maker(scale=config.scale, frame_size=config.frame_size), config)


@pytest.fixture(scope="session")
def bdd(config):
    return _context(make_bdd, config)


@pytest.fixture(scope="session")
def detrac(config):
    return _context(make_detrac, config)


@pytest.fixture(scope="session")
def tokyo(config):
    return _context(make_tokyo, config)


@pytest.fixture(scope="session")
def all_contexts(bdd, detrac, tokyo):
    return {"BDD": bdd, "Detrac": detrac, "Tokyo": tokyo}


def emit(result) -> None:
    """Print a reproduced table below the benchmark timings."""
    print()
    print(result.format_table())
