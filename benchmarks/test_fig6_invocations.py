"""Bench: Figure 6 (model invocations per frame)."""

from conftest import emit

from repro.experiments import fig6_invocations


def test_fig6_invocations(benchmark, all_contexts):
    def run_all():
        return [fig6_invocations.run(ctx) for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    saw_ensemble = False
    for result in results:
        emit(result)
        for row in result.rows:
            assert row["msbo_invocations_per_frame"] == 1.0
            assert row["msbi_invocations_per_frame"] == 1.0
            assert row["odin_invocations_per_frame"] >= 1.0
            saw_ensemble |= row["odin_ensemble_fraction"] > 0
    # paper shape: ODIN-Select forms ensembles on at least some sequences
    assert saw_ensemble
