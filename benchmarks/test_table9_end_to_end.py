"""Bench: Table 9 (end-to-end time performance, 5 systems)."""

from conftest import emit

from repro.experiments import table9_end_to_end


def test_table9_end_to_end(benchmark, all_contexts):
    def run_all():
        return [table9_end_to_end.run(ctx) for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results:
        emit(result)
        seconds = {r["system"]: r["paper_scale_s"] for r in result.rows}
        # paper shape: (DI, MSBO) beats ODIN by a large factor; Mask R-CNN is
        # an order of magnitude slower than everything drift-aware
        assert seconds["(DI, MSBO)"] < seconds["ODIN"] / 2
        assert seconds["(DI, MSBI)"] < seconds["ODIN"] / 2
        assert seconds["MaskRCNN"] > 5 * seconds["(DI, MSBO)"]
