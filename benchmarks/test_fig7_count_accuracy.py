"""Bench: Figure 7 (count-query accuracy A_q)."""

from conftest import emit

from repro.experiments import fig7_count_accuracy


def test_fig7_count_accuracy(benchmark, all_contexts):
    def run_all():
        return [fig7_count_accuracy.run(ctx)
                for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results:
        emit(result)
        overall = next(r for r in result.rows if r["sequence"] == "OVERALL")
        # paper shape: drift-aware pipelines beat the oblivious fast
        # detector; Mask R-CNN (the annotation source) is perfect
        assert overall["A_q[MaskRCNN]"] == 1.0
        assert overall["A_q[(DI, MSBO)]"] > overall["A_q[YOLO]"]
        assert overall["A_q[(DI, MSBI)]"] > overall["A_q[YOLO]"]
