"""Bench: Table 6 (drift-detection time performance)."""

from conftest import emit

from repro.experiments import table6_detect_time


def test_table6_detect_time(benchmark, all_contexts):
    def run_all():
        return [table6_detect_time.run(ctx) for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results:
        emit(result)
        row = result.rows[0]
        # paper shape: DI needs at least ~40% less time than ODIN-Detect
        assert row["di_paper_scale_s"] < 0.8 * row["odin_paper_scale_s"]
