"""Bench: Figure 8 (spatial-constrained query accuracy on BDD)."""

from conftest import emit

from repro.experiments import fig8_spatial_accuracy


def test_fig8_spatial_accuracy(benchmark, bdd):
    result = benchmark.pedantic(
        lambda: fig8_spatial_accuracy.run(bdd), rounds=1, iterations=1)
    emit(result)
    overall = next(r for r in result.rows if r["sequence"] == "OVERALL")
    assert overall["A_q[MaskRCNN]"] == 1.0
    assert overall["A_q[(DI, MSBO)]"] >= overall["A_q[YOLO]"] - 0.05
