"""Load-sweep harness for the multi-tenant serving layer.

Sweeps offered load from half to twice the backend's capacity (derived
from the same :class:`~repro.sim.costs.CostProfile` the simulated clock
charges) and records, per load point, the SLO outcome of serving a small
camera fleet through :class:`~repro.serve.DriftServer`: goodput, shed
and deadline-miss rates, and per-stream latency percentiles.  The point
of the sweep is the *degradation shape*: beyond saturation the overload
controller must hold goodput near capacity by degrading or rejecting the
excess at admission, not let it collapse to late, missed frames.

The fleet is heterogeneous on purpose: odd-indexed streams are premium
tenants (priority 1, double weight, ``degraded_allowed=False`` -- their
infeasible frames are *rejected*, never degraded), even-indexed streams
are standard tenants whose excess rides the cheap degraded pass.

Invariants asserted on every run, mirroring the equivalence check in
``bench_perf.py``:

- beyond saturation (offered load >= 1.0) goodput stays at >= 80% of
  capacity and full-path throughput at >= 70% (the gap is the backend
  time the degraded pass consumes);
- at >= 1.5x load both overload outcomes actually fire: ``degraded > 0``
  and ``rejected_infeasible > 0``;
- an unconstrained stream served through the full admission/scheduling
  machinery is bit-identical to
  :meth:`~repro.core.pipeline.DriftAwareAnalytics.process_batched`.

Every number is simulated, so the committed ``BENCH_serve.json`` is
reproducible bit for bit; ``--quick`` shrinks the stream length for a CI
smoke pass and is flagged in the report.  Run via
``scripts/bench.sh serve``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src"))

from repro.serve import (
    DEGRADED_FRAME_OPS,
    DriftServer,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    frame_cost_ms,
    generate_arrivals,
    write_serve_report,
)
from repro.testing import gaussian_stream, make_pipeline, result_sig

BASE_SEED = 424242
BATCH_SIZE = 16
QUEUE_CAPACITY = 8
DEADLINE_MS = 60.0
SHED_POLICY = "drop-oldest"
PATTERN = "poisson"
LOADS = (0.5, 1.0, 1.5, 2.0)
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_serve.json")


def build_fleet(streams: int, frames_per_stream: int, load: float,
                capacity: float):
    """Sessions plus merged arrivals for one offered-load point."""
    per_stream_rate = load * capacity / streams
    sessions, arrivals = [], []
    for index in range(streams):
        stream_id = f"cam-{index:02d}"
        seed = BASE_SEED + index
        premium = bool(index % 2)
        sessions.append(StreamSession(
            stream_id, make_pipeline(seed=seed),
            SessionConfig(priority=int(premium), deadline_ms=DEADLINE_MS,
                          queue_capacity=QUEUE_CAPACITY,
                          shed_policy=SHED_POLICY,
                          weight=2.0 if premium else 1.0,
                          degraded_allowed=not premium)))
        frames = gaussian_stream(
            seed, [(0.0, frames_per_stream // 2),
                   (6.0, frames_per_stream - frames_per_stream // 2)])
        arrivals.extend(generate_arrivals(
            frames,
            WorkloadConfig(rate_fps=per_stream_rate, pattern=PATTERN),
            stream_id=stream_id, deadline_ms=DEADLINE_MS, seed=seed))
    return sessions, arrivals


def run_load_point(streams: int, frames_per_stream: int, load: float,
                   capacity: float) -> dict:
    sessions, arrivals = build_fleet(streams, frames_per_stream, load,
                                     capacity)
    server = DriftServer(sessions, ServeConfig(
        scheduler=SchedulerConfig(batch_size=BATCH_SIZE)))
    result = server.run(arrivals)
    if load >= 1.0:
        # graceful degradation, not collapse: in-deadline completions
        # hold near capacity while the controller diverts the excess
        if result.goodput_fps < 0.8 * capacity:
            raise AssertionError(
                f"goodput collapsed beyond saturation: "
                f"{result.goodput_fps:.1f} fps vs capacity "
                f"{capacity:.1f} fps at offered load {load}")
        if result.throughput_fps < 0.7 * capacity:
            raise AssertionError(
                f"full-path throughput collapsed beyond saturation: "
                f"{result.throughput_fps:.1f} fps vs capacity "
                f"{capacity:.1f} fps at offered load {load}")
    if load >= 1.5:
        if result.degraded == 0:
            raise AssertionError(
                f"degraded path never fired at offered load {load}")
        if result.rejected_infeasible == 0:
            raise AssertionError(
                f"no infeasible arrivals were rejected at offered "
                f"load {load}")
    return result.slo_entry(load, load * capacity)


def assert_serve_equivalence(frames_per_stream: int,
                             capacity: float) -> None:
    """The serve path must not change a single pipeline decision."""
    frames = gaussian_stream(
        BASE_SEED, [(0.0, frames_per_stream // 2),
                    (6.0, frames_per_stream - frames_per_stream // 2)])
    reference = make_pipeline(seed=BASE_SEED).process_batched(
        frames, batch_size=BATCH_SIZE)
    session = StreamSession(
        "cam-00", make_pipeline(seed=BASE_SEED),
        SessionConfig(deadline_ms=1e12, queue_capacity=1 << 20))
    arrivals = generate_arrivals(
        frames, WorkloadConfig(rate_fps=0.5 * capacity),
        stream_id="cam-00", deadline_ms=1e12, seed=BASE_SEED)
    served = DriftServer([session], ServeConfig(
        scheduler=SchedulerConfig(batch_size=BATCH_SIZE))).run(arrivals)
    if result_sig(served.pipeline_results["cam-00"]) != result_sig(
            reference):
        raise AssertionError(
            "unconstrained serve path diverged from process_batched")


def run_benchmark(streams: int = 4, frames_per_stream: int = 600,
                  quick: bool = False) -> dict:
    if quick:
        frames_per_stream = min(frames_per_stream, 160)
    capacity = capacity_fps()
    assert_serve_equivalence(frames_per_stream, capacity)
    sweep = [run_load_point(streams, frames_per_stream, load, capacity)
             for load in LOADS]
    point = run_load_point(streams, frames_per_stream, LOADS[0], capacity)
    if point != sweep[0]:
        raise AssertionError("serving run is not deterministic")
    return {
        "schema_version": 2,
        "benchmark": "multi-tenant serving: offered-load sweep",
        "quick": quick,
        "config": {
            "streams": streams,
            "frames_per_stream": frames_per_stream,
            "batch_size": BATCH_SIZE,
            "queue_capacity": QUEUE_CAPACITY,
            "deadline_ms": DEADLINE_MS,
            "shed_policy": SHED_POLICY,
            "pattern": PATTERN,
            "seed": BASE_SEED,
        },
        "capacity_fps": round(capacity, 6),
        "frame_cost_ms": round(frame_cost_ms(), 6),
        "degraded_cost_ms": round(
            frame_cost_ms(operations=DEGRADED_FRAME_OPS), 6),
        "sweep": sweep,
    }


def _print_report(report: dict) -> None:
    config = report["config"]
    print(f"serving sweep: {config['streams']} streams x "
          f"{config['frames_per_stream']} frames, capacity "
          f"{report['capacity_fps']:.1f} fps "
          f"(queue {config['queue_capacity']}, deadline "
          f"{config['deadline_ms']} ms, policy {config['shed_policy']})")
    print(f"{'load':>5} {'arrivals':>9} {'processed':>10} "
          f"{'degraded':>9} {'rej-inf':>8} {'miss%':>7} {'p99ms':>8} "
          f"{'thru fps':>9} {'good fps':>9}")
    for entry in report["sweep"]:
        totals = entry["totals"]
        print(f"{entry['offered_load']:>5.1f} {totals['arrivals']:>9} "
              f"{totals['processed']:>10} {totals['degraded']:>9} "
              f"{totals['rejected_infeasible']:>8} "
              f"{totals['deadline_miss_rate'] * 100:>6.1f}% "
              f"{totals['p99_latency_ms']:>8.2f} "
              f"{totals['throughput_fps']:>9.1f} "
              f"{totals['goodput_fps']:>9.1f}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short streams for a CI smoke pass")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument("--frames", type=int, default=600,
                        help="frames per stream (capped at 160 with --quick)")
    args = parser.parse_args(argv)

    report = run_benchmark(streams=args.streams,
                           frames_per_stream=args.frames,
                           quick=args.quick)
    _print_report(report)
    write_serve_report(args.output, report)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
