"""Ablation benches for the design choices DESIGN.md calls out."""

from conftest import emit

from repro.experiments import ablations


def test_ablation_betting(benchmark, bdd):
    result = benchmark.pedantic(lambda: ablations.betting_ablation(bdd),
                                rounds=1, iterations=1)
    emit(result)
    rows = {r["variant"]: r for r in result.rows}
    # the r = 0.5 test carries a false-alarm budget: allow one borderline
    # episode out of three for the default configuration
    default = rows["power eps=0.1 (default)"]
    assert default["missed"] + default["false_alarms"] <= 1


def test_ablation_sensitivity(benchmark, bdd):
    result = benchmark.pedantic(lambda: ablations.sensitivity_ablation(bdd),
                                rounds=1, iterations=1)
    emit(result)
    # the paper's claim: nominal dependency on W and K -- every variant
    # detects the drifts (tolerating one borderline episode)
    for row in result.rows:
        if row["parameter"] in ("W", "K"):
            assert row["missed"] + row["false_alarms"] <= 1, row


def test_ablation_embedding(benchmark, bdd):
    result = benchmark.pedantic(lambda: ablations.embedding_ablation(bdd),
                                rounds=1, iterations=1)
    emit(result)
    rows = {r["variant"]: r for r in result.rows}
    full = rows["full (default)"]
    assert full["missed"] + full["false_alarms"] <= 1


def test_ablation_ensemble_size(benchmark, bdd):
    result = benchmark.pedantic(
        lambda: ablations.ensemble_size_ablation(bdd), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        assert (row["correct_selections"] + row["novel_flags"]
                <= row["drifts"])
