"""Accuracy/cost frontier for the tiered monitoring cascade.

Runs the cascade (swept over escalation thresholds), the always-on Drift
Inspector, and the tier-0 pixel-stat screen alone through the runtime
kernel on the scenario matrix from :mod:`repro.detectors.bench`, and
scores each mode's detection delay, false alarms, escalation share and
simulated per-frame cost into ``BENCH_cascade.json``.

The committed report is the frontier contract: ``scripts/check.sh``
re-validates it against ``CASCADE_SCHEMA`` and holds the headline
cascade mode to its bars (stationary escalation <= 20% at >= 3x lower
cost than always-on DI, abrupt delay within 2x) on every run.
``--quick`` halves every scenario and drops to one seed for the CI
smoke pass and is flagged in the report.  Run via
``scripts/bench.sh cascade``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src"))

from repro.cascade.bench import (
    DEFAULT_THRESHOLDS,
    run_benchmark,
    write_cascade_report,
)
from repro.detectors.bench import DEFAULT_SEEDS

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_cascade.json")


def _fmt(value, width: int) -> str:
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:>{width}.1f}"


def _print_report(report: dict) -> None:
    scenarios = list(report["scenarios"])
    seeds = report["scenarios"][scenarios[0]]["seeds"]
    print(f"cascade frontier: {len(report['modes'])} modes x "
          f"{len(scenarios)} scenarios, {len(seeds)} seed(s) "
          f"(delay frames / escalated % / simulated us per frame)")
    header = f"{'mode':>14}"
    for name in scenarios:
        header += f" {name[:12]:>19}"
    print(header)
    for mode, entry in report["modes"].items():
        row = f"{mode:>14}"
        for name in scenarios:
            cell = entry["scenarios"][name]
            row += (f" {_fmt(cell['detection_delay'], 6)}/"
                    f"{cell['escalated_pct']:>5.1f}/"
                    f"{cell['us_per_frame']:>6.0f}")
        print(row)
    headline = report["default_mode"]
    print(f"headline mode: {headline}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="halved scenarios, one seed: CI smoke pass")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--thresholds", default=None,
                        help="comma-separated escalation thresholds "
                             "(default: "
                             f"{','.join(map(str, DEFAULT_THRESHOLDS))})")
    parser.add_argument("--seeds", default=None,
                        help="comma-separated seeds (default: "
                             f"{','.join(map(str, DEFAULT_SEEDS))})")
    args = parser.parse_args(argv)

    thresholds = (tuple(float(t) for t in args.thresholds.split(","))
                  if args.thresholds else DEFAULT_THRESHOLDS)
    if args.seeds:
        seeds = tuple(int(seed) for seed in args.seeds.split(","))
    else:
        seeds = (DEFAULT_SEEDS[:1] if args.quick else DEFAULT_SEEDS)

    report = run_benchmark(thresholds=thresholds, seeds=seeds,
                           quick=args.quick)
    _print_report(report)
    write_cascade_report(args.output, report)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
