"""Bench: DI vs classical change detectors (extension experiment)."""

from conftest import emit

from repro.experiments import statistical_baselines


def test_statistical_baselines(benchmark, bdd):
    result = benchmark.pedantic(
        lambda: statistical_baselines.run(bdd), rounds=1, iterations=1)
    emit(result)
    rows = {r["detector"]: r for r in result.rows}
    di = rows["DriftInspector"]
    # DI detects the drifts promptly; a small false-alarm budget is part of
    # the r = 0.5 design (episodes + null segments give 7 chances here)
    assert di["detected"] >= 2
    assert di["mean_delay"] < 25
    assert di["missed"] + di["false_alarms"] <= 3
    # at least one classical detector does no better on combined errors
    di_errors = di["missed"] + di["false_alarms"]
    assert any(rows[name]["missed"] + rows[name]["false_alarms"] >= di_errors
               for name in ("KS", "CUSUM", "Moment"))
