"""Bench: Figure 3 (drift-detection delay, DI vs ODIN-Detect)."""

from conftest import emit

from repro.experiments import fig3_detection


def test_fig3_detection(benchmark, all_contexts):
    def run_all():
        return [fig3_detection.run(ctx, warmup=25, limit=150)
                for ctx in all_contexts.values()]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    di_delays, odin_delays, false_positives = [], [], 0
    for result in results:
        emit(result)
        for row in result.rows:
            false_positives += int(row["di_false_positive"])
            if row["di_delay"] is not None and row["di_delay"] >= 0:
                di_delays.append(row["di_delay"])
            if row["odin_delay"] is not None and row["odin_delay"] >= 0:
                odin_delays.append(row["odin_delay"])
    # the r = 0.5 test tolerates a small false-alarm budget; at most one of
    # the nine drift episodes may pre-fire
    assert false_positives <= 1
    # paper shape: DI detects drifts, and in fewer frames than ODIN-Detect
    assert di_delays
    assert sum(di_delays) / len(di_delays) < (
        sum(odin_delays) / max(len(odin_delays), 1) if odin_delays else 1e9)
