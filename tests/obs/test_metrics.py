"""Metric primitives: counters, gauges, fixed-bucket histograms, registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_bucket_edges_are_half_open(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0))
        for value in (0.5, 1.0):   # both land in bucket 0 (<= 1.0)
            histogram.observe(value)
        histogram.observe(1.5)     # (1.0, 2.0]
        histogram.observe(2.0)     # boundary value stays in its bucket
        histogram.observe(3.0)     # overflow
        assert histogram.counts == [2, 2, 1]
        assert histogram.total == 5
        assert histogram.sum == pytest.approx(8.0)

    def test_bucket_count_is_boundaries_plus_one(self):
        histogram = Histogram("h")
        assert len(histogram.counts) == len(DEFAULT_MS_BUCKETS) + 1

    def test_rejects_empty_boundaries(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            Histogram("h", boundaries=())

    def test_rejects_non_increasing_boundaries(self):
        with pytest.raises(ConfigurationError, match="strictly"):
            Histogram("h", boundaries=(1.0, 1.0, 2.0))

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False), max_size=80))
    def test_observe_many_matches_scalar_loop(self, values):
        scalar = Histogram("a", boundaries=(0.0, 10.0, 100.0))
        batched = Histogram("b", boundaries=(0.0, 10.0, 100.0))
        for value in values:
            scalar.observe(value)
        batched.observe_many(values)
        assert batched.counts == scalar.counts
        assert batched.total == scalar.total
        assert batched.sum == scalar.sum

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_every_observation_lands_in_exactly_one_bucket(self, value):
        histogram = Histogram("h", boundaries=(-10.0, 0.0, 10.0))
        histogram.observe(value)
        assert sum(histogram.counts) == 1
        index = histogram.counts.index(1)
        if index > 0:
            assert value > histogram.boundaries[index - 1]
        if index < len(histogram.boundaries):
            assert value <= histogram.boundaries[index]


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("metric")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.histogram("metric")

    def test_histogram_boundary_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ConfigurationError, match="boundaries"):
            registry.histogram("h", boundaries=(1.0, 3.0))
        # re-request without boundaries returns the existing instrument
        assert registry.histogram("h").boundaries == (1.0, 2.0)

    def test_snapshot_is_sorted_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(-1.5)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["gauges"] == {"g": -1.5}
        assert snapshot["histograms"]["h"] == {
            "boundaries": [1.0], "counts": [1, 0], "total": 1, "sum": 0.5}

    def test_state_dict_round_trip_restores_values(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        state = registry.state_dict()
        registry.counter("c").inc(10)
        registry.counter("late").inc(7)   # did not exist at capture time
        registry.histogram("h").observe(2.0)
        registry.load_state_dict(state)
        assert registry.counter("c").value == 3
        assert registry.counter("late").value == 0
        assert registry.histogram("h").counts == [1, 0]
