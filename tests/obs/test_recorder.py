"""Recorder: events, sequence numbers, rollback, sinks, the null object."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    LOGICAL,
    TIMING,
    JsonlSink,
    MemorySink,
    NullRecorder,
    Recorder,
    logical_events,
)
from repro.obs.recorder import NULL_RECORDER
from repro.sim.clock import SimulatedClock


class TestEvents:
    def test_event_carries_category_sequence(self):
        recorder = Recorder()
        first = recorder.event("drift_detected", frame=10)
        with recorder.span("stage"):
            pass
        second = recorder.event("model_deployed", model="high")
        assert (first["seq"], first["cat"]) == (0, LOGICAL)
        assert (second["seq"], second["cat"]) == (1, LOGICAL)
        # the span event consumed the timing sequence, not the logical one
        timing = [e for e in recorder.events if e["cat"] == TIMING]
        assert [e["seq"] for e in timing] == [0]

    def test_timestamps_come_from_bound_clock(self):
        clock = SimulatedClock()
        recorder = Recorder()
        recorder.bind_clock(clock)
        clock.charge_ms("work", 7.0)
        assert recorder.event("e")["ts_ms"] == 7.0

    def test_bind_clock_does_not_override_existing(self):
        clock = SimulatedClock()
        recorder = Recorder(clock=clock)
        recorder.bind_clock(SimulatedClock())
        assert recorder.clock is clock
        assert recorder.tracer.clock is clock

    def test_unbound_recorder_stamps_zero(self):
        assert Recorder().event("e")["ts_ms"] == 0.0

    def test_keep_events_false_counts_without_retaining(self):
        recorder = Recorder(keep_events=False)
        recorder.event("a")
        recorder.event("a")
        assert recorder.events == []
        summary = recorder.summary()
        assert summary["events"]["logical"] == 2
        assert summary["events"]["by_kind"] == {"a": 2}
        assert recorder.flush(MemorySink()) == 0

    def test_logical_events_strips_timing_fields(self):
        recorder = Recorder(clock=SimulatedClock())
        recorder.event("drift_detected", frame=3)
        with recorder.span("stage"):
            pass
        stream = logical_events(recorder.events)
        assert stream == [{"seq": 0, "cat": LOGICAL,
                           "kind": "drift_detected", "frame": 3}]
        # the snapshot form is accepted too
        assert logical_events(recorder.snapshot()) == stream


class TestSpansFoldIntoSummary:
    def test_span_stats_accumulate(self):
        clock = SimulatedClock()
        recorder = Recorder(clock=clock)
        for cost in (2.0, 5.0):
            with recorder.span("stage"):
                clock.charge_ms("work", cost)
        stats = recorder.summary()["spans"]["stage"]
        assert stats == {"count": 2, "total_ms": 7.0, "max_ms": 5.0}


class TestRollback:
    def test_load_state_dict_truncates_events_and_aggregates(self):
        clock = SimulatedClock()
        recorder = Recorder(clock=clock)
        recorder.counter("c").inc()
        recorder.event("kept")
        state = recorder.state_dict()

        recorder.counter("c").inc(5)
        recorder.event("rolled_back")
        with recorder.span("abandoned"):
            clock.charge_ms("work", 3.0)
        recorder.load_state_dict(state)

        assert [e["kind"] for e in recorder.events] == ["kept"]
        summary = recorder.summary()
        assert summary["counters"] == {"c": 1.0}
        assert summary["events"]["by_kind"] == {"kept": 1}
        assert summary["spans"] == {}
        # sequence numbers resume where the restore point left them
        assert recorder.event("next")["seq"] == 1

    def test_rollback_then_replay_is_equivalent_to_straight_run(self):
        def run(rollback: bool) -> dict:
            clock = SimulatedClock()
            recorder = Recorder(clock=clock)
            recorder.event("start")
            if rollback:
                state = recorder.state_dict()
                recorder.event("speculative")
                recorder.counter("c").inc(9)
                recorder.load_state_dict(state)
            recorder.event("end")
            recorder.counter("c").inc()
            return recorder.snapshot()

        assert run(rollback=True) == run(rollback=False)


class TestSinks:
    def test_flush_is_incremental_and_rollback_safe(self):
        sink = MemorySink()
        recorder = Recorder(sink=sink)
        recorder.event("a")
        assert recorder.flush() == 1
        state = recorder.state_dict()
        recorder.event("rolled_back")
        recorder.load_state_dict(state)
        recorder.event("b")
        assert recorder.flush() == 1
        assert [e["kind"] for e in sink.events] == ["a", "b"]
        assert recorder.flush() == 0  # nothing pending

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        recorder = Recorder(sink=sink)
        recorder.event("a", frame=1)
        recorder.event("b", frame=2)
        recorder.flush()
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [e["kind"] for e in parsed] == ["a", "b"]
        assert sink.written == 2
        # appending across flushes keeps one document per line
        recorder.event("c")
        recorder.flush()
        assert len(path.read_text().splitlines()) == 3


class TestNullRecorder:
    def test_every_call_is_a_harmless_no_op(self):
        null = NullRecorder()
        assert null.enabled is False
        null.bind_clock(SimulatedClock())
        assert null.event("e", frame=1) is None
        null.counter("c").inc()
        null.gauge("g").set(3.0)
        null.gauge("g").dec()
        null.histogram("h", (1.0,)).observe(0.5)
        null.histogram("h").observe_many([1.0, 2.0])
        with null.span("stage"):
            pass
        null.load_state_dict(null.state_dict())
        assert null.state_dict() is None
        assert null.flush(MemorySink()) == 0
        assert null.summary() is None
        assert null.snapshot() is None

    def test_shared_instance_exists(self):
        assert isinstance(NULL_RECORDER, NullRecorder)


class TestSummaryShape:
    def test_summary_totals_are_consistent(self):
        clock = SimulatedClock()
        recorder = Recorder(clock=clock)
        recorder.event("a")
        recorder.event("a")
        with recorder.span("stage"):
            clock.charge_ms("work", 1.0)
        summary = recorder.summary()
        events = summary["events"]
        assert events["total"] == events["logical"] + events["timing"]
        assert sum(events["by_kind"].values()) == events["total"]
        assert summary["schema_version"] == 1
