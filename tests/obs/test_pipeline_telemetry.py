"""Observability is passive and deterministic at the pipeline level.

Three contracts, in increasing strength:

1. **No-op equivalence** -- running with no recorder, with the shared
   ``NULL_RECORDER``, or with a live :class:`Recorder` yields bit-identical
   :class:`PipelineResult` signatures (records, detections, invocations,
   simulated clock, fault stats).  Observability cannot change behaviour.
2. **Seed determinism** -- the same seed produces the same *logical* event
   stream (timestamps stripped) across sequential, batched (any chunking)
   and fleet (0/1/2/4 workers) execution.
3. **Golden snapshot** -- the canonical drift run's telemetry summary is
   pinned bit-for-bit in ``tests/golden/pipeline_telemetry.json``
   (``pytest --update-golden`` regenerates it after intended changes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import NULL_RECORDER, Recorder, logical_events
from repro.obs.report import validate_telemetry
from repro.parallel import FleetExecutor, FleetTask, fleet_telemetry
from repro.parallel.fleet import stream_seed

from tests.parallel.conftest import (
    gaussian_stream,
    make_pipeline,
    result_sig,
)

#: The canonical drift run: null -> drifted -> back, two detections.
CANONICAL_SEGMENTS = [(0.0, 150), (6.0, 150), (0.0, 150)]


def drift_stream(seed: int = 31, segments=None) -> np.ndarray:
    return gaussian_stream(seed, segments or CANONICAL_SEGMENTS)


# ----------------------------------------------------------------------
# 1. no-op equivalence
# ----------------------------------------------------------------------
class TestNoOpEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 40), batch=st.sampled_from([1, 7, 32]))
    def test_recorder_cannot_change_pipeline_output(self, seed, batch):
        stream = drift_stream(seed, [(0.0, 60), (6.0, 60)])
        bare = make_pipeline(seed=seed).process(stream)
        nulled = make_pipeline(
            seed=seed, recorder=NULL_RECORDER).process(stream)
        recorded = make_pipeline(
            seed=seed, recorder=Recorder()).process_batched(
                stream, batch_size=batch)
        assert result_sig(bare) == result_sig(nulled) == result_sig(recorded)

    def test_telemetry_none_without_recorder_present_with_one(self):
        stream = drift_stream()
        assert make_pipeline(seed=0).process(stream).telemetry is None
        telemetry = make_pipeline(
            seed=0, recorder=Recorder()).process(stream).telemetry
        assert telemetry is not None
        validate_telemetry(telemetry["summary"])


# ----------------------------------------------------------------------
# 2. seed determinism across execution strategies
# ----------------------------------------------------------------------
def sequential_events(seed: int, stream: np.ndarray) -> list:
    result = make_pipeline(seed=seed, recorder=Recorder()).process(stream)
    return logical_events(result.telemetry["events"])


class TestSeedDeterminism:
    def test_same_seed_same_logical_stream_sequential(self):
        stream = drift_stream()
        assert sequential_events(3, stream) == sequential_events(3, stream)

    def test_different_seed_may_differ_but_streams_stay_valid(self):
        stream = drift_stream()
        for seed in (0, 1):
            events = sequential_events(seed, stream)
            assert events[0]["kind"] == "session_start"

    @pytest.mark.parametrize("batch_size", [1, 5, 64, 450])
    def test_batched_matches_sequential_logical_stream(self, batch_size):
        stream = drift_stream()
        reference = sequential_events(7, stream)
        result = make_pipeline(seed=7, recorder=Recorder()).process_batched(
            stream, batch_size=batch_size)
        assert logical_events(result.telemetry["events"]) == reference
        assert any(e["kind"] == "drift_detected" for e in reference)

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_fleet_matches_sequential_logical_streams(self, workers):
        tasks = [FleetTask(stream_id=f"cam-{i}",
                           frames=drift_stream(40 + i,
                                               [(0.0, 70), (6.0, 70)]))
                 for i in range(3)]
        expected = {
            task.stream_id: logical_events(
                make_pipeline(seed=stream_seed(0, task.stream_id),
                              recorder=Recorder())
                .process_batched(task.frames, batch_size=16)
                .telemetry["events"])
            for task in tasks
        }
        executor = FleetExecutor(
            lambda task, seed: make_pipeline(seed=seed, recorder=Recorder()),
            workers=workers, batch_size=16)
        for task_result in executor.run(tasks):
            telemetry = task_result.result.telemetry
            assert (logical_events(telemetry["events"])
                    == expected[task_result.stream_id])


# ----------------------------------------------------------------------
# fleet-level merged telemetry
# ----------------------------------------------------------------------
class TestFleetTelemetry:
    def make_tasks(self):
        return [FleetTask(stream_id=f"cam-{i}",
                          frames=drift_stream(50 + i,
                                              [(0.0, 70), (6.0, 70)]))
                for i in range(3)]

    def run_fleet(self, workers: int):
        executor = FleetExecutor(
            lambda task, seed: make_pipeline(seed=seed, recorder=Recorder()),
            workers=workers, batch_size=16)
        return executor.run(self.make_tasks())

    def test_merged_summary_independent_of_worker_count(self):
        # the simulated clock makes even span timings deterministic, so the
        # merged documents are identical -- not merely logically equal
        reference = fleet_telemetry(self.run_fleet(0))
        validate_telemetry(reference)
        for workers in (1, 2):
            assert fleet_telemetry(self.run_fleet(workers)) == reference

    def test_no_recorder_means_no_fleet_telemetry(self):
        executor = FleetExecutor(
            lambda task, seed: make_pipeline(seed=seed), workers=0,
            batch_size=16)
        assert fleet_telemetry(executor.run(self.make_tasks())) is None


# ----------------------------------------------------------------------
# 3. golden snapshot
# ----------------------------------------------------------------------
class TestGoldenTelemetry:
    def test_canonical_drift_run_summary_is_pinned(self, golden):
        result = make_pipeline(seed=0, recorder=Recorder()).process(
            drift_stream())
        summary = result.telemetry["summary"]
        validate_telemetry(summary)
        assert summary["counters"]["pipeline.detections"] >= 1
        golden("pipeline_telemetry", summary)
