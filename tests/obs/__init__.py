"""Tests for :mod:`repro.obs` (metrics, tracing, recording, reports)."""
