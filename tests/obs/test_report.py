"""Telemetry summary contract: schema, IO helpers, merging, rendering."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.obs import (
    Recorder,
    format_summary,
    load_telemetry,
    merge_telemetry,
    validate_telemetry,
    write_telemetry,
)
from repro.obs.schema import validate_document, walk_schema
from repro.sim.clock import SimulatedClock


def make_summary(counter: float = 2.0) -> dict:
    clock = SimulatedClock()
    recorder = Recorder(clock=clock)
    recorder.event("drift_detected", frame=1)
    recorder.counter("frames").inc(counter)
    recorder.gauge("registry").set(3.0)
    recorder.histogram("p", boundaries=(0.5,)).observe(0.25)
    with recorder.span("stage"):
        clock.charge_ms("work", 4.0)
    return recorder.summary()


class TestValidateTelemetry:
    def test_live_summary_validates(self):
        validate_telemetry(make_summary())

    def test_missing_section_rejected(self):
        summary = make_summary()
        del summary["counters"]
        with pytest.raises(TelemetryError, match="violates schema"):
            validate_telemetry(summary)

    def test_unknown_top_level_key_rejected(self):
        summary = make_summary()
        summary["surprise"] = 1
        with pytest.raises(TelemetryError, match="violates schema"):
            validate_telemetry(summary)

    def test_negative_counter_rejected(self):
        summary = make_summary()
        summary["counters"]["frames"] = -1.0
        with pytest.raises(TelemetryError, match="violates schema"):
            validate_telemetry(summary)

    def test_inconsistent_event_totals_rejected(self):
        summary = make_summary()
        summary["events"]["total"] += 1
        with pytest.raises(TelemetryError, match="inconsistent"):
            validate_telemetry(summary)

    def test_histogram_bucket_arity_enforced(self):
        summary = make_summary()
        summary["histograms"]["p"]["counts"].append(0)
        with pytest.raises(TelemetryError, match="buckets"):
            validate_telemetry(summary)

    def test_histogram_count_sum_enforced(self):
        summary = make_summary()
        summary["histograms"]["p"]["total"] += 1
        with pytest.raises(TelemetryError, match="sum to total"):
            validate_telemetry(summary)


class TestIO:
    def test_write_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "telemetry.json")
        summary = make_summary()
        write_telemetry(path, summary)
        assert load_telemetry(path) == summary

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            load_telemetry(str(path))

    def test_write_refuses_invalid_summary(self, tmp_path):
        with pytest.raises(TelemetryError):
            write_telemetry(str(tmp_path / "out.json"), {"schema_version": 1})


class TestMergeTelemetry:
    def test_additive_sections_add(self):
        merged = merge_telemetry([make_summary(2.0), make_summary(3.0)])
        assert merged["counters"]["frames"] == 5.0
        assert merged["events"]["by_kind"]["drift_detected"] == 2
        assert merged["histograms"]["p"]["total"] == 2
        assert merged["spans"]["stage"]["count"] == 2
        assert merged["spans"]["stage"]["max_ms"] == 4.0
        validate_telemetry(merged)

    def test_gauges_take_last_shard(self):
        first, second = make_summary(), make_summary()
        first["gauges"]["registry"] = 1.0
        second["gauges"]["registry"] = 9.0
        assert merge_telemetry([first, second])["gauges"]["registry"] == 9.0

    def test_merge_is_order_invariant_modulo_gauges(self):
        one, two = make_summary(1.0), make_summary(4.0)
        forward = merge_telemetry([one, two])
        backward = merge_telemetry([two, one])
        forward.pop("gauges")
        backward.pop("gauges")
        assert forward == backward

    def test_boundary_mismatch_rejected(self):
        first, second = make_summary(), make_summary()
        second["histograms"]["p"]["boundaries"] = [0.9]
        with pytest.raises(TelemetryError, match="boundary mismatch"):
            merge_telemetry([first, second])

    def test_empty_merge_is_the_neutral_document(self):
        merged = merge_telemetry([])
        assert merged["events"]["total"] == 0
        validate_telemetry(merged)


class TestFormatSummary:
    def test_renders_spans_counters_and_event_line(self):
        text = format_summary(make_summary(), title="run report")
        lines = text.splitlines()
        assert lines[0] == "run report"
        assert lines[1] == "=" * len("run report")
        assert any("stage" in line for line in lines)
        assert any("frames" in line for line in lines)
        assert lines[-1].startswith("events: ")

    def test_spans_sorted_by_total_time(self):
        clock = SimulatedClock()
        recorder = Recorder(clock=clock)
        for name, cost in (("cheap", 1.0), ("hot", 50.0)):
            with recorder.span(name):
                clock.charge_ms("work", cost)
        text = format_summary(recorder.summary())
        assert text.index("hot") < text.index("cheap")


class TestSchemaWalker:
    def test_walk_schema_reports_paths(self):
        schema = {"type": "object", "required": ["x"],
                  "properties": {"x": {"type": "integer", "minimum": 0}}}
        errors: list = []
        walk_schema({"x": -1}, schema, "$", errors)
        assert errors and "$.x" in errors[0]

    def test_validate_document_uses_custom_error(self):
        class Boom(Exception):
            pass

        with pytest.raises(Boom, match="label violates schema"):
            validate_document([], {"type": "object"}, "label", Boom)
