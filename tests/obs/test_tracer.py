"""Tracer: nested spans over an injectable ``elapsed_ms`` clock."""

from __future__ import annotations

import pytest

from repro.obs import Span, Tracer, WallClock
from repro.sim.clock import SimulatedClock


class TestTracer:
    def test_span_measures_simulated_time(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with tracer.span("stage") as span:
            clock.charge_ms("work", 12.5)
        assert span.start_ms == 0.0
        assert span.end_ms == 12.5
        assert span.duration_ms == 12.5

    def test_nesting_records_parent_and_depth(self):
        clock = SimulatedClock()
        closed = []
        tracer = Tracer(clock, on_close=closed.append)
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
                assert tracer.current is inner
                clock.charge_ms("work", 1.0)
        assert tracer.depth == 0
        assert [span.name for span in closed] == ["inner", "outer"]
        assert closed[0].parent == "outer"
        assert closed[0].depth == 1
        assert closed[1].parent is None
        assert closed[1].depth == 0

    def test_exception_unwinds_span_stack(self):
        tracer = Tracer(SimulatedClock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.depth == 0
        # the tracer is reusable after the unwind
        with tracer.span("again") as span:
            pass
        assert span.depth == 0

    def test_unbound_tracer_stamps_zero(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            pass
        assert span.start_ms == 0.0
        assert span.duration_ms == 0.0

    def test_open_span_reports_zero_duration(self):
        span = Span(name="open", start_ms=5.0, depth=0)
        assert span.duration_ms == 0.0


class TestWallClock:
    def test_elapsed_is_monotone_nondecreasing(self):
        clock = WallClock()
        first = clock.elapsed_ms
        second = clock.elapsed_ms
        assert first >= 0.0
        assert second >= first
