"""FaultSchedule / FaultInjector: determinism, per-kind behaviour, logging."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FaultInjector, FaultSchedule
from repro.faults.injectors import (
    corrupt_black,
    corrupt_inf,
    corrupt_nan,
    corrupt_saltpepper,
    mangle_shape,
)
from repro.sim.clock import SimulatedClock


def frames(n=100, shape=(6, 6), seed=1):
    rng = np.random.default_rng(seed)
    return [rng.uniform(size=shape) for _ in range(n)]


class TestSchedule:
    def test_draw_is_deterministic_and_order_free(self):
        a = FaultSchedule(rate=0.3, seed=5)
        b = FaultSchedule(rate=0.3, seed=5)
        forward = [a.draw(i) for i in range(50)]
        backward = [b.draw(i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))
        # re-querying the same schedule gives the same answers
        assert forward == [a.draw(i) for i in range(50)]

    def test_different_seeds_differ(self):
        a = [FaultSchedule(rate=0.5, seed=1).draw(i) for i in range(100)]
        b = [FaultSchedule(rate=0.5, seed=2).draw(i) for i in range(100)]
        assert a != b

    def test_zero_rate_never_fires(self):
        schedule = FaultSchedule(rate=0.0, seed=3)
        assert all(schedule.draw(i) is None for i in range(200))

    def test_rate_one_always_fires(self):
        schedule = FaultSchedule(rate=1.0, seed=3)
        assert all(schedule.draw(i) is not None for i in range(50))

    def test_empirical_rate_tracks_nominal(self):
        schedule = FaultSchedule(rate=0.05, seed=11)
        fired = sum(schedule.draw(i) is not None for i in range(4000))
        assert 0.02 < fired / 4000 < 0.09

    def test_weights_restrict_kinds(self):
        schedule = FaultSchedule(rate=1.0, kinds=("drop", "nan"),
                                 weights=(0.0, 1.0), seed=7)
        assert {schedule.draw(i) for i in range(50)} == {"nan"}

    @pytest.mark.parametrize("kwargs", [
        {"rate": -0.1}, {"rate": 1.5}, {"kinds": ()},
        {"kinds": ("drop", "bogus")}, {"kinds": ("drop",), "weights": (1, 2)},
        {"weights": (0.0,) * len(FAULT_KINDS)},
        {"pixel_fraction": 0.0}, {"stall_ms": -1.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSchedule(**kwargs)


class TestCorruptions:
    def test_nan_corrupts_requested_fraction(self):
        rng = np.random.default_rng(0)
        out = corrupt_nan(np.zeros((10, 10)), rng, fraction=0.1)
        assert np.isnan(out).sum() == 10

    def test_inf_corrupts_at_least_one_pixel(self):
        rng = np.random.default_rng(0)
        out = corrupt_inf(np.zeros(16), rng, fraction=0.01)
        assert np.isinf(out).sum() >= 1

    def test_saltpepper_stays_finite(self):
        rng = np.random.default_rng(0)
        pixels = np.linspace(0.0, 1.0, 64).reshape(8, 8)
        out = corrupt_saltpepper(pixels, rng, fraction=0.2)
        assert np.isfinite(out).all()
        assert not np.array_equal(out, pixels)
        assert out.min() >= pixels.min() and out.max() <= pixels.max()

    def test_black_is_all_zero(self):
        assert not corrupt_black(np.ones((4, 4))).any()

    @pytest.mark.parametrize("shape", [(8,), (6, 6), (1,)])
    def test_mangle_always_changes_shape(self, shape):
        rng = np.random.default_rng(0)
        for _ in range(20):
            out = mangle_shape(np.zeros(shape), rng)
            assert out.shape != tuple(shape)

    def test_originals_untouched(self):
        rng = np.random.default_rng(0)
        pixels = np.ones((5, 5))
        corrupt_nan(pixels, rng, 0.5)
        corrupt_inf(pixels, rng, 0.5)
        corrupt_saltpepper(pixels, rng, 0.5)
        mangle_shape(pixels, rng)
        assert np.array_equal(pixels, np.ones((5, 5)))


class TestInjector:
    def run(self, kinds, n=200, rate=0.2, seed=9, clock=None, shape=(6, 6)):
        schedule = FaultSchedule(rate=rate, kinds=kinds, seed=seed)
        injector = FaultInjector(schedule, clock=clock)
        out = list(injector.wrap(frames(n, shape=shape)))
        return schedule, out

    def test_wrap_is_deterministic(self):
        _, a = self.run(("drop", "nan", "duplicate"))
        _, b = self.run(("drop", "nan", "duplicate"))
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x, y, equal_nan=True)

    def test_drop_shortens_stream_by_logged_count(self):
        schedule, out = self.run(("drop",))
        assert len(out) == 200 - len(schedule.events("drop"))

    def test_duplicate_lengthens_stream_by_logged_count(self):
        schedule, out = self.run(("duplicate",))
        assert len(out) == 200 + len(schedule.events("duplicate"))

    def test_reorder_preserves_multiset(self):
        schedule, out = self.run(("reorder",))
        assert len(out) == 200
        source = frames(200)
        key = lambda arr: tuple(np.asarray(arr).reshape(-1)[:3])
        assert sorted(map(key, out)) == sorted(map(key, source))
        # at least one swap actually displaced a frame
        assert schedule.events("reorder")
        assert any(not np.array_equal(x, y) for x, y in zip(out, source))

    def test_reorder_swaps_adjacent(self):
        schedule, out = self.run(("reorder",), n=50, rate=0.3, seed=2)
        source = frames(50)
        displaced = [i for i, (x, y) in enumerate(zip(out, source))
                     if not np.array_equal(x, y)]
        # displacements come in adjacent pairs (held frame + its successor)
        assert all(b - a == 1 for a, b in
                   zip(displaced[::2], displaced[1::2]))

    def test_nan_events_match_corrupted_frames(self):
        schedule, out = self.run(("nan",))
        corrupted = sum(bool(np.isnan(np.asarray(f)).any()) for f in out)
        assert corrupted == len(schedule.events("nan")) > 0

    def test_stall_charges_clock(self):
        clock = SimulatedClock()
        schedule, out = self.run(("stall",), clock=clock)
        stalls = schedule.events("stall")
        assert stalls
        assert len(out) == 200
        assert clock.ledger()["fault_stall"] == pytest.approx(
            sum(e.detail["ms"] for e in stalls))

    def test_frame_dataclass_metadata_survives_corruption(self):
        @dataclasses.dataclass(frozen=True)
        class Carrier:
            pixels: np.ndarray
            tag: str

        items = [Carrier(np.zeros((4, 4)), f"t{i}") for i in range(100)]
        schedule = FaultSchedule(rate=0.5, kinds=("nan",), seed=1)
        out = list(FaultInjector(schedule).wrap(items))
        assert [c.tag for c in out] == [f"t{i}" for i in range(100)]
        corrupted = [c for c in out if np.isnan(c.pixels).any()]
        assert len(corrupted) == len(schedule.events("nan")) > 0

    def test_five_percent_mixed_schedule_accounting(self):
        schedule, out = self.run(
            ("drop", "nan", "duplicate"), n=1000, rate=0.05, seed=4)
        counts = schedule.counts()
        expected = 1000 - counts.get("drop", 0) + counts.get("duplicate", 0)
        assert len(out) == expected
        assert sum(counts.values()) < 1000 * 0.1
