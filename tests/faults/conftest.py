"""Shared fixtures for the chaos suite: cheap gaussian bundles and streams.

Mirrors the synthetic setup of ``tests/core/test_pipeline.py`` -- identity
embedders and constant models keep every chaos run fast while exercising
the full guard / retry / breaker / checkpoint machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.nonconformity import KNNDistance
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry

DIM = 8


class ConstantModel:
    """Predicts a fixed class; lets tests identify which model ran."""

    def __init__(self, label: int):
        self.label = label

    def predict(self, frames):
        return np.full(np.asarray(frames).shape[0], self.label, dtype=np.int64)


def make_bundle(name: str, centre: float, label: int, rng) -> ModelBundle:
    sigma = rng.normal(centre, 1.0, size=(200, DIM))
    scores = KNNDistance(5).reference_scores(sigma)
    return ModelBundle(name=name, sigma=sigma, reference_scores=scores,
                       model=ConstantModel(label))


def gaussian_stream(rng, segments):
    """Frames from consecutive (centre, length) gaussian segments."""
    chunks = [rng.normal(c, 1.0, size=(n, DIM)) for c, n in segments]
    return np.vstack(chunks)


def make_pipeline(registry, **config_kwargs) -> DriftAwareAnalytics:
    config = PipelineConfig(
        selection_window=8,
        drift_inspector=DriftInspectorConfig(seed=0),
        **config_kwargs)
    selector = MSBI(registry, MSBIConfig(window_size=8, seed=0))
    return DriftAwareAnalytics(registry, "low", selector, config=config)


@pytest.fixture
def rng():
    return np.random.default_rng(777)


@pytest.fixture
def registry(rng):
    return ModelRegistry([
        make_bundle("low", 0.0, 0, rng),
        make_bundle("high", 6.0, 1, rng),
    ])
