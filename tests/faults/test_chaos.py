"""Chaos property: the pipeline survives any seeded <=5% fault schedule.

The acceptance property from the robustness issue: under drops, NaN
corruption and duplicates at rate <= 5 %, ``process()`` never raises,
``PipelineResult`` reports accurate fault counts, and the ground-truth
drift is still detected within a bounded delay.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection.registry import ModelRegistry
from repro.faults import FaultInjector, FaultSchedule

from tests.faults.conftest import (
    gaussian_stream,
    make_bundle,
    make_pipeline,
)

PRE, POST = 80, 90  # frames before / after the ground-truth drift
DETECTION_SLACK = 45  # emitted frames allowed between change and resolution


def build_registry(seed):
    rng = np.random.default_rng(seed)
    return ModelRegistry([
        make_bundle("low", 0.0, 0, rng),
        make_bundle("high", 6.0, 1, rng),
    ])


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       rate=st.floats(min_value=0.0, max_value=0.05))
def test_chaos_property(seed, rate):
    rng = np.random.default_rng(seed)
    registry = build_registry(seed)
    stream = gaussian_stream(rng, [(0.0, PRE), (6.0, POST)])
    schedule = FaultSchedule(rate=rate, kinds=("drop", "nan", "duplicate"),
                             seed=seed)
    injector = FaultInjector(schedule)
    pipeline = make_pipeline(registry, frame_policy="repair")

    result = pipeline.process(injector.wrap(stream))  # must never raise

    counts = schedule.counts()
    drops = counts.get("drop", 0)
    dups = counts.get("duplicate", 0)
    nans = counts.get("nan", 0)
    emitted = len(stream) - drops + dups
    # every guard intervention corresponds to a logged NaN fault (a NaN
    # frame with no prior good frame quarantines instead of repairing; a
    # duplicated NaN frame intervenes twice)
    interventions = (result.faults.frames_repaired
                     + result.faults.frames_quarantined)
    nan_indices = {e.index for e in schedule.events("nan")}
    dup_indices = {e.index for e in schedule.events("duplicate")}
    expected_interventions = nans + len(nan_indices & dup_indices)
    assert interventions == expected_interventions
    # every admitted-and-kept frame produced exactly one record
    assert len(result.records) == emitted - result.faults.frames_quarantined
    assert result.faults.frames_ok == (emitted - interventions)
    # the ground-truth drift is still detected within a bounded delay:
    # locate the change point in *emitted* coordinates
    pre_events = [e for e in schedule.log if e.index < PRE]
    change = (PRE - sum(1 for e in pre_events if e.kind == "drop")
              + sum(1 for e in pre_events if e.kind == "duplicate"))
    hits = [d for d in result.detections
            if change - 5 <= d.frame_index <= change + DETECTION_SLACK]
    assert hits, (f"no detection near emitted change point {change}; "
                  f"got {[d.frame_index for d in result.detections]}")


class TestDegradedResolution:
    """Retry + breaker behaviour with an unreliable selector."""

    def flaky_pipeline(self, registry, fail_times, **kwargs):
        pipeline = make_pipeline(registry, **kwargs)
        real_select = pipeline.selector.select
        state = {"remaining": fail_times}

        def select(frames, candidates=None):
            if state["remaining"] > 0:
                state["remaining"] -= 1
                raise RuntimeError("selector backend unavailable")
            return real_select(frames, candidates)

        pipeline.selector.select = select
        return pipeline

    def test_transient_selector_failure_is_retried(self, rng, registry):
        pipeline = self.flaky_pipeline(registry, fail_times=2, max_retries=2)
        stream = gaussian_stream(rng, [(0.0, 50), (6.0, 50)])
        result = pipeline.process(stream)
        assert result.faults.retries == 2
        assert result.faults.selection_failures == 0
        assert result.detections and result.detections[0].selected_model == "high"
        # backoff charged simulated time
        assert pipeline.clock.ledger().get("retry_backoff", 0.0) > 0

    def test_persistent_failure_falls_back_without_crashing(self, rng,
                                                            registry):
        pipeline = self.flaky_pipeline(registry, fail_times=100,
                                       max_retries=1)
        stream = gaussian_stream(rng, [(0.0, 50), (6.0, 50)])
        result = pipeline.process(stream)
        assert result.faults.selection_failures >= 1
        # degraded but alive: the nearest provisioned model was pinned
        assert result.detections
        assert result.detections[0].selected_model in ("low", "high")
        assert len(result.records) == 100

    def test_breaker_opens_and_short_circuits(self, rng, registry):
        pipeline = self.flaky_pipeline(registry, fail_times=100,
                                       max_retries=0, breaker_threshold=2,
                                       cooldown_frames=0)
        # three drift episodes: low -> high -> low -> high
        stream = gaussian_stream(
            rng, [(0.0, 40), (6.0, 40), (0.0, 40), (6.0, 40)])
        result = pipeline.process(stream)
        assert result.faults.breaker_trips >= 1
        assert result.faults.breaker_fallbacks >= 1
        assert len(result.records) == 160

    def test_breaker_closes_after_recovery(self, rng, registry):
        pipeline = self.flaky_pipeline(registry, fail_times=1, max_retries=0,
                                       breaker_threshold=1,
                                       cooldown_frames=0)
        stream = gaussian_stream(
            rng, [(0.0, 40), (6.0, 40), (0.0, 40)])
        result = pipeline.process(stream)
        # first episode fails (breaker opens), second short-circuits OR
        # succeeds after the breaker closed; the run always completes
        assert len(result.records) == 120
        assert result.faults.breaker_trips >= 1


class TestNovelWithFaults:
    def test_novel_distribution_with_single_frame_buffer_survives(self, rng,
                                                                  registry):
        # stream ends immediately after the drift frame: flush resolves a
        # 1-frame buffer; the novel path must fall back, not train/crash
        pipeline = make_pipeline(registry)
        stream = gaussian_stream(rng, [(0.0, 50), (25.0, 1)])
        result = pipeline.process(stream)
        assert len(result.records) == 51


class TestSkipPolicyChaos:
    def test_skip_policy_drops_faulty_frames_from_records(self, rng,
                                                          registry):
        stream = gaussian_stream(rng, [(0.0, 60)])
        schedule = FaultSchedule(rate=0.1, kinds=("nan",), seed=5)
        injector = FaultInjector(schedule)
        pipeline = make_pipeline(registry, frame_policy="skip")
        result = pipeline.process(injector.wrap(stream))
        nans = len(schedule.events("nan"))
        assert nans > 0
        assert result.faults.frames_quarantined == nans
        assert len(result.records) == 60 - nans
        # indices stay contiguous: quarantined frames emit no record
        assert [r.frame_index for r in result.records] == list(
            range(60 - nans))
