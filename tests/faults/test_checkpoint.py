"""Checkpoint / restore: bit-exact mid-stream resume and error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import checkpoint
from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.martingale import AdditiveMartingale, MultiplicativeMartingale
from repro.core.selection.registry import ModelRegistry
from repro.errors import CheckpointError
from repro.nn.serialization import save_manifest_archive, save_state

from tests.faults.conftest import gaussian_stream, make_bundle, make_pipeline


def run_records(result):
    return [(r.frame_index, r.prediction, r.model) for r in result.records]


def resume_run(registry, stream, cut, tmp_path, **config_kwargs):
    """Process ``stream`` with a checkpoint at frame ``cut`` and a restore
    into a fresh pipeline; returns the resumed run's result."""
    path = str(tmp_path / "session.npz")
    first = make_pipeline(registry, **config_kwargs)
    first.start()
    for item in stream[:cut]:
        first.step(item)
    checkpoint.save_checkpoint(path, first)
    resumed = make_pipeline(registry, **config_kwargs)
    checkpoint.restore_checkpoint(path, resumed)
    for item in stream[cut:]:
        resumed.step(item)
    resumed.flush()
    return resumed.result()


class TestRoundTrip:
    def assert_equal_runs(self, registry, stream, cut, tmp_path, **kwargs):
        baseline = make_pipeline(registry, **kwargs).process(stream)
        resumed = resume_run(registry, stream, cut, tmp_path, **kwargs)
        assert run_records(resumed) == run_records(baseline)
        assert resumed.detections == baseline.detections
        assert resumed.simulated_ms == baseline.simulated_ms
        assert (resumed.invocations.per_model()
                == baseline.invocations.per_model())

    def test_resume_in_monitor_mode_matches_uninterrupted(self, rng, registry,
                                                          tmp_path):
        stream = gaussian_stream(rng, [(0.0, 50), (6.0, 50)])
        self.assert_equal_runs(registry, stream, cut=30, tmp_path=tmp_path)

    def test_resume_after_drift_swap_matches(self, rng, registry, tmp_path):
        stream = gaussian_stream(rng, [(0.0, 40), (6.0, 60)])
        # cut deep into the post-swap segment: inspector state, cooldown and
        # deployed model all come from the checkpoint
        self.assert_equal_runs(registry, stream, cut=80, tmp_path=tmp_path)

    def test_resume_mid_selection_buffer_matches(self, rng, registry,
                                                 tmp_path):
        stream = gaussian_stream(rng, [(0.0, 40), (6.0, 40)])
        baseline = make_pipeline(registry).process(stream)
        assert baseline.detections, "stream must contain a drift"
        # cut inside the selection window: detection happened, buffer partial
        detect_at = baseline.detections[0].frame_index
        cut = detect_at + 3
        resumed = resume_run(registry, stream, cut, tmp_path)
        assert run_records(resumed) == run_records(baseline)
        assert resumed.detections == baseline.detections

    def test_resume_with_repair_policy_and_faulty_frames(self, rng, registry,
                                                         tmp_path):
        stream = gaussian_stream(rng, [(0.0, 60), (6.0, 40)])
        stream[20, 2] = np.nan  # repaired before the cut
        stream[50, 0] = np.inf  # repaired after the cut
        kwargs = {"frame_policy": "repair"}
        baseline = make_pipeline(registry, **kwargs).process(stream)
        resumed = resume_run(registry, stream, 35, tmp_path, **kwargs)
        assert run_records(resumed) == run_records(baseline)
        assert resumed.faults.as_dict() == baseline.faults.as_dict()
        assert resumed.faults.frames_repaired == 2

    def test_restored_session_reports_prior_accounting(self, rng, registry,
                                                       tmp_path):
        stream = gaussian_stream(rng, [(0.0, 30)])
        stream[5, 0] = np.nan
        path = str(tmp_path / "session.npz")
        first = make_pipeline(registry, frame_policy="skip")
        first.start()
        for item in stream:
            first.step(item)
        checkpoint.save_checkpoint(path, first)
        resumed = make_pipeline(registry, frame_policy="skip")
        checkpoint.restore_checkpoint(path, resumed)
        resumed.flush()
        result = resumed.result()
        assert result.faults.frames_quarantined == 1
        assert result.faults.quarantine_reasons == {"nonfinite": 1}
        assert len(result.records) == 29


class TestErrorPaths:
    def test_checkpoint_without_session_refused(self, registry):
        pipeline = make_pipeline(registry)
        with pytest.raises(CheckpointError, match="no active session"):
            checkpoint.session_state(pipeline)

    def test_unknown_deployed_model_refused(self, rng, registry, tmp_path):
        path = str(tmp_path / "session.npz")
        pipeline = make_pipeline(registry)
        pipeline.start()
        pipeline.step(rng.normal(0.0, 1.0, size=8))
        checkpoint.save_checkpoint(path, pipeline)
        other = ModelRegistry([make_bundle("other", 0.0, 0, rng)])
        fresh = make_pipeline(
            ModelRegistry([make_bundle("low", 0.0, 0, rng),
                           make_bundle("high", 6.0, 1, rng)]))
        fresh.registry = other  # simulate a mismatched provisioning
        with pytest.raises(CheckpointError, match="registry"):
            checkpoint.restore_checkpoint(path, fresh)

    def test_version_mismatch_refused(self, registry, tmp_path):
        path = str(tmp_path / "bad.npz")
        save_manifest_archive(path, {"version": 999}, {})
        with pytest.raises(CheckpointError, match="version"):
            checkpoint.restore_checkpoint(path, make_pipeline(registry))

    def test_plain_archive_is_not_a_checkpoint(self, registry, tmp_path):
        path = str(tmp_path / "weights.npz")
        save_state(path, {"w": np.zeros(3)})
        with pytest.raises(CheckpointError, match="manifest"):
            checkpoint.restore_checkpoint(path, make_pipeline(registry))

    def test_buffer_length_mismatch_refused(self, rng, registry, tmp_path):
        path = str(tmp_path / "session.npz")
        pipeline = make_pipeline(registry)
        pipeline.start()
        pipeline.step(rng.normal(0.0, 1.0, size=8))
        manifest, arrays = checkpoint.session_state(pipeline)
        manifest["buffer_len"] = 4  # lie about the buffer
        save_manifest_archive(path, manifest, arrays)
        with pytest.raises(CheckpointError, match="buffer"):
            checkpoint.restore_checkpoint(path, make_pipeline(registry))


class TestComponentState:
    def test_additive_martingale_round_trip(self):
        a = AdditiveMartingale(lambda p: 0.5 - p, window=3)
        for p in (0.1, 0.2, 0.05, 0.9):
            a.update(p)
        b = AdditiveMartingale(lambda p: 0.5 - p, window=3)
        b.load_state_dict(a.state_dict())
        assert b.history == a.history and b.step == a.step
        assert b.update(0.3).value == a.update(0.3).value

    def test_multiplicative_martingale_round_trip(self):
        from repro.core.betting import PowerBetting
        a = MultiplicativeMartingale(PowerBetting(0.3), significance=0.05)
        for p in (0.1, 0.2, 0.05):
            a.update(p)
        b = MultiplicativeMartingale(PowerBetting(0.3), significance=0.05)
        b.load_state_dict(a.state_dict())
        assert b.log_value == a.log_value and b.step == a.step

    def test_kind_mismatch_rejected(self):
        a = AdditiveMartingale(lambda p: 0.5 - p, window=3)
        with pytest.raises(CheckpointError, match="additive"):
            a.load_state_dict({"kind": "multiplicative"})

    def test_inspector_round_trip_continues_identically(self, rng):
        reference = rng.normal(0.0, 1.0, size=(100, 4))
        stream = rng.normal(0.0, 1.0, size=(40, 4))
        config = DriftInspectorConfig(seed=3)
        a = DriftInspector(reference, config=config)
        for frame in stream[:20]:
            a.observe(frame)
        b = DriftInspector(reference, config=DriftInspectorConfig(seed=3))
        b.load_state_dict(a.state_dict())
        for frame in stream[20:]:
            da, db = a.observe(frame), b.observe(frame)
            assert da == db

    def test_histogram_betting_state_survives(self, rng):
        config = DriftInspectorConfig(seed=1, betting="histogram")
        reference = rng.normal(0.0, 1.0, size=(100, 4))
        a = DriftInspector(reference, config=config)
        for frame in rng.normal(0.0, 1.0, size=(30, 4)):
            a.observe(frame)
        state = a.state_dict()
        assert "betting" in state["martingale"]
        b = DriftInspector(reference,
                           config=DriftInspectorConfig(seed=1,
                                                       betting="histogram"))
        b.load_state_dict(state)
        frame = rng.normal(0.0, 1.0, size=4)
        assert a.observe(frame) == b.observe(frame)
