"""FrameGuard policies, RetryPolicy backoff, CircuitBreaker transitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, FrameValidationError
from repro.faults.guard import (
    OK,
    QUARANTINED,
    REPAIRED,
    CircuitBreaker,
    FrameGuard,
    RetryPolicy,
)
from repro.sim.clock import SimulatedClock


def nan_frame(shape=(4, 4)):
    pixels = np.zeros(shape)
    pixels[0, 0] = np.nan
    return pixels


class TestFrameGuard:
    def test_valid_frames_pass(self):
        guard = FrameGuard("raise")
        report = guard.admit(np.ones((4, 4)))
        assert report.status == OK
        assert np.array_equal(report.pixels, np.ones((4, 4)))

    def test_learns_shape_from_first_frame(self):
        guard = FrameGuard("skip")
        guard.admit(np.ones((4, 4)))
        assert guard.expected_shape == (4, 4)
        assert guard.admit(np.ones((3, 4))).status == QUARANTINED
        assert guard.reasons == {"shape": 1}

    def test_corrupt_first_frame_does_not_poison_shape_contract(self):
        guard = FrameGuard("skip")
        assert guard.admit(nan_frame()).status == QUARANTINED
        assert guard.expected_shape is None
        assert guard.admit(np.ones((4, 4))).status == OK
        assert guard.expected_shape == (4, 4)

    def test_raise_policy_raises_on_nonfinite(self):
        guard = FrameGuard("raise")
        guard.admit(np.zeros((4, 4)))
        with pytest.raises(FrameValidationError):
            guard.admit(nan_frame())

    def test_raise_policy_raises_on_shape(self):
        guard = FrameGuard("raise", expected_shape=(4, 4))
        with pytest.raises(FrameValidationError, match="shape"):
            guard.admit(np.zeros((5, 5)))

    def test_raise_policy_raises_on_dtype(self):
        guard = FrameGuard("raise")
        with pytest.raises(FrameValidationError, match="dtype"):
            guard.admit(np.array(["not", "pixels"], dtype=object))

    def test_skip_policy_quarantines(self):
        guard = FrameGuard("skip")
        guard.admit(np.zeros((4, 4)))
        report = guard.admit(nan_frame())
        assert report.status == QUARANTINED and report.pixels is None
        assert list(guard.quarantine) == [(1, "nonfinite")]

    def test_repair_imputes_from_last_good(self):
        guard = FrameGuard("repair")
        good = np.full((4, 4), 7.0)
        guard.admit(good)
        report = guard.admit(nan_frame())
        assert report.status == REPAIRED
        assert report.pixels[0, 0] == 7.0  # imputed
        assert (report.pixels[1:] == 0.0).all()  # finite pixels kept

    def test_repair_substitutes_whole_frame_on_shape_defect(self):
        guard = FrameGuard("repair")
        good = np.full((4, 4), 3.0)
        guard.admit(good)
        report = guard.admit(np.zeros((2, 2)))
        assert report.status == REPAIRED
        assert np.array_equal(report.pixels, good)

    def test_repair_without_history_quarantines(self):
        guard = FrameGuard("repair")
        assert guard.admit(nan_frame()).status == QUARANTINED

    def test_repaired_frame_becomes_imputation_source_only_if_good(self):
        guard = FrameGuard("repair")
        guard.admit(np.full((2, 2), 1.0))
        guard.admit(np.full((2, 2), np.nan))  # repaired, not "good"
        assert np.array_equal(guard.last_good, np.full((2, 2), 1.0))

    def test_reset_clears_session_but_keeps_explicit_shape(self):
        guard = FrameGuard("skip", expected_shape=(4, 4))
        guard.admit(np.zeros((3, 3)))
        guard.reset()
        assert guard.expected_shape == (4, 4)
        assert guard.reasons == {} and not guard.quarantine

    def test_reset_forgets_learned_shape(self):
        guard = FrameGuard("skip")
        guard.admit(np.zeros((4, 4)))
        guard.reset()
        assert guard.expected_shape is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameGuard("ignore")


class TestRetryPolicy:
    def flaky(self, failures, error=RuntimeError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise error(f"attempt {calls['n']}")
            return "ok"

        return fn, calls

    def test_succeeds_within_budget(self):
        fn, calls = self.flaky(2)
        assert RetryPolicy(max_retries=2).run(fn) == "ok"
        assert calls["n"] == 3

    def test_exhaustion_raises_last_error(self):
        fn, _ = self.flaky(5)
        with pytest.raises(RuntimeError, match="attempt 3"):
            RetryPolicy(max_retries=2).run(fn)

    def test_non_retryable_propagates_immediately(self):
        class Signal(Exception):
            pass

        fn, calls = self.flaky(1, error=Signal)
        with pytest.raises(Signal):
            RetryPolicy(max_retries=3).run(fn, non_retryable=(Signal,))
        assert calls["n"] == 1

    def test_backoff_charges_clock_exponentially(self):
        clock = SimulatedClock()
        fn, _ = self.flaky(2)
        policy = RetryPolicy(max_retries=2, backoff_ms=10.0,
                             backoff_factor=2.0)
        policy.run(fn, clock=clock)
        assert clock.ledger()["retry_backoff"] == pytest.approx(10.0 + 20.0)

    def test_zero_retries_means_single_attempt(self):
        fn, calls = self.flaky(1)
        with pytest.raises(RuntimeError):
            RetryPolicy(max_retries=0).run(fn)
        assert calls["n"] == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open and breaker.trips == 1

    def test_success_closes_and_resets_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open  # streak was broken

    def test_trips_accumulate_across_episodes(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.trips == 2

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
