"""Tests for :mod:`repro.sim` (clock, metrics, streams)."""
