"""Simulated clock, cost profiles and metric collectors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock
from repro.sim.costs import PAPER_COSTS, CostProfile
from repro.sim.metrics import (
    AccuracyCollector,
    DetectionRecord,
    InvocationCounter,
    mean_delay,
)


class TestCostProfile:
    def test_known_cost(self):
        assert PAPER_COSTS.cost("vae_encode") == 1.0

    def test_unknown_operation_costs_zero(self):
        assert PAPER_COSTS.cost("teleportation") == 0.0

    def test_paper_di_per_frame_is_three_ms(self):
        total = sum(PAPER_COSTS.cost(op) for op in (
            "vae_encode", "knn_nonconformity", "martingale_update"))
        assert total == pytest.approx(3.0)

    def test_paper_odin_select_detrac_is_17_8_ms(self):
        total = (PAPER_COSTS.cost("odin_select_embed")
                 + 5 * PAPER_COSTS.cost("odin_cluster_op"))
        assert total == pytest.approx(17.8)

    def test_paper_msbo_detrac_is_830_ms_per_frame(self):
        # 5 models x L = 5 members
        assert 25 * PAPER_COSTS.cost("ensemble_member_infer") == pytest.approx(
            830.0)

    def test_paper_msbi_detrac_is_640_ms_per_frame(self):
        assert 5 * PAPER_COSTS.cost("msbi_model_frame") == pytest.approx(640.0)

    def test_with_overrides_copies(self):
        custom = PAPER_COSTS.with_overrides(vae_encode=9.0)
        assert custom.cost("vae_encode") == 9.0
        assert PAPER_COSTS.cost("vae_encode") == 1.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostProfile({"x": -1.0})


class TestSimulatedClock:
    def test_charge_accumulates(self):
        clock = SimulatedClock()
        clock.charge("vae_encode", times=3)
        assert clock.elapsed_ms == pytest.approx(3.0)
        assert clock.elapsed_s == pytest.approx(0.003)

    def test_ledger_and_counts(self):
        clock = SimulatedClock()
        clock.charge("vae_encode", times=2)
        clock.charge("odin_cluster_op")
        assert clock.ledger() == {"vae_encode": 2.0, "odin_cluster_op": 3.2}
        assert clock.operation_counts() == {"vae_encode": 2,
                                            "odin_cluster_op": 1}

    def test_charge_ms_explicit(self):
        clock = SimulatedClock()
        clock.charge_ms("training", 1234.5)
        assert clock.elapsed_ms == pytest.approx(1234.5)

    def test_split_measures_block(self):
        clock = SimulatedClock()
        clock.charge("vae_encode")
        with clock.split() as split:
            clock.charge("vae_encode", times=5)
        assert split.elapsed_ms == pytest.approx(5.0)
        assert split.elapsed_s == pytest.approx(0.005)

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge("vae_encode")
        clock.reset()
        assert clock.elapsed_ms == 0.0
        assert clock.ledger() == {}

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().charge("x", times=-1)

    def test_negative_ms_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock().charge_ms("x", -5.0)


class TestDetectionRecord:
    def test_delay(self):
        record = DetectionRecord("s", drift_frame=100, detected_frame=128)
        assert record.delay == 28
        assert record.detected
        assert not record.false_positive

    def test_missed_detection(self):
        record = DetectionRecord("s", drift_frame=100, detected_frame=None)
        assert record.delay is None
        assert not record.detected

    def test_false_positive(self):
        record = DetectionRecord("s", drift_frame=100, detected_frame=90)
        assert record.false_positive

    def test_mean_delay(self):
        records = [DetectionRecord("a", 0, 10),
                   DetectionRecord("b", 0, 20),
                   DetectionRecord("c", 0, None)]
        assert mean_delay(records) == pytest.approx(15.0)

    def test_mean_delay_empty_is_nan(self):
        import math
        assert math.isnan(mean_delay([]))


class TestInvocationCounter:
    def test_single_model_processing(self):
        counter = InvocationCounter()
        for _ in range(10):
            counter.record(["m"])
        assert counter.invocations_per_frame == 1.0
        assert counter.ensemble_fraction == 0.0
        assert counter.per_model() == {"m": 10}

    def test_ensembles_raise_the_average(self):
        counter = InvocationCounter()
        counter.record(["a"])
        counter.record(["a", "b"])
        assert counter.invocations_per_frame == pytest.approx(1.5)
        assert counter.ensemble_fraction == pytest.approx(0.5)
        assert counter.total_invocations == 3

    def test_empty_invocation_rejected(self):
        with pytest.raises(ConfigurationError):
            InvocationCounter().record([])

    def test_empty_counter_properties(self):
        counter = InvocationCounter()
        assert counter.invocations_per_frame == 0.0
        assert counter.ensemble_fraction == 0.0


class TestAccuracyCollector:
    def test_overall_and_per_sequence(self):
        collector = AccuracyCollector()
        collector.record("a", True)
        collector.record("a", False)
        collector.record("b", True)
        assert collector.accuracy == pytest.approx(2 / 3)
        assert collector.sequence_accuracy("a") == pytest.approx(0.5)
        assert collector.by_sequence() == {"a": 0.5, "b": 1.0}

    def test_unknown_sequence_is_zero(self):
        assert AccuracyCollector().sequence_accuracy("zzz") == 0.0

    def test_empty_collector(self):
        assert AccuracyCollector().accuracy == 0.0
