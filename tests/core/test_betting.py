"""Betting functions: integral constraints, monotonicity, log scores."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.betting import (
    ConstantBetting,
    LogScore,
    MixtureBetting,
    PowerBetting,
    ShiftedOddBetting,
)
from repro.errors import ConfigurationError


def _integral(fn, lo=1e-6, hi=1.0, n=200_001):
    xs = np.linspace(lo, hi, n)
    ys = np.array([fn(float(x)) for x in xs])
    return np.trapezoid(ys, xs)


class TestPowerBetting:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.5, 0.9])
    def test_integrates_to_one(self, epsilon):
        # integral over [lo, 1] of eps * p^(eps-1) is exactly 1 - lo^eps
        # integrate on a log-spaced grid: the eps = 0.1 singularity at 0
        # makes a uniform trapezoid grid overestimate near the left edge
        lo = 1e-6
        g = PowerBetting(epsilon)
        xs = np.geomspace(lo, 1.0, 200_001)
        integral = np.trapezoid([g(float(x)) for x in xs], xs)
        assert integral == pytest.approx(1.0 - lo ** epsilon, abs=5e-3)

    def test_decreasing_in_p(self):
        g = PowerBetting(0.3)
        assert g(0.01) > g(0.1) > g(0.5) > g(0.99)

    def test_diverges_at_zero(self):
        assert PowerBetting(0.3)(0.0) == float("inf")

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_epsilon_rejected(self, epsilon):
        with pytest.raises(ConfigurationError):
            PowerBetting(epsilon)

    def test_p_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBetting(0.3)(1.5)


class TestMixtureBetting:
    def test_integrates_to_one(self):
        # mass below lo is integral_0^1 lo^eps d eps = (lo - 1) / ln lo
        lo = 1e-6
        expected = 1.0 - (lo - 1.0) / np.log(lo)
        assert _integral(MixtureBetting(), lo=lo) == pytest.approx(
            expected, abs=2e-2)

    def test_matches_numeric_mixture_of_power_bets(self):
        g = MixtureBetting()
        eps = np.linspace(1e-4, 1 - 1e-4, 20_001)
        for p in (0.05, 0.3, 0.7):
            numeric = np.trapezoid(eps * p ** (eps - 1.0), eps)
            assert g(p) == pytest.approx(numeric, rel=1e-3)

    def test_limit_at_one(self):
        assert MixtureBetting()(1.0) == pytest.approx(0.5, abs=1e-6)

    def test_decreasing_in_p(self):
        g = MixtureBetting()
        assert g(0.01) > g(0.1) > g(0.9)


class TestConstantBetting:
    def test_always_one(self):
        g = ConstantBetting()
        assert g(0.0) == g(0.5) == g(1.0) == 1.0


class TestShiftedOddBetting:
    @pytest.mark.parametrize("power", [1.0, 2.0, 3.0])
    def test_integrates_to_zero(self, power):
        g = ShiftedOddBetting(power=power)
        assert _integral(g, lo=0.0) == pytest.approx(0.0, abs=1e-3)

    def test_default_is_half_minus_p(self):
        g = ShiftedOddBetting()
        for p in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert g(p) == pytest.approx(0.5 - p)

    def test_odd_symmetry_around_half(self):
        g = ShiftedOddBetting(power=2.0)
        for p in (0.1, 0.3, 0.45):
            assert g(p) == pytest.approx(-g(1.0 - p))

    def test_bound_property(self):
        g = ShiftedOddBetting(scale=3.0)
        assert g.bound == pytest.approx(1.5)
        assert abs(g(0.0)) <= g.bound + 1e-12

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ShiftedOddBetting(scale=0.0)


class TestLogScore:
    def test_positive_for_small_p_negative_for_large_p(self):
        score = LogScore(PowerBetting(0.1), p_floor=1e-3)
        assert score(0.001) > 0
        assert score(0.9) < 0

    def test_floor_caps_the_score(self):
        score = LogScore(PowerBetting(0.1), p_floor=1e-3)
        assert score(0.0) == pytest.approx(score(1e-3))
        assert score(0.0) == pytest.approx(score.max_score)

    def test_expectation_under_uniform_is_negative(self):
        """Jensen: E[log g(U)] < log E[g(U)] = 0 -- CUSUM drifts down
        under the null."""
        score = LogScore(PowerBetting(0.2), p_floor=1e-4)
        xs = np.linspace(1e-6, 1.0, 100_001)
        mean = np.mean([score(float(x)) for x in xs])
        assert mean < 0

    def test_requires_multiplicative_betting(self):
        with pytest.raises(ConfigurationError):
            LogScore(ShiftedOddBetting())

    @pytest.mark.parametrize("floor", [0.0, 1.0, -0.1])
    def test_invalid_floor_rejected(self, floor):
        with pytest.raises(ConfigurationError):
            LogScore(PowerBetting(0.3), p_floor=floor)

    @given(p=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_finite_for_any_p(self, p):
        score = LogScore(PowerBetting(0.1))
        assert np.isfinite(score(p))


class TestHistogramBetting:
    def test_integrates_to_one_at_any_state(self):
        from repro.core.betting import HistogramBetting
        g = HistogramBetting(bins=10)
        for p in (0.05, 0.5, 0.9, 0.9, 0.9):
            g(p)
        # the density estimate always integrates to exactly 1
        import numpy as np
        xs = np.linspace(1e-6, 1.0 - 1e-6, 10_001)
        # evaluate without mutating: snapshot the counts
        counts = g._counts.copy()
        values = []
        for x in xs:
            values.append(counts[min(int(x * 10), 9)] * 10 / counts.sum())
        assert np.trapezoid(values, xs) == pytest.approx(1.0, abs=1e-3)

    def test_learns_concentrated_pvalues(self):
        from repro.core.betting import HistogramBetting
        g = HistogramBetting(bins=10)
        for _ in range(50):
            g(0.05)
        # after many small p-values, the bet on the first bin is large
        snapshot = g._counts.copy()
        assert snapshot[0] * 10 / snapshot.sum() > 3.0

    def test_bets_before_updating(self):
        """The first call returns the prior (uniform) density regardless of
        the observed p-value -- betting after updating would peek."""
        from repro.core.betting import HistogramBetting
        g = HistogramBetting(bins=10, prior_count=1.0)
        assert g(0.01) == pytest.approx(1.0)

    def test_reset_restores_prior(self):
        from repro.core.betting import HistogramBetting
        g = HistogramBetting(bins=10)
        for _ in range(20):
            g(0.05)
        g.reset()
        assert g(0.5) == pytest.approx(1.0)

    def test_invalid_config(self):
        from repro.core.betting import HistogramBetting
        with pytest.raises(ConfigurationError):
            HistogramBetting(bins=1)
        with pytest.raises(ConfigurationError):
            HistogramBetting(prior_count=0.0)
