"""Martingales and the windowed Hoeffding-Azuma drift test."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.betting import LogScore, PowerBetting, ShiftedOddBetting
from repro.core.martingale import (
    AdditiveMartingale,
    MultiplicativeMartingale,
    hoeffding_threshold,
)
from repro.errors import ConfigurationError


class TestHoeffdingThreshold:
    def test_paper_worked_example(self):
        """Section 4.3.1: W = 2, r = 0.5 gives threshold 4."""
        assert hoeffding_threshold(2, 0.5) == pytest.approx(4.0)

    def test_scales_with_sqrt_window(self):
        t1 = hoeffding_threshold(4, 0.5)
        t2 = hoeffding_threshold(16, 0.5)
        assert t2 == pytest.approx(2.0 * t1)

    def test_log_bound_is_tighter(self):
        assert hoeffding_threshold(3, 0.5, use_log_bound=True) < (
            hoeffding_threshold(3, 0.5))

    def test_bound_scales_linearly(self):
        assert hoeffding_threshold(3, 0.5, bound=2.0) == pytest.approx(
            2.0 * hoeffding_threshold(3, 0.5))

    @pytest.mark.parametrize("window,significance", [(0, 0.5), (3, 0.0),
                                                     (3, 1.0), (-1, 0.5)])
    def test_invalid_parameters_rejected(self, window, significance):
        with pytest.raises(ConfigurationError):
            hoeffding_threshold(window, significance)


class TestMultiplicativeMartingale:
    def test_stays_low_under_uniform_pvalues(self, rng):
        martingale = MultiplicativeMartingale(PowerBetting(0.3),
                                              significance=0.05)
        fired = [martingale.update(float(rng.uniform())).drift
                 for _ in range(500)]
        # Ville: P(ever exceeding 1/0.05) <= 0.05
        assert not any(fired)

    def test_grows_and_fires_under_small_pvalues(self):
        martingale = MultiplicativeMartingale(PowerBetting(0.3),
                                              significance=0.05)
        state = None
        for _ in range(10):
            state = martingale.update(0.001)
        assert state.drift
        assert martingale.log_value > math.log(1 / 0.05)

    def test_value_overflow_saturates_to_inf(self):
        martingale = MultiplicativeMartingale(PowerBetting(0.1))
        for _ in range(200):
            martingale.update(1e-3)
        assert martingale.value == math.inf
        assert np.isfinite(martingale.log_value)

    def test_reset(self):
        martingale = MultiplicativeMartingale(PowerBetting(0.3))
        martingale.update(0.01)
        martingale.reset()
        assert martingale.log_value == 0.0
        assert martingale.step == 0

    def test_requires_multiplicative_betting(self):
        with pytest.raises(ConfigurationError):
            MultiplicativeMartingale(ShiftedOddBetting())

    def test_martingale_property_single_step_expectation(self):
        """E[g(U)] = 1 for one step under a uniform p-value (the defining
        martingale property); over many steps the *typical* path decays
        even though the mean stays 1, so we check the one-step integral."""
        g = PowerBetting(0.5)
        xs = np.linspace(1e-8, 1.0, 400_001)
        one_step = np.trapezoid([g(float(x)) for x in xs], xs)
        assert one_step == pytest.approx(1.0, abs=2e-2)


class TestAdditiveMartingale:
    def _make(self, **kwargs):
        score = LogScore(PowerBetting(0.1), p_floor=1e-3)
        defaults = dict(window=3, significance=0.5)
        defaults.update(kwargs)
        return AdditiveMartingale(score, **defaults)

    def test_cusum_reset_keeps_value_non_negative(self, rng):
        martingale = self._make()
        for _ in range(200):
            martingale.update(float(rng.uniform(0.5, 1.0)))
        assert martingale.value == 0.0

    def test_without_reset_value_can_go_negative(self, rng):
        martingale = self._make(cusum_reset=False)
        for _ in range(50):
            martingale.update(0.9)
        assert martingale.value < 0.0

    def test_fires_on_burst_of_small_pvalues(self):
        martingale = self._make()
        fired = False
        for _ in range(4):
            fired = martingale.update(0.001).drift or fired
        assert fired

    def test_rate_measures_windowed_change(self):
        martingale = self._make(window=2)
        martingale.update(0.001)
        martingale.update(0.001)
        expected = martingale.history[-1] - martingale.history[-3]
        assert martingale.rate() == pytest.approx(abs(expected))

    def test_no_drift_under_uniform_pvalues(self):
        for seed in range(5):
            martingale = self._make()
            r = np.random.default_rng(seed)
            fired = [martingale.update(float(r.uniform())).drift
                     for _ in range(300)]
            assert not any(fired)

    def test_history_truncation_keeps_window(self):
        martingale = self._make(max_history=10)
        for _ in range(100):
            martingale.update(0.5)
        assert len(martingale.history) <= 10
        # the rate test must still be computable
        assert martingale.rate() >= 0.0

    def test_reset(self):
        martingale = self._make()
        martingale.update(0.001)
        martingale.reset()
        assert martingale.history == [0.0]
        assert martingale.step == 0

    def test_additive_betting_function_also_works(self):
        martingale = AdditiveMartingale(ShiftedOddBetting(), window=3,
                                        significance=0.5, bound=0.5)
        state = None
        for _ in range(10):
            state = martingale.update(0.0)  # max positive bet each step
        assert state.value > 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            self._make(window=0)
