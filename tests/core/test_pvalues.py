"""Conformal p-values: Eq. 1 semantics, smoothing, calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pvalues import PValueCalculator, conformal_pvalue
from repro.errors import EmptyReferenceError


class TestConformalPValue:
    def test_score_above_all_references_is_small_but_positive(self, rng):
        reference = np.arange(1.0, 100.0)
        p = conformal_pvalue(reference, 1000.0, rng=rng)
        assert 0.0 < p <= 1.0 / 100.0

    def test_score_below_all_references_is_large_but_below_one(self, rng):
        reference = np.arange(1.0, 100.0)
        p = conformal_pvalue(reference, -5.0, rng=rng)
        assert (99.0 / 100.0) < p < 1.0

    def test_median_score_gives_mid_pvalue(self, rng):
        reference = np.arange(1.0, 101.0)
        p = conformal_pvalue(reference, 50.5, rng=rng)
        assert 0.4 < p < 0.6

    def test_without_self_matches_paper_table4(self, rng):
        """The worked example in Section 4.3.1 (Table 4) gets p = 0 when
        the new score exceeds every reference score and self-inclusion is
        disabled."""
        reference = np.array([1.8, 2.3, 4.0, 2.71, 1.72])
        p = conformal_pvalue(reference, 6.1, rng=rng, include_self=False)
        assert p == 0.0

    def test_ties_are_smoothed_with_uniform(self):
        reference = np.array([2.0, 2.0, 2.0, 2.0])
        draws = [conformal_pvalue(reference, 2.0,
                                  rng=np.random.default_rng(i))
                 for i in range(200)]
        # ties + self: p = U * 5 / 5 = U -- should spread over (0, 1)
        assert min(draws) < 0.1
        assert max(draws) > 0.9

    def test_tie_tolerance_groups_close_scores(self, rng):
        reference = np.array([1.0, 1.0000001, 3.0])
        exact = conformal_pvalue(reference, 1.0, rng=np.random.default_rng(0),
                                 tie_tolerance=0.0)
        tolerant = conformal_pvalue(reference, 1.0,
                                    rng=np.random.default_rng(0),
                                    tie_tolerance=1e-3)
        # with tolerance both 1.0-ish scores count as ties
        assert tolerant != exact or True  # both valid; just must not raise
        assert 0.0 < tolerant < 1.0

    def test_empty_reference_rejected(self, rng):
        with pytest.raises(EmptyReferenceError):
            conformal_pvalue(np.array([]), 1.0, rng=rng)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_always_in_open_unit_interval_with_self(self, seed):
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=50)
        score = float(rng.normal())
        p = conformal_pvalue(reference, score, rng=rng)
        assert 0.0 < p < 1.0

    def test_null_pvalues_are_approximately_uniform(self):
        """Theorem 4.1: exchangeable scores yield uniform p-values."""
        rng = np.random.default_rng(7)
        reference = rng.normal(size=400)
        calc = PValueCalculator(reference, seed=8)
        pvals = np.array([calc(float(rng.normal())) for _ in range(600)])
        # mean 0.5 +- 3 * sigma/sqrt(n), sd ~ 0.289
        assert abs(pvals.mean() - 0.5) < 3 * 0.289 / np.sqrt(600)
        # quartiles roughly where uniform puts them
        assert 0.17 < np.quantile(pvals, 0.25) < 0.33
        assert 0.67 < np.quantile(pvals, 0.75) < 0.83


class TestPValueCalculator:
    def test_seeded_stream_is_reproducible(self):
        reference = np.arange(10.0)
        a = PValueCalculator(reference, seed=3)
        b = PValueCalculator(reference, seed=3)
        scores = [0.5, 5.0, 20.0, -1.0]
        assert [a(s) for s in scores] == [b(s) for s in scores]

    def test_empty_reference_rejected(self):
        with pytest.raises(EmptyReferenceError):
            PValueCalculator(np.array([]))
