"""Property-based tests on the core statistical invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.betting import HistogramBetting, MixtureBetting, PowerBetting
from repro.core.martingale import AdditiveMartingale, hoeffding_threshold
from repro.core.betting import LogScore
from repro.core.nonconformity import KNNDistance
from repro.core.pvalues import conformal_pvalue


class TestPValueProperties:
    @given(seed=st.integers(0, 5000), n=st.integers(10, 200))
    @settings(max_examples=40, deadline=None)
    def test_pvalue_strictly_inside_unit_interval(self, seed, n):
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=n)
        score = float(rng.normal(scale=5.0))
        p = conformal_pvalue(reference, score, rng=rng)
        assert 0.0 < p < 1.0

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_pvalue_monotone_in_score(self, seed):
        """A stranger observation never gets a larger p-value (up to the
        shared tie-smoothing uniform)."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=100)
        u_rng_a = np.random.default_rng(1)
        u_rng_b = np.random.default_rng(1)
        low = conformal_pvalue(reference, -10.0, rng=u_rng_a)
        high = conformal_pvalue(reference, 10.0, rng=u_rng_b)
        assert high < low

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_pvalue_permutation_invariance(self, seed):
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=50)
        score = float(rng.normal())
        a = conformal_pvalue(reference, score, rng=np.random.default_rng(7))
        shuffled = reference[rng.permutation(50)]
        b = conformal_pvalue(shuffled, score, rng=np.random.default_rng(7))
        assert a == pytest.approx(b)


class TestBettingProperties:
    @given(eps=st.floats(0.05, 0.95), p=st.floats(0.01, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_power_betting_positive(self, eps, p):
        assert PowerBetting(eps)(p) > 0.0

    @given(p=st.floats(0.001, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_mixture_dominated_by_most_aggressive_power_at_small_p(self, p):
        """The mixture bet is an average over eps, so it is bounded by the
        envelope of the power bets it mixes."""
        mixture = MixtureBetting()(p)
        envelope = max(PowerBetting(eps)(p)
                       for eps in (0.05, 0.25, 0.5, 0.75, 0.95))
        assert mixture <= envelope * 1.5 + 1.0

    @given(seed=st.integers(0, 500), n=st.integers(5, 200))
    @settings(max_examples=30, deadline=None)
    def test_histogram_counts_conserved(self, seed, n):
        rng = np.random.default_rng(seed)
        g = HistogramBetting(bins=8, prior_count=1.0)
        for _ in range(n):
            g(float(rng.uniform()))
        assert g._counts.sum() == pytest.approx(8 * 1.0 + n)


class TestMartingaleProperties:
    @given(seed=st.integers(0, 300), window=st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_additive_value_never_negative_with_reset(self, seed, window):
        rng = np.random.default_rng(seed)
        score = LogScore(PowerBetting(0.2), p_floor=1e-3)
        martingale = AdditiveMartingale(score, window=window,
                                        significance=0.5)
        for _ in range(100):
            martingale.update(float(rng.uniform()))
            assert martingale.value >= 0.0

    @given(window=st.integers(1, 50),
           significance=st.floats(0.01, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_threshold_positive_and_monotone_in_window(self, window,
                                                       significance):
        t = hoeffding_threshold(window, significance)
        assert t > 0
        assert hoeffding_threshold(window + 1, significance) > t

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_burst_of_small_pvalues_always_fires(self, seed):
        score = LogScore(PowerBetting(0.1), p_floor=1e-3)
        martingale = AdditiveMartingale(score, window=3, significance=0.5)
        rng = np.random.default_rng(seed)
        # some null noise first
        for _ in range(30):
            martingale.update(float(rng.uniform()))
        fired = False
        for _ in range(5):
            fired = martingale.update(1e-4).drift or fired
        assert fired


class TestNonconformityProperties:
    @given(seed=st.integers(0, 500), shift=st.floats(5.0, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_far_points_score_higher_than_the_centre(self, seed, shift):
        """KNN scores are not locally monotone (density varies), but any
        point far outside the reference support must outscore the centre."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(60, 3))
        measure = KNNDistance(k=4)
        near = measure.score(reference.mean(axis=0), reference)
        far = measure.score(reference.mean(axis=0) + shift, reference)
        assert far > near

    @given(seed=st.integers(0, 500), scale=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_knn_score_scales_linearly(self, seed, scale):
        """Euclidean KNN scores are homogeneous of degree 1."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(40, 2))
        point = rng.normal(size=2)
        measure = KNNDistance(k=3)
        base = measure.score(point, reference)
        scaled = measure.score(point * scale, reference * scale)
        assert scaled == pytest.approx(base * scale, rel=1e-9)
