"""DriftAwareAnalytics: the Figure 1 loop on cheap synthetic bundles.

Uses hand-built gaussian "bundles" (identity embedder, trivial models) so
the pipeline logic -- drift handling, buffering, selection, cooldown,
fallbacks -- is exercised without any NN training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.errors import ConfigurationError

DIM = 8


class ConstantModel:
    """Predicts a fixed class; lets tests identify which model ran."""

    def __init__(self, label: int):
        self.label = label

    def predict(self, frames):
        return np.full(np.asarray(frames).shape[0], self.label, dtype=np.int64)

    def predict_proba(self, frames):
        n = np.asarray(frames).shape[0]
        probs = np.full((n, 4), 0.01)
        probs[:, self.label] = 0.97
        return probs


class ConstantEnsemble(ConstantModel):
    size = 3


def make_bundle(name: str, centre: float, label: int, rng) -> ModelBundle:
    sigma = rng.normal(centre, 1.0, size=(200, DIM))
    from repro.core.nonconformity import KNNDistance
    scores = KNNDistance(5).reference_scores(sigma)
    frames = rng.normal(centre, 1.0, size=(60, DIM))
    labels = np.full(60, label, dtype=np.int64)
    return ModelBundle(name=name, sigma=sigma, reference_scores=scores,
                       model=ConstantModel(label),
                       ensemble=ConstantEnsemble(label),
                       training_frames=frames, training_labels=labels)


@pytest.fixture
def registry(rng):
    return ModelRegistry([
        make_bundle("low", 0.0, 0, rng),
        make_bundle("high", 6.0, 1, rng),
    ])


def gaussian_stream(rng, segments):
    """Frames from consecutive (centre, length) gaussian segments."""
    chunks = [rng.normal(c, 1.0, size=(n, DIM)) for c, n in segments]
    return np.vstack(chunks)


def oracle_annotator(items):
    """Labels by proximity: frames near 0 -> 0, near 6 -> 1."""
    arr = np.stack([np.asarray(i) for i in items])
    return (arr.mean(axis=1) > 3.0).astype(np.int64)


def make_pipeline(registry, selector_kind, **config_kwargs):
    config = PipelineConfig(
        selection_window=8,
        drift_inspector=DriftInspectorConfig(seed=0),
        **config_kwargs)
    if selector_kind == "msbi":
        selector = MSBI(registry, MSBIConfig(window_size=8, seed=0))
    else:
        selector = MSBO(registry, MSBOConfig(window_size=8, seed=0,
                                             calibration_sample=30))
    return DriftAwareAnalytics(registry, "low", selector,
                               annotator=oracle_annotator, config=config)


class TestProcessing:
    @pytest.mark.parametrize("selector_kind", ["msbi", "msbo"])
    def test_detects_drift_and_swaps_model(self, rng, registry, selector_kind):
        pipeline = make_pipeline(registry, selector_kind)
        stream = gaussian_stream(rng, [(0.0, 60), (6.0, 60)])
        result = pipeline.process(stream)
        assert len(result.records) == 120
        assert len(result.detections) >= 1
        assert result.detections[0].selected_model == "high"
        assert pipeline.deployed_model == "high"
        # frames after the swap are predicted by the 'high' model (label 1)
        assert result.predictions[-10:].tolist() == [1] * 10

    def test_no_drift_no_detection(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi")
        stream = gaussian_stream(rng, [(0.0, 120)])
        result = pipeline.process(stream)
        assert result.detections == []
        assert set(result.models_used) == {"low"}

    def test_invocations_are_one_per_frame(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi")
        stream = gaussian_stream(rng, [(0.0, 40), (6.0, 40)])
        result = pipeline.process(stream)
        assert result.invocations.invocations_per_frame == 1.0
        assert result.invocations.frames == 80

    def test_every_frame_gets_a_record(self, rng, registry):
        pipeline = make_pipeline(registry, "msbo")
        stream = gaussian_stream(rng, [(0.0, 30), (6.0, 35)])
        result = pipeline.process(stream)
        assert [r.frame_index for r in result.records] == list(range(65))

    def test_simulated_time_accumulates(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi")
        stream = gaussian_stream(rng, [(0.0, 30), (6.0, 30)])
        result = pipeline.process(stream)
        assert result.simulated_ms > 0


class TestCooldown:
    def test_cooldown_suppresses_immediate_redetection(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi", cooldown_frames=25)
        # oscillate briefly right after the drift: without cooldown this
        # would trigger repeated selections
        stream = np.vstack([
            gaussian_stream(rng, [(0.0, 40)]),
            gaussian_stream(rng, [(6.0, 12)]),
            gaussian_stream(rng, [(6.0, 60)]),
        ])
        result = pipeline.process(stream)
        assert len(result.detections) == 1

    def test_zero_cooldown_is_allowed(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi", cooldown_frames=0)
        stream = gaussian_stream(rng, [(0.0, 40), (6.0, 40)])
        result = pipeline.process(stream)
        assert len(result.detections) >= 1

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(cooldown_frames=-1)


class TestNovelDistribution:
    def test_unknown_distribution_falls_back_without_trainer(self, rng,
                                                             registry):
        pipeline = make_pipeline(registry, "msbi")
        # a third distribution no bundle covers
        stream = gaussian_stream(rng, [(0.0, 40), (20.0, 40)])
        result = pipeline.process(stream)
        assert len(result.detections) >= 1
        assert result.detections[0].novel
        # fallback deploys the nearest provisioned model
        assert result.detections[0].selected_model in ("low", "high")

    def test_trainer_builds_new_bundle(self, rng, registry):
        from repro.core.selection.trainer import ModelTrainer, TrainerConfig

        class FakeVAE:
            def fit(self, frames):
                self._frames = np.asarray(frames)
                return self

            def sample_latents(self, n, seed=None):
                idx = np.random.default_rng(0).integers(
                    0, self._frames.shape[0], size=n)
                return self._frames[idx]

            def embed(self, frames):
                return np.asarray(frames)

        class FakeClassifier(ConstantModel):
            def __init__(self):
                super().__init__(3)

            def fit(self, frames, labels):
                return self

        trainer = ModelTrainer(
            vae_factory=lambda seed: FakeVAE(),
            classifier_factory=lambda seed: FakeClassifier(),
            annotator=oracle_annotator,
            config=TrainerConfig(frames_to_collect=30, sigma_size=30))
        config = PipelineConfig(
            selection_window=8,
            training_budget=30,
            drift_inspector=DriftInspectorConfig(seed=0))
        selector = MSBI(registry, MSBIConfig(window_size=8, seed=0))
        pipeline = DriftAwareAnalytics(registry, "low", selector,
                                       annotator=oracle_annotator,
                                       trainer=trainer, config=config)
        stream = gaussian_stream(rng, [(0.0, 40), (25.0, 80)])
        result = pipeline.process(stream)
        novel = [d for d in result.detections if d.novel]
        assert novel
        assert novel[0].selected_model.startswith("novel_")
        assert novel[0].selected_model in pipeline.registry


class TestValidation:
    def test_rejects_non_selector(self, registry):
        with pytest.raises(ConfigurationError):
            DriftAwareAnalytics(registry, "low", selector=object())

    def test_msbo_requires_annotator(self, registry):
        selector = MSBO(registry, MSBOConfig(seed=0, calibration_sample=30))
        with pytest.raises(ConfigurationError):
            DriftAwareAnalytics(registry, "low", selector)

    @pytest.mark.parametrize("kwargs", [
        {"frame_policy": "ignore"}, {"max_retries": -1},
        {"retry_backoff_ms": -5.0}, {"breaker_threshold": 0},
    ])
    def test_invalid_fault_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**kwargs)


class TestStreamingAPI:
    """step() / flush() push-based processing matches batch process()."""

    def test_step_matches_process(self, rng, registry):
        stream = gaussian_stream(rng, [(0.0, 50), (6.0, 50)])
        batch = make_pipeline(registry, "msbi").process(stream)
        streaming = make_pipeline(registry, "msbi")
        streaming.start()
        for item in stream:
            streaming.step(item)
        streaming.flush()
        live = streaming.result()
        assert live.predictions.tolist() == batch.predictions.tolist()
        assert len(live.detections) == len(batch.detections)
        assert [d.selected_model for d in live.detections] == [
            d.selected_model for d in batch.detections]

    def test_step_buffers_during_selection(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi")
        pipeline.start()
        emitted = []
        buffered_steps = 0
        for item in gaussian_stream(rng, [(0.0, 40), (6.0, 40)]):
            out = pipeline.step(item)
            if not out:
                buffered_steps += 1
            emitted.extend(out)
        emitted.extend(pipeline.flush())
        # some steps returned nothing (the post-drift buffer), but every
        # frame eventually got a record
        assert buffered_steps >= 1
        assert len(emitted) == 80

    def test_flush_resolves_partial_window(self, rng, registry):
        """Stream ends mid-buffer: flush still selects and emits."""
        pipeline = make_pipeline(registry, "msbi")
        pipeline.start()
        stream = gaussian_stream(rng, [(0.0, 40), (6.0, 3)])
        for item in stream:
            pipeline.step(item)
        pipeline.flush()
        result = pipeline.result()
        assert len(result.records) == 43
        # detection fires a couple frames into the shifted tail, so between
        # 1 and 3 frames were buffered when the stream ended
        assert result.detections
        assert 1 <= result.detections[0].selection_frames <= 3

    def test_step_without_start_self_initialises(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi")
        out = pipeline.step(rng.normal(size=DIM))
        assert len(out) == 1

    def test_result_mid_stream(self, rng, registry):
        pipeline = make_pipeline(registry, "msbi")
        pipeline.start()
        for item in gaussian_stream(rng, [(0.0, 10)]):
            pipeline.step(item)
        partial = pipeline.result()
        assert len(partial.records) == 10


class TestFaultAccounting:
    def test_clean_run_reports_zero_faults(self, rng, registry):
        stream = gaussian_stream(rng, [(0.0, 50), (6.0, 50)])
        result = make_pipeline(registry, "msbi").process(stream)
        assert result.faults.frames_ok == 100
        assert not result.faults.degraded
        assert result.faults.as_dict()["frames_repaired"] == 0

    def test_flush_with_tiny_train_buffer_falls_back(self, rng, registry):
        # the stream ends one frame after a far-out-of-distribution jump:
        # flush() resolves a train-mode buffer too small for the trainer
        # and must fall back deterministically instead of raising
        pipeline = make_pipeline(registry, "msbi")
        stream = np.vstack([gaussian_stream(rng, [(0.0, 50)]),
                            rng.normal(25.0, 1.0, size=(1, DIM))])
        result = pipeline.process(stream)
        assert len(result.records) == 51
        assert result.records[-1].model in ("low", "high")
