"""Nonconformity measures: correctness, vectorisation, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.nonconformity import KNNDistance, MahalanobisDistance, MeanDistance
from repro.errors import ConfigurationError, DimensionMismatchError, EmptyReferenceError


class TestKNNDistance:
    def test_score_matches_manual_computation(self):
        reference = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        measure = KNNDistance(k=2)
        # nearest two to (0,0): itself-like (0,0) at 0 and (1,0)/(0,1) at 1
        score = measure.score(np.array([0.0, 0.0]), reference)
        assert score == pytest.approx((0.0 + 1.0) / 2)

    def test_score_with_k_larger_than_reference_uses_all(self):
        reference = np.array([[0.0], [2.0]])
        measure = KNNDistance(k=10)
        score = measure.score(np.array([1.0]), reference)
        assert score == pytest.approx(1.0)

    def test_far_point_scores_higher_than_near_point(self, gaussian_reference):
        measure = KNNDistance(k=5)
        near = measure.score(np.zeros(4), gaussian_reference)
        far = measure.score(np.full(4, 10.0), gaussian_reference)
        assert far > near

    def test_reference_scores_match_leave_one_out_loop(self, rng):
        reference = rng.normal(size=(30, 3))
        measure = KNNDistance(k=4)
        fast = measure.reference_scores(reference)
        slow = np.array([
            measure.score(reference[i], np.delete(reference, i, axis=0))
            for i in range(30)
        ])
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            KNNDistance(k=0)

    def test_empty_reference_rejected(self):
        with pytest.raises(EmptyReferenceError):
            KNNDistance().score(np.array([1.0]), np.empty((0, 1)))

    def test_dimension_mismatch_rejected(self, gaussian_reference):
        with pytest.raises(DimensionMismatchError):
            KNNDistance().score(np.zeros(7), gaussian_reference)

    def test_reference_scores_need_two_points(self):
        with pytest.raises(EmptyReferenceError):
            KNNDistance().reference_scores(np.array([[1.0, 2.0]]))

    @given(points=arrays(np.float64, (12, 3),
                         elements=st.floats(-50, 50)))
    @settings(max_examples=25, deadline=None)
    def test_scores_are_non_negative(self, points):
        measure = KNNDistance(k=3)
        scores = measure.reference_scores(points)
        assert (scores >= 0).all()

    def test_score_invariant_to_reference_order(self, rng):
        reference = rng.normal(size=(20, 2))
        point = rng.normal(size=2)
        measure = KNNDistance(k=3)
        shuffled = reference[rng.permutation(20)]
        assert measure.score(point, reference) == pytest.approx(
            measure.score(point, shuffled))


class TestMeanDistance:
    def test_score_is_mean_of_distances(self):
        reference = np.array([[0.0], [2.0], [4.0]])
        score = MeanDistance().score(np.array([0.0]), reference)
        assert score == pytest.approx((0 + 2 + 4) / 3)

    def test_reference_scores_match_loop(self, rng):
        reference = rng.normal(size=(15, 2))
        measure = MeanDistance()
        fast = measure.reference_scores(reference)
        slow = np.array([
            measure.score(reference[i], np.delete(reference, i, axis=0))
            for i in range(15)
        ])
        np.testing.assert_allclose(fast, slow, rtol=1e-9)


class TestMahalanobisDistance:
    def test_centre_scores_near_zero(self, gaussian_reference):
        measure = MahalanobisDistance()
        centre = gaussian_reference.mean(axis=0)
        assert measure.score(centre, gaussian_reference) < 0.5

    def test_outlier_scores_high(self, gaussian_reference):
        measure = MahalanobisDistance()
        assert measure.score(np.full(4, 8.0), gaussian_reference) > 5.0

    def test_scale_invariance(self, rng):
        """Mahalanobis should be unchanged by axis scaling."""
        reference = rng.normal(size=(300, 2))
        point = np.array([2.0, 1.0])
        measure = MahalanobisDistance()
        base = measure.score(point, reference)
        scaled_ref = reference * np.array([10.0, 0.1])
        scaled_point = point * np.array([10.0, 0.1])
        scaled = MahalanobisDistance().score(scaled_point, scaled_ref)
        assert scaled == pytest.approx(base, rel=0.05)

    def test_reference_scores_shape(self, gaussian_reference):
        scores = MahalanobisDistance().reference_scores(gaussian_reference)
        assert scores.shape == (200,)
        assert (scores >= 0).all()

    def test_invalid_regularization(self):
        with pytest.raises(ConfigurationError):
            MahalanobisDistance(regularization=0.0)

    def test_single_point_reference_rejected(self):
        with pytest.raises(EmptyReferenceError):
            MahalanobisDistance().score(np.zeros(2), np.zeros((1, 2)))
