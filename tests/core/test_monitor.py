"""FleetMonitor: multi-camera processing over a shared registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monitor import FleetConfig, FleetMonitor
from repro.core.pipeline import PipelineConfig
from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.selection.registry import ModelRegistry
from repro.core.selection.trainer import ModelTrainer, TrainerConfig
from repro.errors import ConfigurationError

from tests.core.test_pipeline import (  # reuse the cheap gaussian fixtures
    DIM,
    gaussian_stream,
    make_bundle,
    oracle_annotator,
)


@pytest.fixture
def registry(rng):
    return ModelRegistry([
        make_bundle("low", 0.0, 0, rng),
        make_bundle("high", 6.0, 1, rng),
    ])


def make_fleet(registry, **kwargs):
    defaults = dict(
        annotator=oracle_annotator,
        config=FleetConfig(
            selection_window=8,
            pipeline=PipelineConfig(
                selection_window=8,
                drift_inspector=DriftInspectorConfig(seed=0))))
    defaults.update(kwargs)
    return FleetMonitor(registry, **defaults)


class TestFleetBasics:
    def test_cameras_process_independently(self, rng, registry):
        fleet = make_fleet(registry)
        fleet.add_camera("cam-a", "low")
        fleet.add_camera("cam-b", "high")
        for frame in gaussian_stream(rng, [(0.0, 40)]):
            fleet.step("cam-a", frame)
        for frame in gaussian_stream(rng, [(6.0, 40)]):
            fleet.step("cam-b", frame)
        fleet.flush()
        results = fleet.results()
        assert len(results["cam-a"].records) == 40
        assert len(results["cam-b"].records) == 40
        assert results["cam-a"].detections == []
        assert results["cam-b"].detections == []

    def test_drift_on_one_camera_does_not_touch_the_other(self, rng,
                                                          registry):
        fleet = make_fleet(registry)
        fleet.add_camera("stable", "low")
        fleet.add_camera("drifting", "low")
        stable = gaussian_stream(rng, [(0.0, 80)])
        drifting = gaussian_stream(rng, [(0.0, 40), (6.0, 40)])
        for a, b in zip(stable, drifting):
            fleet.step("stable", a)
            fleet.step("drifting", b)
        fleet.flush()
        assert fleet.deployed_model("stable") == "low"
        assert fleet.deployed_model("drifting") == "high"
        assert fleet.result("stable").detections == []
        assert len(fleet.result("drifting").detections) >= 1

    def test_fleet_summary(self, rng, registry):
        fleet = make_fleet(registry)
        fleet.add_camera("a", "low")
        for frame in gaussian_stream(rng, [(0.0, 20), (6.0, 20)]):
            fleet.step("a", frame)
        fleet.flush()
        summary = fleet.fleet_summary()
        assert summary["cameras"] == 1
        assert summary["frames"] == 40
        assert summary["detections"] >= 1
        assert "low" in summary["registry_models"]

    def test_duplicate_camera_rejected(self, registry):
        fleet = make_fleet(registry)
        fleet.add_camera("a", "low")
        with pytest.raises(ConfigurationError):
            fleet.add_camera("a", "low")

    def test_unknown_camera_rejected(self, registry):
        fleet = make_fleet(registry)
        with pytest.raises(ConfigurationError):
            fleet.step("ghost", np.zeros(DIM))

    def test_empty_registry_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetMonitor(ModelRegistry())

    def test_invalid_selector_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(selector="oracle")


class TestSharedTraining:
    def test_novel_model_from_one_camera_serves_the_fleet(self, rng,
                                                          registry):
        """Camera A drifts to an unknown distribution -> trainNewModel;
        the new bundle lands in the shared registry, so camera B's selector
        can deploy it without retraining."""

        class FakeVAE:
            def fit(self, frames):
                self._frames = np.asarray(frames)
                return self

            def sample_latents(self, n, seed=None):
                r = np.random.default_rng(0)
                idx = r.integers(0, self._frames.shape[0], size=n)
                return self._frames[idx] + r.normal(0, 1e-3,
                                                    size=(n, DIM))

            def embed(self, frames):
                return np.asarray(frames)

        class FakeClassifier:
            def fit(self, frames, labels):
                return self

            def predict(self, frames):
                return np.full(np.asarray(frames).shape[0], 2,
                               dtype=np.int64)

        trainer = ModelTrainer(
            vae_factory=lambda seed: FakeVAE(),
            classifier_factory=lambda seed: FakeClassifier(),
            annotator=oracle_annotator,
            config=TrainerConfig(frames_to_collect=30, sigma_size=40))
        fleet = make_fleet(registry, trainer=trainer,
                           config=FleetConfig(
                               selection_window=8,
                               pipeline=PipelineConfig(
                                   selection_window=8, training_budget=30,
                                   drift_inspector=DriftInspectorConfig(
                                       seed=0))))
        fleet.add_camera("a", "low")
        fleet.add_camera("b", "low")
        # camera A sees the novel distribution and trains a bundle for it
        for frame in gaussian_stream(rng, [(0.0, 40), (25.0, 60)]):
            fleet.step("a", frame)
        fleet.flush("a")
        novel = [d for d in fleet.result("a").detections if d.novel]
        assert novel
        new_name = novel[0].selected_model
        assert new_name in fleet.registry
        # camera B hits the same distribution: MSBI now *selects* the shared
        # bundle instead of training again
        for frame in gaussian_stream(rng, [(0.0, 40), (25.0, 40)]):
            fleet.step("b", frame)
        fleet.flush("b")
        b_detections = fleet.result("b").detections
        assert b_detections
        assert b_detections[-1].selected_model == new_name
        assert not b_detections[-1].novel
