"""The paper's worked example (Section 4.3.1, Tables 2-4).

Table 2 gives the training sample Sigma_T and its precomputed scores A_i;
Table 3 the four input frames; Table 4 the resulting nonconformity scores
a_f and p-values.  This test reproduces those numbers exactly with the
library's components, pinning the implementation to the paper's semantics
(K = 3 nearest neighbours, average Euclidean distance, p-values without
self-inclusion, threshold sqrt(2 W (2 / r)) = 4 for W = 2, r = 0.5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.martingale import hoeffding_threshold
from repro.core.nonconformity import KNNDistance
from repro.core.pvalues import conformal_pvalue

SIGMA_T = np.array([[2.0, 3.0], [3.0, 1.0], [-1.0, 0.0], [4.0, 4.0],
                    [2.0, 2.0]])
A_I = np.array([1.8, 2.3, 4.0, 2.71, 1.72])
INPUT_FRAMES = np.array([[8.0, 6.0], [9.0, 8.0], [10.0, 7.0], [6.0, 7.0]])
# Table 4 lists a_f = [6.1, 7.6, 8.3, 5.2].  Three of the four check out
# against K = 3 average-Euclidean KNN; the second is a typo in the paper:
# the three nearest distances from [9, 8] are 6.40, 8.60 and 9.22, whose
# average is 8.07, not 7.6 (no choice of K in 1..5 yields 7.6 either).
TABLE4_A_F = [6.1, 8.07, 8.3, 5.2]


class TestPaperWorkedExample:
    def test_table2_reference_scores(self):
        """A_i in Table 2 are leave-one-out K=3 KNN scores of Sigma_T."""
        measure = KNNDistance(k=3)
        scores = measure.reference_scores(SIGMA_T)
        np.testing.assert_allclose(scores, A_I, atol=0.05)

    @pytest.mark.parametrize("frame,expected",
                             list(zip(INPUT_FRAMES, TABLE4_A_F)))
    def test_table4_nonconformity_scores(self, frame, expected):
        measure = KNNDistance(k=3)
        assert measure.score(frame, SIGMA_T) == pytest.approx(expected,
                                                              abs=0.05)

    def test_table4_pvalues_are_zero_without_self_inclusion(self):
        """Every frame's score exceeds all of A_i, so Table 4's p column is
        0 under the paper's (non-self-inclusive) reading of Eq. 1."""
        measure = KNNDistance(k=3)
        rng = np.random.default_rng(0)
        for frame in INPUT_FRAMES:
            a_f = measure.score(frame, SIGMA_T)
            p = conformal_pvalue(A_I, a_f, rng=rng, include_self=False)
            assert p == 0.0

    def test_threshold_is_four(self):
        """W = 2, r = 0.5: 'the right part of the inequality becomes 4'."""
        assert hoeffding_threshold(2, 0.5) == pytest.approx(4.0)

    def test_drift_fires_once_rate_exceeds_threshold(self):
        """Table 4: drift is declared at iter 4, when S[4] - S[2] > 4.

        The paper's betting increments are not fully specified, so we use
        its published martingale trajectory directly and check the windowed
        rate test's decision sequence.
        """
        s = [0.0, 1.5, 2.5, 5.4, 8.5]  # Table 4's S[iter] column
        threshold = hoeffding_threshold(2, 0.5)
        decisions = [abs(s[i] - s[max(i - 2, 0)]) > threshold
                     for i in range(1, 5)]
        assert decisions == [False, False, False, True]
