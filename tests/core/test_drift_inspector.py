"""Drift Inspector (Algorithm 1): detection, calibration, bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.errors import ConfigurationError, EmptyReferenceError
from repro.sim.clock import SimulatedClock


def make_inspector(reference, **config_kwargs):
    config = DriftInspectorConfig(seed=42, **config_kwargs)
    return DriftInspector(reference, config=config)


class TestDetection:
    def test_detects_mean_shift_quickly(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        shifted = rng.normal(4.0, 1.0, size=(50, 4))
        delay = inspector.frames_to_detect(iter(shifted))
        assert delay is not None
        assert delay <= 10

    def test_detects_variance_collapse_in_high_dim(self, rng):
        """Points collapsing to the centre ('too conformal') must also be
        flagged -- the two-sided transform handles p-values near 1.  The
        effect needs enough dimensions: concentration of measure puts the
        reference points on a shell, so the centre is strictly closer to
        the bag than typical points are to each other."""
        reference = rng.normal(size=(240, 16))
        inspector = make_inspector(reference)
        collapsed = rng.normal(0.0, 0.01, size=(100, 16))
        delay = inspector.frames_to_detect(iter(collapsed))
        assert delay is not None

    def test_one_sided_misses_variance_collapse(self, rng):
        reference = rng.normal(size=(240, 16))
        inspector = make_inspector(reference, two_sided=False)
        collapsed = rng.normal(0.0, 0.01, size=(100, 16))
        assert inspector.frames_to_detect(iter(collapsed)) is None

    def test_no_false_positive_on_null_stream(self, gaussian_reference):
        for seed in (0, 1, 2):
            inspector = make_inspector(gaussian_reference)
            null = np.random.default_rng(seed).normal(size=(400, 4))
            assert inspector.frames_to_detect(iter(null)) is None

    def test_drift_frame_is_recorded(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        null = rng.normal(size=(30, 4))
        for frame in null:
            inspector.observe(frame)
        assert inspector.drift_frame is None
        shifted = rng.normal(5.0, 1.0, size=(20, 4))
        for frame in shifted:
            inspector.observe(frame)
        assert inspector.drift_detected
        assert inspector.drift_frame >= 30

    def test_drift_flag_sticks_until_reset(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        for frame in rng.normal(5.0, 1.0, size=(20, 4)):
            inspector.observe(frame)
        assert inspector.drift_detected
        # even a conformal frame keeps reporting drift
        decision = inspector.observe(np.zeros(4))
        assert decision.drift

    def test_frames_to_detect_respects_limit(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        null = rng.normal(size=(100, 4))
        assert inspector.frames_to_detect(iter(null), limit=10) is None
        assert inspector.frames_processed == 10


class TestReset:
    def test_reset_clears_state(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        for frame in rng.normal(5.0, 1.0, size=(20, 4)):
            inspector.observe(frame)
        inspector.reset()
        assert not inspector.drift_detected
        assert inspector.frames_processed == 0
        assert inspector.decisions == []

    def test_reset_with_new_reference(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        new_reference = rng.normal(5.0, 1.0, size=(150, 4))
        inspector.reset(reference=new_reference)
        # the previously-drifting distribution is now the null
        shifted = rng.normal(5.0, 1.0, size=(200, 4))
        assert inspector.frames_to_detect(iter(shifted)) is None


class TestPlumbing:
    def test_monitor_generator_stops_on_drift(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        shifted = rng.normal(5.0, 1.0, size=(50, 4))
        decisions = list(inspector.monitor(iter(shifted)))
        assert decisions[-1].drift
        assert len(decisions) < 50

    def test_decision_fields_populated(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference)
        decision = inspector.observe(rng.normal(size=4))
        assert decision.frame_index == 0
        assert decision.nonconformity >= 0.0
        assert 0.0 < decision.p_value < 1.0

    def test_clock_charges_per_frame(self, rng, gaussian_reference):
        clock = SimulatedClock()
        inspector = DriftInspector(gaussian_reference,
                                   DriftInspectorConfig(seed=1), clock=clock)
        for frame in rng.normal(size=(10, 4)):
            inspector.observe(frame)
        counts = clock.operation_counts()
        assert counts["knn_nonconformity"] == 10
        assert counts["martingale_update"] == 10
        # no embedder: no VAE charge
        assert "vae_encode" not in counts

    def test_embedder_is_used_and_charged(self, rng, gaussian_reference):
        class ProjectingEmbedder:
            def embed(self, frames):
                return np.asarray(frames)[:, :4]

        clock = SimulatedClock()
        inspector = DriftInspector(gaussian_reference,
                                   DriftInspectorConfig(seed=1),
                                   embedder=ProjectingEmbedder(), clock=clock)
        inspector.observe(rng.normal(size=8))
        assert clock.operation_counts()["vae_encode"] == 1

    def test_reference_scores_length_mismatch_rejected(self, gaussian_reference):
        with pytest.raises(ConfigurationError):
            DriftInspector(gaussian_reference,
                           reference_scores=np.ones(3))

    def test_tiny_reference_rejected(self):
        with pytest.raises(EmptyReferenceError):
            DriftInspector(np.zeros((1, 4)))

    @pytest.mark.parametrize("kwargs", [
        {"window": 0}, {"significance": 0.0}, {"significance": 1.0},
        {"k": 0},
        {"betting_epsilon": 0.0}, {"betting_epsilon": 1.0},
        {"betting_epsilon": -0.2}, {"p_floor": 0.0}, {"p_floor": 1.0},
        {"p_floor": 2.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DriftInspectorConfig(**kwargs)


class TestMartingaleVariants:
    """The multiplicative (Eq. 5 + Ville) and adaptive-betting variants."""

    def test_multiplicative_power_detects_fast(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference,
                                   martingale="multiplicative",
                                   significance=0.02)
        shifted = rng.normal(4.0, 1.0, size=(50, 4))
        delay = inspector.frames_to_detect(iter(shifted))
        assert delay is not None and delay <= 10

    def test_multiplicative_respects_ville_bound(self, gaussian_reference):
        """Eq. 4: P(S_n ever exceeds 1/r) <= r over the whole stream."""
        fired = 0
        for seed in range(8):
            inspector = DriftInspector(
                gaussian_reference,
                DriftInspectorConfig(seed=seed, martingale="multiplicative",
                                     significance=0.02))
            null = np.random.default_rng(seed).normal(size=(300, 4))
            fired += inspector.frames_to_detect(iter(null)) is not None
        assert fired <= 1

    def test_histogram_betting_with_additive_machine(self, rng,
                                                     gaussian_reference):
        inspector = make_inspector(gaussian_reference, betting="histogram")
        shifted = rng.normal(4.0, 1.0, size=(120, 4))
        assert inspector.frames_to_detect(iter(shifted)) is not None

    def test_mixture_betting_detects(self, rng, gaussian_reference):
        inspector = make_inspector(gaussian_reference, betting="mixture")
        shifted = rng.normal(4.0, 1.0, size=(120, 4))
        assert inspector.frames_to_detect(iter(shifted)) is not None

    def test_reset_rebuilds_stateful_betting(self, rng, gaussian_reference):
        """HistogramBetting carries state; reset must start fresh."""
        inspector = make_inspector(gaussian_reference, betting="histogram")
        for frame in rng.normal(4.0, 1.0, size=(60, 4)):
            inspector.observe(frame)
        inspector.reset()
        assert inspector.martingale.value == 0.0
        null = rng.normal(size=(100, 4))
        assert inspector.frames_to_detect(iter(null)) is None

    @pytest.mark.parametrize("kwargs", [
        {"martingale": "quantum"}, {"betting": "roulette"}])
    def test_invalid_variant_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DriftInspectorConfig(**kwargs)
