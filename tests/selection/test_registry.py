"""ModelRegistry and ModelBundle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection.registry import (
    ModelBundle,
    ModelRegistry,
    NovelDistribution,
)
from repro.errors import RegistryError, ReproError


def make_bundle(name="a", n=10, d=3):
    sigma = np.arange(n * d, dtype=float).reshape(n, d)
    return ModelBundle(name=name, sigma=sigma,
                       reference_scores=np.ones(n))


class TestModelBundle:
    def test_valid_bundle(self):
        bundle = make_bundle()
        assert bundle.sigma.shape == (10, 3)

    def test_score_length_mismatch_rejected(self):
        with pytest.raises(RegistryError):
            ModelBundle(name="x", sigma=np.zeros((5, 2)),
                        reference_scores=np.zeros(4))

    def test_one_dimensional_sigma_rejected(self):
        with pytest.raises(RegistryError):
            ModelBundle(name="x", sigma=np.zeros(5),
                        reference_scores=np.zeros(5))

    def test_embed_without_vae_flattens(self):
        bundle = make_bundle()
        frames = np.zeros((4, 2, 3))
        assert bundle.embed(frames).shape == (4, 6)

    def test_embed_prefers_sample_embed(self):
        class Embedder:
            def sample_embed(self, frames):
                return np.full((np.asarray(frames).shape[0], 2), 7.0)

            def embed(self, frames):
                raise AssertionError("should not be called")

        bundle = make_bundle()
        bundle.vae = Embedder()
        out = bundle.embed(np.zeros((3, 5)))
        assert (out == 7.0).all()


class TestModelRegistry:
    def test_add_get_roundtrip(self):
        registry = ModelRegistry()
        bundle = make_bundle("day")
        registry.add(bundle)
        assert registry.get("day") is bundle
        assert "day" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ModelRegistry([make_bundle("day")])
        with pytest.raises(RegistryError):
            registry.add(make_bundle("day"))

    def test_replace_overwrites(self):
        registry = ModelRegistry([make_bundle("day")])
        replacement = make_bundle("day", n=20)
        registry.replace(replacement)
        assert registry.get("day") is replacement

    def test_unknown_lookup_raises_with_known_names(self):
        registry = ModelRegistry([make_bundle("day")])
        with pytest.raises(RegistryError, match="day"):
            registry.get("night")

    def test_remove(self):
        registry = ModelRegistry([make_bundle("day")])
        registry.remove("day")
        assert len(registry) == 0
        with pytest.raises(RegistryError):
            registry.remove("day")

    def test_iteration_preserves_insertion_order(self):
        registry = ModelRegistry([make_bundle("b"), make_bundle("a")])
        assert [b.name for b in registry] == ["b", "a"]
        assert registry.names() == ["b", "a"]


class TestNovelDistribution:
    def test_is_control_flow_not_repro_error(self):
        exc = NovelDistribution()
        assert not isinstance(exc, ReproError)

    def test_carries_diagnostics(self):
        exc = NovelDistribution("nope", diagnostics={"brier": 0.5})
        assert exc.diagnostics["brier"] == 0.5
