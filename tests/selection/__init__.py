"""Tests for :mod:`repro.core.selection` (MSBI / MSBO, registry)."""
