"""ModelTrainer (trainNewModel, Section 5.4) with injected fakes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection.trainer import ModelTrainer, TrainerConfig
from repro.errors import ConfigurationError, StreamExhaustedError
from repro.sim.clock import SimulatedClock


class FakeVAE:
    def __init__(self):
        self.fit_calls = 0

    def fit(self, frames):
        self.fit_calls += 1
        self._frames = np.asarray(frames).reshape(len(frames), -1)
        return self

    def sample_latents(self, n, seed=None):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, self._frames.shape[0], size=n)
        return self._frames[idx] + rng.normal(0, 1e-3,
                                              size=(n, self._frames.shape[1]))

    def embed(self, frames):
        return np.asarray(frames).reshape(len(frames), -1)


class FakeClassifier:
    def __init__(self):
        self.fitted_with = None

    def fit(self, frames, labels):
        self.fitted_with = (np.asarray(frames).shape[0],
                            np.asarray(labels).shape[0])
        return self

    def predict(self, frames):
        return np.zeros(np.asarray(frames).shape[0], dtype=np.int64)


class FakeEnsemble(FakeClassifier):
    size = 3

    def predict_proba(self, frames):
        n = np.asarray(frames).shape[0]
        return np.full((n, 2), 0.5)


def count_annotator(frames):
    return np.zeros(np.asarray(frames).shape[0], dtype=np.int64)


def make_trainer(**kwargs):
    defaults = dict(
        vae_factory=lambda seed: FakeVAE(),
        classifier_factory=lambda seed: FakeClassifier(),
        annotator=count_annotator,
        ensemble_factory=lambda seed: FakeEnsemble(),
        config=TrainerConfig(frames_to_collect=20, sigma_size=15, seed=0))
    defaults.update(kwargs)
    return ModelTrainer(**defaults)


class TestTrainNewModel:
    def test_builds_complete_bundle(self, rng):
        trainer = make_trainer()
        frames = rng.uniform(size=(30, 8))
        bundle = trainer.train_new_model("fresh", frames)
        assert bundle.name == "fresh"
        assert bundle.sigma.shape[0] == 15
        assert bundle.reference_scores.shape[0] == 15
        assert bundle.vae is not None
        assert bundle.model.fitted_with == (30, 30)
        assert bundle.ensemble.fitted_with == (30, 30)
        assert trainer.trained == ["fresh"]

    def test_supplied_labels_skip_annotation(self, rng):
        calls = []

        def tracking_annotator(frames):
            calls.append(len(frames))
            return np.zeros(len(frames), dtype=np.int64)

        trainer = make_trainer(annotator=tracking_annotator)
        frames = rng.uniform(size=(20, 8))
        trainer.train_new_model("x", frames,
                                labels=np.zeros(20, dtype=np.int64))
        assert calls == []

    def test_annotation_charges_clock(self, rng):
        clock = SimulatedClock()
        trainer = make_trainer(clock=clock)
        trainer.train_new_model("x", rng.uniform(size=(25, 8)))
        assert clock.operation_counts()["annotate_frame"] == 25

    def test_no_ensemble_factory_yields_bundle_without_ensemble(self, rng):
        trainer = make_trainer(ensemble_factory=None)
        bundle = trainer.train_new_model("x", rng.uniform(size=(20, 8)))
        assert bundle.ensemble is None

    def test_annotator_length_mismatch_rejected(self, rng):
        trainer = make_trainer(
            annotator=lambda frames: np.zeros(3, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            trainer.train_new_model("x", rng.uniform(size=(20, 8)))

    def test_too_few_frames_rejected(self, rng):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            trainer.train_new_model("x", rng.uniform(size=(1, 8)))


class TestCollect:
    def test_collect_respects_budget(self, rng):
        trainer = make_trainer()
        stream = iter(rng.uniform(size=(100, 8)))
        frames = trainer.collect(stream)
        assert frames.shape == (20, 8)

    def test_collect_explicit_limit(self, rng):
        trainer = make_trainer()
        frames = trainer.collect(iter(rng.uniform(size=(100, 8))), limit=7)
        assert frames.shape[0] == 7

    def test_collect_short_stream_returns_what_exists(self, rng):
        trainer = make_trainer()
        frames = trainer.collect(iter(rng.uniform(size=(5, 8))))
        assert frames.shape[0] == 5

    def test_collect_exact_short_stream_raises(self, rng):
        trainer = make_trainer()
        with pytest.raises(StreamExhaustedError, match="5 of the 20"):
            trainer.collect(iter(rng.uniform(size=(5, 8))), exact=True)

    def test_collect_exact_satisfied(self, rng):
        trainer = make_trainer()
        frames = trainer.collect(iter(rng.uniform(size=(30, 8))), exact=True)
        assert frames.shape[0] == 20

    def test_collect_empty_stream_rejected(self):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            trainer.collect(iter([]))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"frames_to_collect": 0}, {"sigma_size": 1}, {"ensemble_size": 1}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainerConfig(**kwargs)
