"""Proper scoring rules: Brier, NLL, decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection.scoring import (
    brier_decomposition,
    brier_score,
    negative_log_likelihood,
)
from repro.errors import ConfigurationError, DimensionMismatchError


class TestBrierScore:
    def test_perfect_certainty_scores_zero(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        assert brier_score(probs, labels) == pytest.approx(0.0)

    def test_confident_wrong_scores_maximally(self):
        probs = np.array([[1.0, 0.0]])
        labels = np.array([1])
        # per paper normalization: (1 + 1) / K = 1.0 for K = 2
        assert brier_score(probs, labels) == pytest.approx(1.0)

    def test_uniform_prediction_value(self):
        k = 4
        probs = np.full((1, k), 1.0 / k)
        labels = np.array([2])
        expected = ((1 - 1 / k) ** 2 + (k - 1) * (1 / k) ** 2) / k
        assert brier_score(probs, labels) == pytest.approx(expected)

    def test_unnormalized_matches_classic_definition(self):
        probs = np.array([[0.7, 0.3]])
        labels = np.array([0])
        classic = (0.3 ** 2 + 0.3 ** 2)
        assert brier_score(probs, labels, normalize=False) == pytest.approx(
            classic)
        assert brier_score(probs, labels) == pytest.approx(classic / 2)

    def test_properness_true_distribution_wins(self, rng):
        """A proper scoring rule is minimised in expectation by the true
        conditional distribution."""
        true_p = np.array([0.7, 0.2, 0.1])
        labels = rng.choice(3, p=true_p, size=4000)
        honest = np.tile(true_p, (4000, 1))
        overconfident = np.tile([0.99, 0.005, 0.005], (4000, 1))
        flat = np.full((4000, 3), 1 / 3)
        honest_score = brier_score(honest, labels)
        assert honest_score < brier_score(overconfident, labels)
        assert honest_score < brier_score(flat, labels)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            brier_score(np.empty((0, 2)), np.empty(0, dtype=int))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            brier_score(np.array([[0.5, 0.5]]), np.array([2]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            brier_score(np.array([[0.5, 0.5]]), np.array([0, 1]))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_bounded(self, seed):
        r = np.random.default_rng(seed)
        logits = r.normal(size=(20, 5))
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        labels = r.integers(0, 5, size=20)
        score = brier_score(probs, labels)
        assert 0.0 <= score <= 2.0


class TestNLL:
    def test_perfect_prediction_is_zero(self):
        probs = np.array([[1.0, 0.0]])
        assert negative_log_likelihood(probs, np.array([0])) == pytest.approx(
            0.0, abs=1e-9)

    def test_worse_prediction_higher_nll(self):
        labels = np.array([0])
        good = negative_log_likelihood(np.array([[0.9, 0.1]]), labels)
        bad = negative_log_likelihood(np.array([[0.2, 0.8]]), labels)
        assert bad > good

    def test_zero_probability_is_finite(self):
        probs = np.array([[0.0, 1.0]])
        assert np.isfinite(negative_log_likelihood(probs, np.array([0])))


class TestBrierDecomposition:
    def test_keys_and_ranges(self, rng):
        probs = rng.dirichlet(np.ones(3), size=100)
        labels = rng.integers(0, 3, size=100)
        decomp = brier_decomposition(probs, labels)
        assert set(decomp) == {"reliability", "resolution", "uncertainty",
                               "brier_top1"}
        assert decomp["reliability"] >= 0
        assert decomp["resolution"] >= 0
        assert 0 <= decomp["uncertainty"] <= 0.25

    def test_calibrated_predictor_has_low_reliability(self, rng):
        """A predictor whose confidence equals its accuracy has reliability
        near zero."""
        n = 5000
        confidence = 0.8
        probs = np.tile([confidence, 1 - confidence], (n, 1))
        correct = rng.uniform(size=n) < confidence
        labels = np.where(correct, 0, 1)
        decomp = brier_decomposition(probs, labels)
        assert decomp["reliability"] < 0.01

    def test_invalid_bins_rejected(self, rng):
        probs = rng.dirichlet(np.ones(2), size=10)
        with pytest.raises(ConfigurationError):
            brier_decomposition(probs, np.zeros(10, dtype=int), bins=0)
