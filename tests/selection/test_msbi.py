"""MSBI (Algorithm 2) on synthetic gaussian bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nonconformity import KNNDistance
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.registry import (
    ModelBundle,
    ModelRegistry,
    NovelDistribution,
)
from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock

DIM = 6


def gaussian_bundle(name, centre, rng, n=200):
    sigma = rng.normal(centre, 1.0, size=(n, DIM))
    scores = KNNDistance(5).reference_scores(sigma)
    return ModelBundle(name=name, sigma=sigma, reference_scores=scores)


@pytest.fixture
def registry(rng):
    return ModelRegistry([
        gaussian_bundle("low", 0.0, rng),
        gaussian_bundle("mid", 6.0, rng),
        gaussian_bundle("high", 12.0, rng),
    ])


class TestSelection:
    @pytest.mark.parametrize("centre,expected", [(0.0, "low"), (6.0, "mid"),
                                                 (12.0, "high")])
    def test_selects_matching_distribution(self, rng, registry, centre,
                                           expected):
        msbi = MSBI(registry, MSBIConfig(seed=0))
        frames = rng.normal(centre, 1.0, size=(10, DIM))
        assert msbi.select(frames) == expected

    def test_novel_distribution_raises(self, rng, registry):
        msbi = MSBI(registry, MSBIConfig(seed=0))
        frames = rng.normal(30.0, 1.0, size=(10, DIM))
        with pytest.raises(NovelDistribution) as excinfo:
            msbi.select(frames)
        flags = excinfo.value.diagnostics["drift_flags"]
        assert all(flags.values())

    def test_report_is_populated(self, rng, registry):
        msbi = MSBI(registry, MSBIConfig(seed=0))
        frames = rng.normal(0.0, 1.0, size=(10, DIM))
        selected = msbi.select(frames)
        report = msbi.last_report
        assert report.selected == selected
        assert report.rounds >= 1
        assert report.frames_examined >= 10

    def test_candidates_restrict_the_search(self, rng, registry):
        msbi = MSBI(registry, MSBIConfig(seed=0))
        frames = rng.normal(0.0, 1.0, size=(10, DIM))
        assert msbi.select(frames, candidates=["low", "mid"]) == "low"

    def test_tie_between_overlapping_bundles_resolves(self, rng):
        """Two nearly identical reference distributions: escalation (and
        finally the closest-centroid tie-break) must return one of them."""
        registry = ModelRegistry([
            gaussian_bundle("a", 0.0, rng),
            gaussian_bundle("b", 0.3, rng),
            gaussian_bundle("far", 15.0, rng),
        ])
        msbi = MSBI(registry, MSBIConfig(seed=0))
        frames = np.random.default_rng(5).normal(0.0, 1.0, size=(10, DIM))
        assert msbi.select(frames) in ("a", "b")

    def test_window_size_truncates_input(self, rng, registry):
        msbi = MSBI(registry, MSBIConfig(window_size=5, seed=0))
        frames = rng.normal(0.0, 1.0, size=(50, DIM))
        msbi.select(frames)
        # one round over 3 bundles at 5 frames each
        assert msbi.last_report.frames_examined % 5 == 0


class TestCost:
    def test_clock_charges_per_model_per_frame(self, rng, registry):
        clock = SimulatedClock()
        msbi = MSBI(registry, MSBIConfig(window_size=10, seed=0), clock=clock)
        frames = rng.normal(0.0, 1.0, size=(10, DIM))
        msbi.select(frames)
        counts = clock.operation_counts()
        # 3 models x 10 frames in the first (and only) round
        assert counts["msbi_model_frame"] == 30


class TestValidation:
    def test_empty_registry_rejected(self):
        with pytest.raises(ConfigurationError):
            MSBI(ModelRegistry())

    def test_empty_window_rejected(self, registry):
        msbi = MSBI(registry, MSBIConfig(seed=0))
        with pytest.raises(ConfigurationError):
            msbi.select(np.empty((0, DIM)))

    @pytest.mark.parametrize("kwargs", [
        {"window_size": 0}, {"significance": 0.0}, {"r_step": 0.0},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            MSBIConfig(**kwargs)
