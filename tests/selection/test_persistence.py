"""Bundle / registry persistence round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.selection.persistence import (
    load_bundle,
    load_registry,
    save_bundle,
    save_registry,
)
from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.detectors.classifier_filters import CountClassifier, SpatialFilter
from repro.errors import ConfigurationError
from repro.nn.classifier import ClassifierConfig
from repro.nn.ensemble import DeepEnsemble
from repro.nn.vae import VAE, VAEConfig
from repro.queries.spatial import bus_left_of_car


@pytest.fixture(scope="module")
def trained_bundle(rng=None):
    rng = np.random.default_rng(0)
    frames = np.clip(rng.uniform(size=(60, 8, 8)), 0, 1)
    labels = (frames.mean(axis=(1, 2)) > 0.5).astype(np.int64)
    vae = VAE(VAEConfig(input_shape=(1, 8, 8), latent_dim=3, epochs=2,
                        hidden=16, seed=0))
    vae.fit(frames)
    sigma = vae.sample_latents(150, seed=1)
    from repro.core.nonconformity import KNNDistance
    scores = KNNDistance(5).reference_scores(sigma)
    clf_config = ClassifierConfig(input_shape=(1, 8, 8), num_classes=2,
                                  hidden=16, epochs=3, seed=0)
    model = CountClassifier(clf_config)
    model.fit(frames, labels)
    ensemble = DeepEnsemble(clf_config, size=2, seed=0)
    ensemble.fit(frames, labels)
    return ModelBundle(name="demo", sigma=sigma, reference_scores=scores,
                       vae=vae, model=model, ensemble=ensemble,
                       training_frames=frames, training_labels=labels,
                       metadata={"trained_frames": 60})


class TestBundleRoundTrip:
    def test_arrays_survive(self, trained_bundle, tmp_path):
        save_bundle(str(tmp_path / "b"), trained_bundle)
        loaded = load_bundle(str(tmp_path / "b"))
        np.testing.assert_allclose(loaded.sigma, trained_bundle.sigma)
        np.testing.assert_allclose(loaded.reference_scores,
                                   trained_bundle.reference_scores)
        np.testing.assert_allclose(loaded.training_frames,
                                   trained_bundle.training_frames)
        assert loaded.metadata["trained_frames"] == 60

    def test_vae_embeddings_survive(self, trained_bundle, tmp_path):
        save_bundle(str(tmp_path / "b"), trained_bundle)
        loaded = load_bundle(str(tmp_path / "b"))
        frames = trained_bundle.training_frames[:4]
        np.testing.assert_allclose(loaded.vae.embed(frames),
                                   trained_bundle.vae.embed(frames),
                                   atol=1e-10)
        np.testing.assert_allclose(
            loaded.vae.augmented_embed(frames),
            trained_bundle.vae.augmented_embed(frames), atol=1e-10)

    def test_model_predictions_survive(self, trained_bundle, tmp_path):
        save_bundle(str(tmp_path / "b"), trained_bundle)
        loaded = load_bundle(str(tmp_path / "b"))
        frames = trained_bundle.training_frames[:8]
        np.testing.assert_array_equal(loaded.model.predict(frames),
                                      trained_bundle.model.predict(frames))

    def test_ensemble_probabilities_survive(self, trained_bundle, tmp_path):
        save_bundle(str(tmp_path / "b"), trained_bundle)
        loaded = load_bundle(str(tmp_path / "b"))
        frames = trained_bundle.training_frames[:8]
        np.testing.assert_allclose(
            loaded.ensemble.predict_proba(frames),
            trained_bundle.ensemble.predict_proba(frames), atol=1e-10)

    def test_loaded_bundle_drives_a_drift_inspector(self, trained_bundle,
                                                    tmp_path):
        save_bundle(str(tmp_path / "b"), trained_bundle)
        loaded = load_bundle(str(tmp_path / "b"))
        inspector = DriftInspector(loaded.sigma, DriftInspectorConfig(seed=2),
                                   embedder=loaded.vae)
        # strongly darkened frames are a genuine distribution shift
        # (note 1 - U(0,1) would NOT be: uniform noise is inversion-invariant)
        shifted = trained_bundle.training_frames[:40] * 0.3
        assert inspector.frames_to_detect(iter(shifted)) is not None

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_bundle(str(tmp_path / "nothing"))

    def test_spatial_model_needs_predicate(self, trained_bundle, tmp_path):
        clf_config = ClassifierConfig(input_shape=(1, 8, 8), num_classes=2,
                                      hidden=16, epochs=2, seed=0)
        filt = SpatialFilter(bus_left_of_car, config=clf_config)
        filt.fit(trained_bundle.training_frames,
                 trained_bundle.training_labels)
        bundle = ModelBundle(name="sp", sigma=trained_bundle.sigma,
                             reference_scores=trained_bundle.reference_scores,
                             model=filt)
        save_bundle(str(tmp_path / "sp"), bundle)
        with pytest.raises(ConfigurationError, match="spatial_predicate"):
            load_bundle(str(tmp_path / "sp"))
        loaded = load_bundle(str(tmp_path / "sp"),
                             spatial_predicate=bus_left_of_car)
        frames = trained_bundle.training_frames[:4]
        np.testing.assert_array_equal(loaded.model.predict(frames),
                                      filt.predict(frames))


class TestRegistryRoundTrip:
    def test_registry_order_and_content(self, trained_bundle, tmp_path):
        other = ModelBundle(name="other", sigma=trained_bundle.sigma * 2,
                            reference_scores=trained_bundle.reference_scores)
        registry = ModelRegistry([trained_bundle, other])
        save_registry(str(tmp_path / "reg"), registry)
        loaded = load_registry(str(tmp_path / "reg"))
        assert loaded.names() == ["demo", "other"]
        np.testing.assert_allclose(loaded.get("other").sigma,
                                   trained_bundle.sigma * 2)

    def test_missing_index_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_registry(str(tmp_path / "nope"))
