"""MSBO (Algorithm 3) on synthetic bundles with fake ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nonconformity import KNNDistance
from repro.core.selection.msbo import MSBO, MSBOCalibration, MSBOConfig
from repro.core.selection.registry import (
    ModelBundle,
    ModelRegistry,
    NovelDistribution,
)
from repro.errors import ConfigurationError, NotFittedError
from repro.sim.clock import SimulatedClock

DIM = 4
K = 3


class ThresholdEnsemble:
    """Confident and correct near its centre, confident and wrong away.

    Predicts class ``label`` with high confidence for frames whose mean is
    within ``radius`` of ``centre``; otherwise it still predicts ``label``
    confidently (deep nets are overconfident off-distribution, the exact
    behaviour MSBO's Brier calibration exists to catch).
    """

    size = 4

    def __init__(self, centre: float, label: int):
        self.centre = centre
        self.label = label

    def predict_proba(self, frames):
        n = np.asarray(frames).shape[0]
        probs = np.full((n, K), (1 - 0.94) / (K - 1))
        probs[:, self.label] = 0.94
        return probs

    def predict(self, frames):
        return self.predict_proba(frames).argmax(axis=1)


def make_bundle(name, centre, label, rng):
    sigma = rng.normal(centre, 1.0, size=(60, DIM))
    scores = KNNDistance(5).reference_scores(sigma)
    frames = rng.normal(centre, 1.0, size=(80, DIM))
    labels = np.full(80, label, dtype=np.int64)
    return ModelBundle(name=name, sigma=sigma, reference_scores=scores,
                       ensemble=ThresholdEnsemble(centre, label),
                       training_frames=frames, training_labels=labels)


@pytest.fixture
def registry(rng):
    return ModelRegistry([
        make_bundle("a", 0.0, 0, rng),
        make_bundle("b", 5.0, 1, rng),
        make_bundle("c", 10.0, 2, rng),
    ])


class TestCalibration:
    def test_calibrate_builds_cross_distribution_baseline(self, registry):
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        calibration = msbo.calibrate()
        assert set(calibration.pc_avg) == {"a", "b", "c"}
        # every ensemble is confidently wrong on the other distributions:
        # the baseline uncertainty is high
        for name in ("a", "b", "c"):
            assert calibration.pc_avg[name] > 0.3

    def test_threshold_is_mean_minus_margin_sigma(self):
        calibration = MSBOCalibration(pc_avg={"m": 0.5}, sigma={"m": 0.1})
        assert calibration.threshold("m") == pytest.approx(0.4)
        assert calibration.threshold("m", margin=2.0) == pytest.approx(0.3)

    def test_threshold_unknown_model_raises(self):
        with pytest.raises(NotFittedError):
            MSBOCalibration().threshold("missing")

    def test_calibration_needs_two_models(self, rng):
        registry = ModelRegistry([make_bundle("solo", 0.0, 0, rng)])
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=10))
        with pytest.raises(ConfigurationError):
            msbo.calibrate()

    def test_missing_ensemble_rejected(self, rng):
        bundle = make_bundle("x", 0.0, 0, rng)
        bundle.ensemble = None
        registry = ModelRegistry([bundle, make_bundle("y", 5.0, 1, rng)])
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=10))
        with pytest.raises(NotFittedError):
            msbo.calibrate()


class TestSelection:
    @pytest.mark.parametrize("centre,label,expected", [
        (0.0, 0, "a"), (5.0, 1, "b"), (10.0, 2, "c")])
    def test_selects_lowest_brier_model(self, rng, registry, centre, label,
                                        expected):
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        frames = rng.normal(centre, 1.0, size=(10, DIM))
        labels = np.full(10, label, dtype=np.int64)
        assert msbo.select(frames, labels) == expected

    def test_novel_when_best_model_fails_threshold(self, rng, registry):
        """A strict calibrated threshold rejects even the best model."""
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        msbo.calibration = MSBOCalibration(
            pc_avg={"a": 1e-6, "b": 1e-6, "c": 1e-6},
            sigma={"a": 0.0, "b": 0.0, "c": 0.0})
        frames = rng.normal(20.0, 1.0, size=(10, DIM))
        labels = np.array([(i % K) for i in range(10)], dtype=np.int64)
        with pytest.raises(NovelDistribution) as excinfo:
            msbo.select(frames, labels)
        assert "brier" in excinfo.value.diagnostics

    def test_report_records_scores(self, rng, registry):
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        frames = rng.normal(0.0, 1.0, size=(10, DIM))
        labels = np.zeros(10, dtype=np.int64)
        msbo.select(frames, labels)
        report = msbo.last_report
        assert report.selected == "a"
        assert set(report.brier) == {"a", "b", "c"}
        assert report.brier["a"] < report.brier["b"]

    def test_select_auto_calibrates(self, rng, registry):
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        assert msbo.calibration is None
        msbo.select(rng.normal(0.0, 1.0, size=(10, DIM)),
                    np.zeros(10, dtype=np.int64))
        assert msbo.calibration is not None

    def test_window_truncation(self, rng, registry):
        msbo = MSBO(registry, MSBOConfig(window_size=5, seed=0,
                                         calibration_sample=40))
        frames = rng.normal(0.0, 1.0, size=(50, DIM))
        labels = np.zeros(50, dtype=np.int64)
        assert msbo.select(frames, labels) == "a"


class TestCost:
    def test_clock_charges_ensemble_members(self, rng, registry):
        clock = SimulatedClock()
        msbo = MSBO(registry, MSBOConfig(window_size=10, seed=0,
                                         calibration_sample=40), clock=clock)
        frames = rng.normal(0.0, 1.0, size=(10, DIM))
        msbo.select(frames, np.zeros(10, dtype=np.int64))
        # 3 models x 4 members x 10 frames
        assert clock.operation_counts()["ensemble_member_infer"] == 120


class TestValidation:
    def test_labels_length_mismatch_rejected(self, rng, registry):
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        with pytest.raises(ConfigurationError):
            msbo.select(rng.normal(size=(5, DIM)), np.zeros(3, dtype=np.int64))

    def test_empty_window_rejected(self, registry):
        msbo = MSBO(registry, MSBOConfig(seed=0, calibration_sample=40))
        with pytest.raises(ConfigurationError):
            msbo.select(np.empty((0, DIM)), np.empty(0, dtype=np.int64))

    @pytest.mark.parametrize("kwargs", [
        {"window_size": 0}, {"calibration_sample": 1}, {"sigma_margin": -1.0}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            MSBOConfig(**kwargs)
