"""ODIN-Detect / Select / Specialize on synthetic gaussian data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.baselines.odin.select import OdinSelect, SelectionOutcome
from repro.baselines.odin.specialize import OdinSpecialize
from repro.errors import ConfigurationError
from repro.sim.clock import SimulatedClock

DIM = 5


def seeded_detect(rng, centres=(0.0,), config=None):
    detect = OdinDetect(config=config or OdinConfig())
    for i, centre in enumerate(centres):
        detect.seed_cluster(f"c{i}", rng.normal(centre, 1.0, size=(150, DIM)))
    return detect


class TestOdinDetect:
    def test_assigns_in_distribution_frames(self, rng):
        detect = seeded_detect(rng)
        decision = detect.observe(rng.normal(0.0, 1.0, size=DIM))
        assert decision.assigned_cluster == "c0"
        assert not decision.drift

    def test_detects_shifted_distribution_via_promotion(self, rng):
        detect = seeded_detect(rng)
        shifted = rng.normal(8.0, 1.0, size=(120, DIM))
        delay = detect.frames_to_detect(iter(shifted))
        assert delay is not None
        # promotion needs at least min_temp_size members
        assert delay >= detect.config.min_temp_size

    def test_promoted_cluster_becomes_permanent(self, rng):
        detect = seeded_detect(rng)
        for frame in rng.normal(8.0, 1.0, size=(120, DIM)):
            if detect.observe(frame).drift:
                break
        assert len(detect.clusters) == 2
        assert detect.temp is None

    def test_no_promotion_on_null_stream(self, rng):
        detect = seeded_detect(rng)
        for frame in rng.normal(0.0, 1.0, size=(300, DIM)):
            assert not detect.observe(frame).drift

    def test_temp_timeout_discards_stale_cluster(self, rng):
        config = OdinConfig(temp_timeout=10, min_temp_size=22)
        detect = seeded_detect(rng, config=config)
        # a trickle of outliers: one every 5 frames
        for i in range(100):
            if i % 5 == 0:
                detect.observe(rng.normal(8.0, 1.0, size=DIM))
            else:
                detect.observe(rng.normal(0.0, 1.0, size=DIM))
        # the trickle never promotes because the temp cluster keeps dying
        assert not detect.drift_detected

    def test_reset_detection_keeps_clusters(self, rng):
        detect = seeded_detect(rng)
        detect.frames_to_detect(iter(rng.normal(8.0, 1.0, size=(120, DIM))))
        n_clusters = len(detect.clusters)
        detect.reset_detection()
        assert not detect.drift_detected
        assert len(detect.clusters) == n_clusters

    def test_clock_charges(self, rng):
        clock = SimulatedClock()
        detect = OdinDetect(clock=clock)
        detect.seed_cluster("c", rng.normal(size=(50, DIM)))
        detect.observe(rng.normal(size=DIM))
        assert clock.operation_counts()["odin_band_update"] == 1

    @pytest.mark.parametrize("kwargs", [
        {"kl_threshold": 0.0}, {"min_temp_size": 2}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            OdinConfig(**kwargs)


class TestOdinSelect:
    def test_single_model_for_clear_frames(self, rng):
        detect = seeded_detect(rng, centres=(0.0, 20.0))
        select = OdinSelect(detect.clusters, band_tolerance=0.3)
        outcome = select.select(rng.normal(0.0, 1.0, size=DIM))
        assert outcome.models == ["c0"]
        assert not outcome.is_ensemble

    def test_overlapping_clusters_yield_ensembles(self, rng):
        detect = seeded_detect(rng, centres=(0.0, 0.5))
        select = OdinSelect(detect.clusters, band_tolerance=1.0)
        ensembles = 0
        for frame in rng.normal(0.25, 1.0, size=(60, DIM)):
            if select.select(frame).is_ensemble:
                ensembles += 1
        assert ensembles > 0
        assert select.invocations_per_frame > 1.0
        assert 0.0 < select.ensemble_fraction <= 1.0

    def test_no_band_match_falls_back_to_nearest(self, rng):
        detect = seeded_detect(rng, centres=(0.0, 20.0))
        select = OdinSelect(detect.clusters, band_tolerance=0.1)
        outcome = select.select(np.full(DIM, 19.0))
        assert outcome.models == ["c1"]

    def test_equal_weights(self):
        outcome = SelectionOutcome(frame_index=0, models=["a", "b"])
        assert outcome.weights == [0.5, 0.5]

    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectionOutcome(frame_index=0, models=[])

    def test_empty_cluster_list_rejected(self):
        with pytest.raises(ConfigurationError):
            OdinSelect([])


class TestOdinSpecialize:
    def test_trains_model_from_items(self, rng):
        class FakeModel:
            def fit(self, frames, labels):
                self.n = len(frames)
                return self

        specializer = OdinSpecialize(
            classifier_factory=lambda seed: FakeModel(),
            annotator=lambda items: np.zeros(len(items), dtype=np.int64),
            min_frames=5, seed=0)
        items = list(range(10))
        pixels = rng.uniform(size=(10, 4))
        model = specializer.specialize("new", items, pixels)
        assert model.n == 10
        assert specializer.trained_clusters == ["new"]

    def test_too_few_frames_rejected(self, rng):
        specializer = OdinSpecialize(
            classifier_factory=lambda seed: None,
            annotator=lambda items: np.zeros(len(items), dtype=np.int64),
            min_frames=5)
        with pytest.raises(ConfigurationError):
            specializer.specialize("x", [1, 2], rng.uniform(size=(2, 4)))
