"""ODIN clusters: running statistics, density bands, KL divergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.odin.clusters import OdinCluster, diagonal_gaussian_kl
from repro.errors import ConfigurationError, EmptyReferenceError


class TestDiagonalGaussianKL:
    def test_identical_gaussians_have_zero_kl(self):
        mean = np.array([1.0, -2.0])
        var = np.array([0.5, 2.0])
        assert diagonal_gaussian_kl(mean, var, mean, var) == pytest.approx(0.0)

    def test_known_univariate_value(self):
        # KL(N(1,1) || N(0,1)) = 0.5
        kl = diagonal_gaussian_kl(np.array([1.0]), np.array([1.0]),
                                  np.array([0.0]), np.array([1.0]))
        assert kl == pytest.approx(0.5)

    def test_non_negative(self, rng):
        for _ in range(20):
            kl = diagonal_gaussian_kl(rng.normal(size=3),
                                      rng.uniform(0.1, 2.0, 3),
                                      rng.normal(size=3),
                                      rng.uniform(0.1, 2.0, 3))
            assert kl >= -1e-12

    def test_asymmetric(self):
        a = diagonal_gaussian_kl(np.array([0.0]), np.array([1.0]),
                                 np.array([0.0]), np.array([4.0]))
        b = diagonal_gaussian_kl(np.array([0.0]), np.array([4.0]),
                                 np.array([0.0]), np.array([1.0]))
        assert a != pytest.approx(b)


class TestOdinCluster:
    def test_centroid_and_variance_match_numpy(self, rng):
        points = rng.normal(2.0, 1.5, size=(100, 3))
        cluster = OdinCluster("c")
        cluster.bulk_add(points)
        np.testing.assert_allclose(cluster.centroid, points.mean(axis=0),
                                   atol=1e-9)
        np.testing.assert_allclose(cluster.variance,
                                   points.var(axis=0, ddof=1), atol=1e-9)

    def test_incremental_equals_bulk(self, rng):
        points = rng.normal(size=(50, 2))
        incremental = OdinCluster("a")
        for p in points:
            incremental.add(p)
        bulk = OdinCluster("b")
        bulk.bulk_add(points)
        np.testing.assert_allclose(incremental.centroid, bulk.centroid)
        np.testing.assert_allclose(incremental.variance, bulk.variance)

    def test_band_encloses_half_the_members(self, rng):
        points = rng.normal(size=(400, 3))
        cluster = OdinCluster("c", delta=0.5)
        cluster.bulk_add(points)
        lo, hi = cluster.band()
        distances = np.sqrt(((points - cluster.centroid) ** 2).sum(axis=1))
        inside = ((distances >= lo) & (distances <= hi)).mean()
        assert 0.35 < inside < 0.65

    def test_accepts_in_distribution_rejects_far(self, rng):
        points = rng.normal(size=(200, 3))
        cluster = OdinCluster("c")
        cluster.bulk_add(points)
        assert cluster.accepts(rng.normal(size=3), tolerance=0.5)
        assert not cluster.accepts(np.full(3, 50.0), tolerance=0.5)

    def test_empty_cluster_rejects_everything(self):
        cluster = OdinCluster("c")
        assert not cluster.accepts(np.zeros(2))

    def test_empty_cluster_raises_on_stats(self):
        cluster = OdinCluster("c")
        with pytest.raises(EmptyReferenceError):
            cluster.centroid
        with pytest.raises(EmptyReferenceError):
            cluster.band()

    def test_distance_is_euclidean(self):
        cluster = OdinCluster("c")
        cluster.bulk_add(np.zeros((5, 2)))
        assert cluster.distance(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_gaussian_state_is_a_snapshot(self, rng):
        cluster = OdinCluster("c")
        cluster.bulk_add(rng.normal(size=(20, 2)))
        mean, var = cluster.gaussian_state()
        cluster.add(np.full(2, 100.0))
        assert not np.allclose(mean, cluster.centroid)

    def test_memory_is_bounded(self, rng):
        from repro.baselines.odin.clusters import _MAX_DISTANCES
        cluster = OdinCluster("c")
        for _ in range(_MAX_DISTANCES + 100):
            cluster.add(rng.normal(size=2))
        assert len(cluster._distances) <= _MAX_DISTANCES

    def test_invalid_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            OdinCluster("c", delta=1.0)

    def test_bulk_add_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            OdinCluster("c").bulk_add(np.empty((0, 2)))
