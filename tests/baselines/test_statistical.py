"""Classical change detectors (KS, CUSUM, moment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.statistical import CusumDetector, KSDetector, MomentDetector
from repro.errors import ConfigurationError, EmptyReferenceError

DIM = 4


@pytest.fixture
def reference(rng):
    return rng.normal(size=(300, DIM))


@pytest.mark.parametrize("detector_cls,kwargs", [
    (KSDetector, {"window": 30, "significance": 0.01}),
    (CusumDetector, {"threshold": 8.0}),
    (MomentDetector, {"window": 20, "z_threshold": 4.0}),
])
class TestDetectors:
    def test_detects_mean_shift(self, detector_cls, kwargs, reference, rng):
        detector = detector_cls(reference, **kwargs)
        shifted = rng.normal(4.0, 1.0, size=(150, DIM))
        assert detector.frames_to_detect(iter(shifted)) is not None

    def test_no_false_positive_on_null(self, detector_cls, kwargs, reference):
        detector = detector_cls(reference, **kwargs)
        null = np.random.default_rng(77).normal(size=(250, DIM))
        assert detector.frames_to_detect(iter(null)) is None

    def test_drift_frame_recorded(self, detector_cls, kwargs, reference, rng):
        detector = detector_cls(reference, **kwargs)
        for frame in rng.normal(4.0, 1.0, size=(150, DIM)):
            if detector.observe(frame):
                break
        assert detector.drift_detected
        assert detector.drift_frame is not None

    def test_limit_respected(self, detector_cls, kwargs, reference):
        detector = detector_cls(reference, **kwargs)
        null = np.random.default_rng(3).normal(size=(100, DIM))
        assert detector.frames_to_detect(iter(null), limit=5) is None


class TestKSSpecifics:
    def test_needs_full_window_before_testing(self, reference, rng):
        detector = KSDetector(reference, window=30)
        # even wildly shifted frames cannot fire before the window fills
        for i, frame in enumerate(rng.normal(10.0, 1.0, size=(29, DIM))):
            assert not detector.observe(frame), i

    @pytest.mark.parametrize("kwargs", [{"window": 2}, {"significance": 0.0}])
    def test_invalid_config(self, reference, kwargs):
        with pytest.raises(ConfigurationError):
            KSDetector(reference, **kwargs)


class TestCusumSpecifics:
    def test_slack_suppresses_small_drifts(self, reference, rng):
        tight = CusumDetector(reference, threshold=8.0, slack=2.0)
        slightly_shifted = rng.normal(0.4, 1.0, size=(200, DIM))
        assert tight.frames_to_detect(iter(slightly_shifted)) is None

    def test_invalid_threshold(self, reference):
        with pytest.raises(ConfigurationError):
            CusumDetector(reference, threshold=0.0)


class TestCommonValidation:
    def test_tiny_reference_rejected(self):
        with pytest.raises(EmptyReferenceError):
            MomentDetector(np.zeros((3, 2)))

    def test_embedder_is_applied(self, rng, reference):
        class Halver:
            def embed(self, frames):
                return np.asarray(frames)[:, :DIM]

        detector = MomentDetector(reference, embedder=Halver())
        # frames of double width are projected down before testing
        assert not detector.observe(rng.normal(size=2 * DIM))
