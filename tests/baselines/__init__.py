"""Tests for the statistical drift-detection baselines."""
