"""VAE: training, embeddings, Sigma_T sampling, augmentations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError, NotFittedError
from repro.nn.vae import VAE, VAEConfig


def small_config(**kwargs):
    defaults = dict(input_shape=(1, 8, 8), latent_dim=3,
                    architecture="dense", hidden=32, epochs=3,
                    batch_size=8, seed=0)
    defaults.update(kwargs)
    return VAEConfig(**defaults)


@pytest.fixture
def frames(rng):
    """Structured frames: a bright band whose position varies."""
    n = 80
    frames = np.zeros((n, 8, 8))
    rows = rng.integers(1, 7, size=n)
    for i, row in enumerate(rows):
        frames[i, row, :] = 0.9
        frames[i] += rng.uniform(0, 0.05, size=(8, 8))
    return np.clip(frames, 0, 1)


class TestTraining:
    def test_fit_reduces_reconstruction_loss(self, frames):
        vae = VAE(small_config(epochs=8))
        history = vae.fit(frames)
        assert history.reconstruction[-1] < history.reconstruction[0]
        assert vae.is_fitted

    def test_history_lengths_match_epochs(self, frames):
        vae = VAE(small_config(epochs=4))
        history = vae.fit(frames)
        assert len(history.total) == 4
        assert len(history.kl) == 4

    def test_fit_on_empty_rejected(self):
        vae = VAE(small_config())
        with pytest.raises(ConfigurationError):
            vae.fit(np.empty((0, 64)))


class TestEmbedding:
    def test_embed_shape(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        assert vae.embed(frames[:5]).shape == (5, 3)

    def test_sample_embed_adds_augmented_dims(self, frames):
        config = small_config(augment_recon=True, augment_profile=True,
                              profile_bins=4)
        vae = VAE(config)
        vae.fit(frames)
        out = vae.sample_embed(frames[:5])
        # latent 3 + recon 1 + profile 2*4
        assert out.shape == (5, 3 + 1 + 8)

    def test_sample_embed_without_augmentations(self, frames):
        vae = VAE(small_config(augment_recon=False, augment_profile=False))
        vae.fit(frames)
        assert vae.sample_embed(frames[:5]).shape == (5, 3)

    def test_sample_embed_is_stochastic(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        a = vae.sample_embed(frames[:3])
        b = vae.sample_embed(frames[:3])
        assert not np.allclose(a[:, :3], b[:, :3])

    def test_augmented_embed_is_deterministic(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        a = vae.augmented_embed(frames[:3])
        b = vae.augmented_embed(frames[:3])
        np.testing.assert_allclose(a, b)
        assert a.shape == vae.sample_embed(frames[:3]).shape

    def test_accepts_flat_and_image_layouts(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        flat = frames[:4].reshape(4, -1)
        assert vae.embed(flat).shape == (4, 3)

    def test_wrong_dim_rejected(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        with pytest.raises(DimensionMismatchError):
            vae.embed(np.zeros((2, 100)))


class TestSigmaSampling:
    def test_matches_sample_embed_dimensionality(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        sigma = vae.sample_latents(50, seed=1)
        assert sigma.shape[1] == vae.sample_embed(frames[:1]).shape[1]

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            VAE(small_config()).sample_latents(10)

    def test_seeded_sampling_reproducible(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        np.testing.assert_allclose(vae.sample_latents(20, seed=5),
                                   vae.sample_latents(20, seed=5))

    def test_null_pvalues_calibrated_via_inductive_split(self, frames, rng):
        """Sigma_T + sample_embed + the inductive split yield roughly
        uniform p-values for fresh frames from the same distribution --
        the property the whole drift pipeline rests on."""
        from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig

        vae = VAE(small_config(epochs=6))
        vae.fit(frames)
        sigma = vae.sample_latents(60, seed=2)
        inspector = DriftInspector(sigma, DriftInspectorConfig(seed=3),
                                   embedder=vae)
        # fresh frames from the same generator
        fresh = np.zeros((150, 8, 8))
        rows = rng.integers(1, 7, size=150)
        for i, row in enumerate(rows):
            fresh[i, row, :] = 0.9
            fresh[i] += rng.uniform(0, 0.05, size=(8, 8))
        pvals = [inspector.observe(f).p_value for f in np.clip(fresh, 0, 1)]
        assert 0.25 < float(np.mean(pvals)) < 0.75

    def test_oversampling_splits_disjoint_halves(self, frames):
        """When more samples than calibration frames are requested, the
        two halves of Sigma_T must come from disjoint frame subsets (no
        recon/profile twins across the halves)."""
        vae = VAE(small_config(calibration_fraction=0.3))
        vae.fit(frames)
        n_cal = vae.calibration_size
        sigma = vae.sample_latents(4 * n_cal, seed=7)
        half = sigma.shape[0] // 2
        # the recon coordinate (index latent_dim) identifies the source frame
        recon_a = set(np.round(sigma[:half, 3], 12))
        recon_b = set(np.round(sigma[half:, 3], 12))
        assert not recon_a & recon_b

    def test_invalid_sample_size_rejected(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        with pytest.raises(ConfigurationError):
            vae.sample_latents(0)


class TestGenerativeDirection:
    def test_decode_shape_and_range(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        out = vae.decode(np.zeros((2, 3)))
        assert out.shape == (2, 64)
        assert (out >= 0).all() and (out <= 1).all()

    def test_reconstruct_shape(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        assert vae.reconstruct(frames[:3]).shape == (3, 64)

    def test_decode_wrong_latent_dim_rejected(self, frames):
        vae = VAE(small_config())
        vae.fit(frames)
        with pytest.raises(DimensionMismatchError):
            vae.decode(np.zeros((1, 7)))


class TestConvArchitecture:
    def test_conv_vae_trains_and_embeds(self, rng):
        frames = rng.uniform(size=(24, 16, 16))
        config = VAEConfig(input_shape=(1, 16, 16), latent_dim=4,
                           architecture="conv", conv_channels=(4, 6, 8),
                           epochs=1, batch_size=8, seed=0)
        vae = VAE(config)
        vae.fit(frames)
        assert vae.embed(frames[:2]).shape == (2, 4)
        sigma = vae.sample_latents(10, seed=0)
        assert sigma.shape[0] == 10

    def test_conv_requires_divisible_dims(self):
        with pytest.raises(ConfigurationError):
            VAEConfig(input_shape=(1, 12, 12), architecture="conv")


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"latent_dim": 0}, {"architecture": "rnn"}, {"epochs": 0},
        {"kl_weight": -1.0}, {"calibration_fraction": 1.0},
        {"calibration_fraction": -0.1},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            small_config(**kwargs)
