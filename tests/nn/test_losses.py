"""Losses: values and analytic-vs-numerical gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.nn.losses import (
    binary_cross_entropy,
    gaussian_kl,
    mse,
    softmax,
    softmax_cross_entropy,
)

EPS = 1e-6


def numerical_grad(fn, x):
    grad = np.zeros_like(x)
    flat_x, flat_g = x.reshape(-1), grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + EPS
        up = fn()
        flat_x[i] = orig - EPS
        down = fn()
        flat_x[i] = orig
        flat_g[i] = (up - down) / (2 * EPS)
    return grad


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6))

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_logits_stable(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[100.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_loss_is_log_k(self):
        k = 5
        logits = np.zeros((2, k))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 3]))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        num = numerical_grad(
            lambda: softmax_cross_entropy(logits, labels)[0], logits)
        np.testing.assert_allclose(grad, num, atol=1e-6)

    def test_one_hot_labels_equivalent(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 3, 0])
        onehot = np.eye(4)[labels]
        loss_int, grad_int = softmax_cross_entropy(logits, labels)
        loss_oh, grad_oh = softmax_cross_entropy(logits, onehot)
        assert loss_int == pytest.approx(loss_oh)
        np.testing.assert_allclose(grad_int, grad_oh)

    def test_label_length_mismatch_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            softmax_cross_entropy(rng.normal(size=(3, 2)), np.array([0]))


class TestBinaryCrossEntropy:
    def test_perfect_reconstruction_near_zero(self):
        target = np.array([[0.0, 1.0, 0.0]])
        pred = np.array([[1e-9, 1 - 1e-9, 1e-9]])
        loss, _ = binary_cross_entropy(pred, target)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_numerical(self, rng):
        pred = rng.uniform(0.1, 0.9, size=(3, 5))
        target = rng.uniform(size=(3, 5))
        _, grad = binary_cross_entropy(pred, target)
        num = numerical_grad(
            lambda: binary_cross_entropy(pred, target)[0], pred)
        np.testing.assert_allclose(grad, num, atol=1e-4)

    def test_extreme_predictions_finite(self):
        loss, grad = binary_cross_entropy(np.array([[0.0, 1.0]]),
                                          np.array([[1.0, 0.0]]))
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            binary_cross_entropy(np.zeros((1, 2)), np.zeros((1, 3)))


class TestMSE:
    def test_value(self):
        loss, _ = mse(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert loss == pytest.approx(5.0)

    def test_gradient_matches_numerical(self, rng):
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        _, grad = mse(pred, target)
        num = numerical_grad(lambda: mse(pred, target)[0], pred)
        np.testing.assert_allclose(grad, num, atol=1e-5)


class TestGaussianKL:
    def test_standard_normal_has_zero_kl(self):
        mean = np.zeros((2, 3))
        logvar = np.zeros((2, 3))
        loss, dmean, dlogvar = gaussian_kl(mean, logvar)
        assert loss == pytest.approx(0.0)
        np.testing.assert_allclose(dmean, np.zeros_like(mean))
        np.testing.assert_allclose(dlogvar, np.zeros_like(logvar))

    def test_known_value(self):
        # KL(N(1, 1) || N(0, 1)) = 0.5 per dimension
        mean = np.array([[1.0]])
        logvar = np.array([[0.0]])
        loss, _, _ = gaussian_kl(mean, logvar)
        assert loss == pytest.approx(0.5)

    def test_gradients_match_numerical(self, rng):
        mean = rng.normal(size=(3, 4))
        logvar = rng.normal(size=(3, 4)) * 0.5
        _, dmean, dlogvar = gaussian_kl(mean, logvar)
        num_mean = numerical_grad(lambda: gaussian_kl(mean, logvar)[0], mean)
        num_logvar = numerical_grad(lambda: gaussian_kl(mean, logvar)[0],
                                    logvar)
        np.testing.assert_allclose(dmean, num_mean, atol=1e-5)
        np.testing.assert_allclose(dlogvar, num_logvar, atol=1e-5)

    def test_always_non_negative(self, rng):
        for _ in range(10):
            loss, _, _ = gaussian_kl(rng.normal(size=(2, 5)),
                                     rng.normal(size=(2, 5)))
            assert loss >= 0.0
