"""SoftmaxClassifier: learning, probabilities, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.classifier import ClassifierConfig, SoftmaxClassifier


def blob_data(rng, n_per_class=60, num_classes=3, dim=16):
    """Linearly separable blobs flattened as 'frames'."""
    xs, ys = [], []
    for label in range(num_classes):
        centre = np.zeros(dim)
        centre[label] = 3.0
        xs.append(rng.normal(centre, 0.5, size=(n_per_class, dim)))
        ys.append(np.full(n_per_class, label))
    return np.vstack(xs), np.concatenate(ys)


def make_classifier(**kwargs):
    defaults = dict(input_shape=(1, 4, 4), num_classes=3,
                    architecture="mlp", hidden=32, epochs=20, seed=0)
    defaults.update(kwargs)
    return SoftmaxClassifier(ClassifierConfig(**defaults))


class TestLearning:
    def test_learns_separable_blobs(self, rng):
        x, y = blob_data(rng)
        clf = make_classifier()
        clf.fit(x, y)
        assert clf.accuracy(x, y) > 0.95

    def test_generalises_to_fresh_samples(self, rng):
        x, y = blob_data(rng)
        clf = make_classifier()
        clf.fit(x, y)
        x_test, y_test = blob_data(np.random.default_rng(99))
        assert clf.accuracy(x_test, y_test) > 0.9

    def test_history_tracks_progress(self, rng):
        x, y = blob_data(rng)
        clf = make_classifier(epochs=10)
        clf.fit(x, y)
        assert len(clf.history.loss) == 10
        assert clf.history.loss[-1] < clf.history.loss[0]
        assert clf.history.accuracy[-1] >= clf.history.accuracy[0]

    def test_input_centering_is_applied_consistently(self, rng):
        """Shifting all inputs by a constant must not change accuracy
        (training and inference both subtract the training mean)."""
        x, y = blob_data(rng)
        clf = make_classifier()
        clf.fit(x + 10.0, y)
        assert clf.accuracy(x + 10.0, y) > 0.95


class TestPrediction:
    def test_predict_proba_rows_sum_to_one(self, rng):
        x, y = blob_data(rng)
        clf = make_classifier(epochs=3)
        clf.fit(x, y)
        probs = clf.predict_proba(x[:10])
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10))
        assert (probs >= 0).all()

    def test_predict_is_argmax_of_proba(self, rng):
        x, y = blob_data(rng)
        clf = make_classifier(epochs=3)
        clf.fit(x, y)
        np.testing.assert_array_equal(
            clf.predict(x[:10]), clf.predict_proba(x[:10]).argmax(axis=1))

    def test_single_frame_prediction(self, rng):
        x, y = blob_data(rng)
        clf = make_classifier(epochs=3)
        clf.fit(x, y)
        assert clf.predict(x[0]).shape == (1,)

    def test_use_before_fit_raises(self, rng):
        clf = make_classifier()
        with pytest.raises(NotFittedError):
            clf.predict(rng.normal(size=(1, 16)))


class TestConvClassifier:
    def test_conv_architecture_trains(self, rng):
        # clearly separated brightness classes
        dark = rng.uniform(0.0, 0.35, size=(25, 8, 8))
        bright = rng.uniform(0.65, 1.0, size=(25, 8, 8))
        frames = np.vstack([dark, bright])
        labels = np.array([0] * 25 + [1] * 25, dtype=np.int64)
        clf = SoftmaxClassifier(ClassifierConfig(
            input_shape=(1, 8, 8), num_classes=2, architecture="conv",
            hidden=16, epochs=10, seed=0))
        clf.fit(frames, labels)
        assert clf.accuracy(frames, labels) > 0.9


class TestValidation:
    def test_wrong_feature_count_rejected(self, rng):
        clf = make_classifier()
        with pytest.raises(ConfigurationError):
            clf.fit(rng.normal(size=(10, 99)), np.zeros(10, dtype=np.int64))

    def test_label_out_of_range_rejected(self, rng):
        clf = make_classifier(num_classes=2)
        with pytest.raises(ConfigurationError):
            clf.fit(rng.normal(size=(4, 16)), np.array([0, 1, 2, 0]))

    def test_label_length_mismatch_rejected(self, rng):
        clf = make_classifier()
        with pytest.raises(ConfigurationError):
            clf.fit(rng.normal(size=(4, 16)), np.zeros(3, dtype=np.int64))

    @pytest.mark.parametrize("kwargs", [
        {"num_classes": 1}, {"architecture": "transformer"}, {"epochs": 0}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_classifier(**kwargs)
