"""DeepEnsemble: mixture semantics, diversity, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.classifier import ClassifierConfig
from repro.nn.ensemble import DeepEnsemble


def base_config(**kwargs):
    defaults = dict(input_shape=(1, 4, 4), num_classes=2,
                    architecture="mlp", hidden=16, epochs=5, seed=0)
    defaults.update(kwargs)
    return ClassifierConfig(**defaults)


def binary_data(rng, n=80):
    x = rng.normal(size=(n, 16))
    y = (x[:, 0] > 0).astype(np.int64)
    return x, y


class TestEnsemble:
    def test_mixture_is_mean_of_members(self, rng):
        x, y = binary_data(rng)
        ensemble = DeepEnsemble(base_config(), size=3, seed=1)
        ensemble.fit(x, y)
        mixture = ensemble.predict_proba(x[:10])
        members = ensemble.member_proba(x[:10])
        np.testing.assert_allclose(mixture, members.mean(axis=0))

    def test_members_are_initialised_differently(self, rng):
        x, y = binary_data(rng)
        ensemble = DeepEnsemble(base_config(), size=3, seed=1)
        ensemble.fit(x, y)
        w0 = ensemble.members[0].net.layers[0].W
        w1 = ensemble.members[1].net.layers[0].W
        assert not np.allclose(w0, w1)

    def test_ensemble_learns(self, rng):
        x, y = binary_data(rng)
        ensemble = DeepEnsemble(base_config(epochs=40, hidden=32), size=3,
                                seed=1)
        ensemble.fit(x, y)
        assert (ensemble.predict(x) == y).mean() > 0.85

    def test_member_proba_shape(self, rng):
        x, y = binary_data(rng)
        ensemble = DeepEnsemble(base_config(), size=4, seed=1)
        ensemble.fit(x, y)
        assert ensemble.member_proba(x[:7]).shape == (4, 7, 2)

    def test_disagreement_non_negative_and_bounded(self, rng):
        x, y = binary_data(rng)
        ensemble = DeepEnsemble(base_config(epochs=2), size=3, seed=1)
        ensemble.fit(x, y)
        disagreement = ensemble.disagreement(x[:20])
        assert (disagreement >= 0).all()
        assert (disagreement <= 1).all()

    def test_use_before_fit_raises(self, rng):
        ensemble = DeepEnsemble(base_config(), size=2, seed=1)
        with pytest.raises(NotFittedError):
            ensemble.predict_proba(rng.normal(size=(1, 16)))

    def test_size_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            DeepEnsemble(base_config(), size=1)

    def test_size_property(self):
        assert DeepEnsemble(base_config(), size=5, seed=0).size == 5
