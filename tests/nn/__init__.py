"""Tests for :mod:`repro.nn` (VAE, classifier, serialization)."""
