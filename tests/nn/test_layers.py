"""Layers: shapes, analytic-vs-numerical gradients, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError, NotFittedError
from repro.nn.layers import (
    Conv2d,
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Sigmoid,
    Tanh,
    Upsample2x,
)

EPS = 1e-6


def numerical_input_grad(layer, x, grad_out):
    """Central-difference gradient of sum(out * grad_out) wrt x."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + EPS
        up = (layer.forward(x, training=False) * grad_out).sum()
        flat_x[i] = orig - EPS
        down = (layer.forward(x, training=False) * grad_out).sum()
        flat_x[i] = orig
        flat_g[i] = (up - down) / (2 * EPS)
    return grad


def numerical_param_grad(layer, param, x, grad_out):
    grad = np.zeros_like(param)
    flat_p = param.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_p.size):
        orig = flat_p[i]
        flat_p[i] = orig + EPS
        up = (layer.forward(x, training=False) * grad_out).sum()
        flat_p[i] = orig - EPS
        down = (layer.forward(x, training=False) * grad_out).sum()
        flat_p[i] = orig
        flat_g[i] = (up - down) / (2 * EPS)
    return grad


class TestDense:
    def test_forward_matches_matmul(self, rng):
        layer = Dense(3, 2, seed=0)
        x = rng.normal(size=(4, 3))
        np.testing.assert_allclose(layer.forward(x), x @ layer.W + layer.b)

    def test_backward_gradients_match_numerical(self, rng):
        layer = Dense(4, 3, seed=0)
        x = rng.normal(size=(5, 4))
        grad_out = rng.normal(size=(5, 3))
        layer.forward(x)
        dx = layer.backward(grad_out)
        np.testing.assert_allclose(
            dx, numerical_input_grad(layer, x, grad_out), atol=1e-5)
        np.testing.assert_allclose(
            layer.dW, numerical_param_grad(layer, layer.W, x, grad_out),
            atol=1e-5)
        np.testing.assert_allclose(
            layer.db, numerical_param_grad(layer, layer.b, x, grad_out),
            atol=1e-5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(NotFittedError):
            Dense(2, 2, seed=0).backward(np.zeros((1, 2)))

    def test_wrong_input_dim_rejected(self, rng):
        layer = Dense(3, 2, seed=0)
        with pytest.raises(DimensionMismatchError):
            layer.forward(rng.normal(size=(4, 5)))

    def test_glorot_init_supported(self):
        layer = Dense(3, 2, seed=0, init="glorot")
        assert np.abs(layer.W).max() <= np.sqrt(6 / 5) + 1e-12

    def test_unknown_init_rejected(self):
        with pytest.raises(ConfigurationError):
            Dense(3, 2, init="bogus")


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(2, 4, 3, stride=2, padding=1, seed=0)
        out = layer.forward(rng.normal(size=(3, 2, 8, 8)))
        assert out.shape == (3, 4, 4, 4)

    def test_matches_direct_convolution(self, rng):
        layer = Conv2d(1, 1, 3, stride=1, padding=0, seed=0)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer.forward(x)
        # direct sliding-window computation
        expected = np.zeros((3, 3))
        kernel = layer.W[0, 0]
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i:i + 3, j:j + 3] * kernel).sum()
        np.testing.assert_allclose(out[0, 0], expected + layer.b[0],
                                   atol=1e-10)

    def test_backward_gradients_match_numerical(self, rng):
        layer = Conv2d(2, 3, 3, stride=2, padding=1, seed=0)
        x = rng.normal(size=(2, 2, 6, 6))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        dx = layer.backward(grad_out)
        np.testing.assert_allclose(
            dx, numerical_input_grad(layer, x, grad_out), atol=1e-4)
        np.testing.assert_allclose(
            layer.dW, numerical_param_grad(layer, layer.W, x, grad_out),
            atol=1e-4)
        np.testing.assert_allclose(
            layer.db, numerical_param_grad(layer, layer.b, x, grad_out),
            atol=1e-4)

    def test_wrong_channels_rejected(self, rng):
        layer = Conv2d(2, 4, 3, seed=0)
        with pytest.raises(DimensionMismatchError):
            layer.forward(rng.normal(size=(1, 3, 8, 8)))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Conv2d(0, 4, 3)
        with pytest.raises(ConfigurationError):
            Conv2d(1, 4, 3, padding=-1)


@pytest.mark.parametrize("activation_cls", [ReLU, LeakyReLU, Sigmoid, Tanh])
class TestActivations:
    def test_gradient_matches_numerical(self, activation_cls, rng):
        layer = activation_cls()
        x = rng.normal(size=(4, 6)) + 0.1  # avoid ReLU kink at exactly 0
        layer.forward(x)
        grad_out = rng.normal(size=(4, 6))
        dx = layer.backward(grad_out)
        np.testing.assert_allclose(
            dx, numerical_input_grad(layer, x, grad_out), atol=1e-5)

    def test_backward_before_forward_raises(self, activation_cls):
        with pytest.raises(NotFittedError):
            activation_cls().backward(np.zeros((1, 2)))


class TestActivationValues:
    def test_relu_clamps_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([[-2.0, 3.0]]))
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_sigmoid_range_and_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]], atol=1e-12)
        assert np.isfinite(out).all()

    def test_tanh_is_odd(self, rng):
        x = rng.normal(size=(3, 3))
        np.testing.assert_allclose(Tanh().forward(x),
                                   -Tanh().forward(-x))


class TestShapeLayers:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_reshape_roundtrip(self, rng):
        layer = Reshape((3, 2, 2))
        x = rng.normal(size=(5, 12))
        out = layer.forward(x)
        assert out.shape == (5, 3, 2, 2)
        assert layer.backward(out).shape == x.shape

    def test_upsample_forward_values(self):
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        out = Upsample2x().forward(x)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out[0, 0], [[0.0, 0.0, 1.0, 1.0],
                                               [0.0, 0.0, 1.0, 1.0],
                                               [2.0, 2.0, 3.0, 3.0],
                                               [2.0, 2.0, 3.0, 3.0]])

    def test_upsample_backward_sums_blocks(self, rng):
        layer = Upsample2x()
        x = rng.normal(size=(1, 2, 3, 3))
        out = layer.forward(x)
        grad = np.ones_like(out)
        back = layer.backward(grad)
        np.testing.assert_allclose(back, np.full_like(x, 4.0))

    def test_upsample_gradient_matches_numerical(self, rng):
        layer = Upsample2x()
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        dx = layer.backward(grad_out)
        np.testing.assert_allclose(
            dx, numerical_input_grad(layer, x, grad_out), atol=1e-5)
