"""Optimizers: update rules and convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.optim import SGD, Adam


def quadratic_grad(param, target):
    return 2.0 * (param - target)


class TestSGD:
    def test_plain_step(self):
        param = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        SGD(lr=0.1).step([(param, grad)])
        np.testing.assert_allclose(param, [0.95, 2.05])

    def test_momentum_accumulates(self):
        param = np.zeros(1)
        optimizer = SGD(lr=0.1, momentum=0.9)
        grad = np.array([1.0])
        optimizer.step([(param, grad)])
        first = param.copy()
        optimizer.step([(param, grad)])
        second_step = param - first
        # second step is larger because of accumulated velocity
        assert abs(second_step[0]) > abs(first[0])

    def test_converges_on_quadratic(self):
        param = np.array([10.0, -10.0])
        target = np.array([3.0, 4.0])
        optimizer = SGD(lr=0.1)
        for _ in range(200):
            optimizer.step([(param, quadratic_grad(param, target))])
        np.testing.assert_allclose(param, target, atol=1e-6)

    def test_updates_in_place(self):
        param = np.zeros(2)
        alias = param
        SGD(lr=1.0).step([(param, np.ones(2))])
        assert alias is param
        np.testing.assert_allclose(alias, [-1.0, -1.0])

    @pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"lr": -1.0},
                                        {"momentum": 1.0},
                                        {"momentum": -0.1}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            SGD(**{"lr": 0.1, **kwargs})


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, Adam's first step magnitude ~= lr."""
        param = np.array([0.0])
        Adam(lr=0.01).step([(param, np.array([5.0]))])
        assert param[0] == pytest.approx(-0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        param = np.array([10.0, -10.0])
        target = np.array([3.0, 4.0])
        optimizer = Adam(lr=0.5)
        for _ in range(500):
            optimizer.step([(param, quadratic_grad(param, target))])
        np.testing.assert_allclose(param, target, atol=1e-3)

    def test_per_parameter_state_is_independent(self):
        a, b = np.zeros(1), np.zeros(1)
        optimizer = Adam(lr=0.1)
        optimizer.step([(a, np.array([1.0]))])
        optimizer.step([(a, np.array([1.0])), (b, np.array([1.0]))])
        # b's first step has fresh state => step size = lr
        assert b[0] == pytest.approx(-0.1, rel=1e-3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam().step([(np.zeros(2), np.zeros(3))])

    @pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"beta1": 1.0},
                                        {"beta2": -0.1}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            Adam(**kwargs)
