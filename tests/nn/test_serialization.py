"""npz serialization round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Sequential
from repro.nn.serialization import load_network, load_state, save_network, save_state


class TestStateIO:
    def test_roundtrip(self, tmp_path, rng):
        state = {"a": rng.normal(size=(3, 2)), "b": np.arange(4.0)}
        path = str(tmp_path / "weights.npz")
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"], state["a"])

    def test_empty_state_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_state(str(tmp_path / "x.npz"), {})

    def test_creates_missing_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "w.npz")
        save_state(path, {"a": np.ones(2)})
        assert load_state(path)["a"].shape == (2,)


class TestNetworkIO:
    def test_network_roundtrip_preserves_outputs(self, tmp_path, rng):
        net = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 2, seed=1)])
        path = str(tmp_path / "net.npz")
        save_network(path, net)
        fresh = Sequential([Dense(4, 8, seed=7), ReLU(), Dense(8, 2, seed=8)])
        load_network(path, fresh)
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(net.forward(x, training=False),
                                   fresh.forward(x, training=False))

    def test_architecture_mismatch_rejected(self, tmp_path):
        net = Sequential([Dense(4, 8, seed=0)])
        path = str(tmp_path / "net.npz")
        save_network(path, net)
        wrong = Sequential([Dense(4, 9, seed=0)])
        with pytest.raises(ConfigurationError):
            load_network(path, wrong)
