"""npz serialization round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Sequential
from repro.nn.serialization import (
    load_manifest_archive,
    load_network,
    load_state,
    save_manifest_archive,
    save_network,
    save_state,
)


class TestStateIO:
    def test_roundtrip(self, tmp_path, rng):
        state = {"a": rng.normal(size=(3, 2)), "b": np.arange(4.0)}
        path = str(tmp_path / "weights.npz")
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"], state["a"])

    def test_empty_state_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_state(str(tmp_path / "x.npz"), {})

    def test_creates_missing_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "w.npz")
        save_state(path, {"a": np.ones(2)})
        assert load_state(path)["a"].shape == (2,)


class TestNetworkIO:
    def test_network_roundtrip_preserves_outputs(self, tmp_path, rng):
        net = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 2, seed=1)])
        path = str(tmp_path / "net.npz")
        save_network(path, net)
        fresh = Sequential([Dense(4, 8, seed=7), ReLU(), Dense(8, 2, seed=8)])
        load_network(path, fresh)
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(net.forward(x, training=False),
                                   fresh.forward(x, training=False))

    def test_architecture_mismatch_rejected(self, tmp_path):
        net = Sequential([Dense(4, 8, seed=0)])
        path = str(tmp_path / "net.npz")
        save_network(path, net)
        wrong = Sequential([Dense(4, 9, seed=0)])
        with pytest.raises(ConfigurationError):
            load_network(path, wrong)


class TestErrorPaths:
    def test_missing_key_rejected(self, tmp_path):
        net = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 2, seed=1)])
        state = net.state_dict()
        state.pop(sorted(state)[0])
        with pytest.raises(ConfigurationError, match="missing"):
            net.load_state_dict(state)

    def test_extra_key_rejected(self, tmp_path):
        net = Sequential([Dense(4, 8, seed=0)])
        state = net.state_dict()
        state["9.stowaway"] = np.zeros(3)
        with pytest.raises(ConfigurationError, match="unexpected"):
            net.load_state_dict(state)

    def test_missing_file_raises_library_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no state archive"):
            load_state(str(tmp_path / "absent.npz"))

    def test_corrupted_npz_raises_library_error(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ConfigurationError, match="corrupted"):
            load_state(str(path))

    def test_truncated_npz_raises_library_error(self, tmp_path, rng):
        path = tmp_path / "trunc.npz"
        save_state(str(path), {"a": rng.normal(size=(50, 50))})
        path.write_bytes(path.read_bytes()[:60])
        with pytest.raises(ConfigurationError, match="corrupted"):
            load_state(str(path))


class TestManifestArchive:
    def test_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "ckpt.npz")
        manifest = {"version": 1, "mode": "monitor", "nested": {"a": [1, 2]}}
        arrays = {"buffer": rng.normal(size=(3, 4))}
        save_manifest_archive(path, manifest, arrays)
        loaded_manifest, loaded_arrays = load_manifest_archive(path)
        assert loaded_manifest == manifest
        np.testing.assert_allclose(loaded_arrays["buffer"], arrays["buffer"])

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="reserved"):
            save_manifest_archive(str(tmp_path / "x.npz"), {},
                                  {"__manifest_json__": np.zeros(1)})

    def test_plain_state_archive_rejected(self, tmp_path):
        path = str(tmp_path / "w.npz")
        save_state(path, {"a": np.ones(2)})
        with pytest.raises(CheckpointError, match="manifest"):
            load_manifest_archive(path)
