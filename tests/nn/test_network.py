"""Sequential container: backprop chain, serialization hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, ReLU, Tanh
from repro.nn.network import Sequential

EPS = 1e-6


def make_net(seed=0):
    return Sequential([Dense(4, 6, seed=seed), Tanh(),
                       Dense(6, 3, seed=seed + 1)])


class TestForwardBackward:
    def test_forward_shape(self, rng):
        net = make_net()
        assert net.forward(rng.normal(size=(5, 4))).shape == (5, 3)

    def test_end_to_end_gradient_matches_numerical(self, rng):
        net = make_net()
        x = rng.normal(size=(3, 4))
        grad_out = rng.normal(size=(3, 3))
        net.forward(x)
        dx = net.backward(grad_out)

        def objective():
            return (net.forward(x, training=False) * grad_out).sum()

        num = np.zeros_like(x)
        flat_x, flat_g = x.reshape(-1), num.reshape(-1)
        for i in range(flat_x.size):
            orig = flat_x[i]
            flat_x[i] = orig + EPS
            up = objective()
            flat_x[i] = orig - EPS
            down = objective()
            flat_x[i] = orig
            flat_g[i] = (up - down) / (2 * EPS)
        np.testing.assert_allclose(dx, num, atol=1e-5)

    def test_param_grads_pairs_every_parameter(self):
        net = make_net()
        x = np.ones((2, 4))
        net.forward(x)
        net.backward(np.ones((2, 3)))
        pairs = net.param_grads()
        assert len(pairs) == 4  # two Dense layers x (W, b)
        for param, grad in pairs:
            assert param.shape == grad.shape

    def test_num_parameters(self):
        net = make_net()
        assert net.num_parameters() == (4 * 6 + 6) + (6 * 3 + 3)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([])


class TestStateDict:
    def test_roundtrip_restores_outputs(self, rng):
        net = make_net(seed=0)
        other = make_net(seed=99)
        x = rng.normal(size=(4, 4))
        assert not np.allclose(net.forward(x, training=False),
                               other.forward(x, training=False))
        other.load_state_dict(net.state_dict())
        np.testing.assert_allclose(net.forward(x, training=False),
                                   other.forward(x, training=False))

    def test_state_dict_is_a_copy(self):
        net = make_net()
        state = net.state_dict()
        state["0.W"][:] = 0.0
        assert not np.allclose(net.layers[0].W, 0.0)

    def test_missing_key_rejected(self):
        net = make_net()
        state = net.state_dict()
        del state["0.W"]
        with pytest.raises(ConfigurationError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = make_net()
        state = net.state_dict()
        state["0.W"] = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            net.load_state_dict(state)


class TestTrainingIntegration:
    def test_learns_linear_map(self, rng):
        """A small net + Adam fits a noiseless linear function."""
        from repro.nn.losses import mse
        from repro.nn.optim import Adam

        true_w = rng.normal(size=(4, 2))
        x = rng.normal(size=(200, 4))
        y = x @ true_w
        net = Sequential([Dense(4, 16, seed=1), ReLU(),
                          Dense(16, 2, seed=2)])
        optimizer = Adam(lr=1e-2)
        for _ in range(300):
            pred = net.forward(x)
            loss, grad = mse(pred, y)
            net.backward(grad)
            optimizer.step(net.param_grads())
        final_loss, _ = mse(net.forward(x, training=False), y)
        assert final_loss < 0.05
