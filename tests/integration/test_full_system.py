"""Full-system integration tests on the synthetic BDD stream.

These exercise the real stack end to end: rendered frames -> trained VAEs /
classifiers -> Drift Inspector -> MSBI / MSBO -> deployed model, including
the trainNewModel path when no provisioned model covers a segment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import ModelRegistry
from repro.core.selection.trainer import ModelTrainer, TrainerConfig
from repro.queries.count import CountQuery


@pytest.fixture(scope="module")
def pipeline_parts(bdd_context, bdd_registry):
    return bdd_context, bdd_registry


def build_pipeline(context, registry, kind):
    window = 10
    if kind == "msbo":
        selector = MSBO(registry, MSBOConfig(window_size=window,
                                             seed=context.config.seed))
    else:
        selector = MSBI(registry, MSBIConfig(window_size=window,
                                             seed=context.config.seed))
    return DriftAwareAnalytics(
        registry, context.dataset.segment_names[0], selector,
        annotator=context.annotator,
        config=PipelineConfig(
            selection_window=window,
            drift_inspector=DriftInspectorConfig(seed=context.config.seed)))


@pytest.mark.parametrize("kind", ["msbi", "msbo"])
class TestDriftAwareOnRealStream:
    def test_detects_and_recovers_from_every_drift(self, pipeline_parts, kind):
        context, registry = pipeline_parts
        pipeline = build_pipeline(context, registry, kind)
        result = pipeline.process(context.stream)
        assert len(result.records) == len(context.stream)
        # every ground-truth drift leads to the right model being deployed;
        # the r = 0.5 test has a false-alarm budget, so a spurious
        # re-selection of the *current* model may additionally appear
        selected = [d.selected_model for d in result.detections]
        required = iter(["night", "rain", "snow"])
        needed = next(required)
        for name in selected:
            if name == needed:
                needed = next(required, None)
        assert needed is None, f"missing recoveries in {selected}"
        truths = len(context.dataset.drift_frames)
        assert truths <= len(result.detections) <= truths + 1

    def test_detection_delays_are_small(self, pipeline_parts, kind):
        context, registry = pipeline_parts
        pipeline = build_pipeline(context, registry, kind)
        result = pipeline.process(context.stream)
        # each true drift's model swap lands within 40 frames (the window
        # allows for a false alarm's cooldown right before a real drift)
        swaps = {d.selected_model: d.frame_index for d in result.detections}
        for truth, segment in zip(context.dataset.drift_frames,
                                  ["night", "rain", "snow"]):
            assert segment in swaps, f"{segment} never deployed"
            assert -1 <= swaps[segment] - truth <= 40

    def test_beats_static_single_model(self, pipeline_parts, kind):
        """The drift-aware pipeline must beat deploying the day model for
        the whole stream -- the paper's core value proposition."""
        context, registry = pipeline_parts
        pipeline = build_pipeline(context, registry, kind)
        result = pipeline.process(context.stream)
        query = CountQuery(context.dataset.num_count_classes,
                           context.dataset.count_bucket_width)
        adaptive = query.accuracy(context.stream, result.predictions)
        day_model = registry.get("day").model
        static_preds = day_model.predict(
            np.stack([f.pixels for f in context.stream]))
        static = query.accuracy(context.stream, static_preds)
        assert adaptive > static


class TestNovelDistributionTraining:
    def test_unprovisioned_segment_triggers_training(self, bdd_context):
        """Provision only day/night; the rain segment must come out of
        trainNewModel with a usable bundle."""
        context = bdd_context
        full = context.registry()
        partial = ModelRegistry([full.get("day"), full.get("night")])
        trainer = ModelTrainer(
            vae_factory=context.make_vae,
            classifier_factory=context.make_classifier,
            annotator=context.annotator,
            config=TrainerConfig(
                frames_to_collect=60,
                sigma_size=context.config.sigma_size,
                seed=context.config.seed))
        selector = MSBI(partial, MSBIConfig(window_size=10,
                                            seed=context.config.seed))
        pipeline = DriftAwareAnalytics(
            partial, "day", selector, annotator=context.annotator,
            trainer=trainer,
            config=PipelineConfig(
                selection_window=10, training_budget=60,
                drift_inspector=DriftInspectorConfig(
                    seed=context.config.seed)))
        # day -> night -> rain; stop before snow to keep the test fast
        frames = [f for f in context.stream
                  if f.segment in ("day", "night", "rain")]
        result = pipeline.process(frames)
        novel = [d for d in result.detections if d.novel]
        assert novel, "rain should be flagged as a novel distribution"
        new_name = novel[0].selected_model
        assert new_name.startswith("novel_")
        bundle = partial.get(new_name)
        assert bundle.vae is not None
        assert bundle.model is not None
        # the new bundle's model actually answers count queries
        preds = bundle.model.predict(
            np.stack([f.pixels for f in frames[-5:]]))
        assert preds.shape == (5,)
