"""End-to-end integration tests for the drift-aware pipeline."""
