"""Golden regression snapshots for end-to-end numeric behaviour.

Each test runs a fully seeded scenario and compares its observable output
-- detections, per-model invocation counts, predictions, drift-inspector
statistics, Brier scores -- against a committed JSON snapshot, exactly.
Property tests prove batched == sequential; these snapshots pin the
*absolute* numbers so a silent change to any kernel (scoring, p-values,
martingale, selection) fails loudly even when it stays self-consistent.

Regenerate after intentional changes with ``pytest --update-golden`` and
review the resulting diff like any other code change.
"""

from __future__ import annotations

import numpy as np

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.selection.scoring import (
    brier_decomposition,
    brier_score,
    negative_log_likelihood,
)

from tests.parallel.conftest import DIM, gaussian_stream, make_pipeline


def test_pipeline_drift_run_snapshot(golden):
    """The canonical 3-segment drift run, processed with the batched path
    (bit-identical to sequential by the equivalence suite)."""
    stream = gaussian_stream(31, [(0.0, 150), (6.0, 150), (0.0, 150)])
    result = make_pipeline().process_batched(stream, batch_size=64)
    records = [[r.frame_index, r.prediction, r.model] for r in result.records]
    prediction_counts = {}
    for _, prediction, model in records:
        key = f"{model}:{prediction}"
        prediction_counts[key] = prediction_counts.get(key, 0) + 1
    golden("pipeline_drift_run", {
        "detections": [
            {"frame_index": d.frame_index,
             "previous_model": d.previous_model,
             "selected_model": d.selected_model,
             "novel": d.novel,
             "selection_frames": d.selection_frames}
            for d in result.detections],
        "invocations": {
            "frames": result.invocations.frames,
            "total": result.invocations.total_invocations,
            "per_model": result.invocations.per_model(),
            "per_frame_mean": result.invocations.invocations_per_frame,
        },
        "prediction_counts": prediction_counts,
        "records_head": records[:10],
        "records_tail": records[-10:],
        "simulated_ms": result.simulated_ms,
        "faults": result.faults.as_dict(),
    })


def test_drift_inspector_statistics_snapshot(golden):
    """Nonconformity / p-value / martingale trajectories around a change
    point, for the default additive machine and the multiplicative one."""
    rng = np.random.default_rng(17)
    reference = rng.normal(0.0, 1.0, size=(100, DIM))
    frames = np.vstack([rng.normal(0.0, 1.0, size=(40, DIM)),
                        rng.normal(4.0, 1.0, size=(10, DIM))])
    payload = {}
    for name, config in [
            ("additive", DriftInspectorConfig(seed=23)),
            ("multiplicative", DriftInspectorConfig(
                seed=23, martingale="multiplicative", significance=0.02)),
    ]:
        inspector = DriftInspector(reference, config=config)
        decisions = inspector.observe_batch(frames)
        tail = decisions[-12:]
        payload[name] = {
            "drift_frame": inspector.drift_frame,
            "tail": [
                {"frame": d.frame_index,
                 "nonconformity": d.nonconformity,
                 "p_value": d.p_value,
                 "martingale": d.martingale,
                 "drift": d.drift}
                for d in tail],
        }
    golden("drift_inspector_statistics", payload)


def test_brier_scoring_snapshot(golden):
    """Brier score, NLL and the reliability decomposition on a seeded
    synthetic prediction set (the Figure 5 scoring kernels)."""
    rng = np.random.default_rng(29)
    logits = rng.normal(0.0, 2.0, size=(200, 4))
    probs = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs /= probs.sum(axis=1, keepdims=True)
    labels = rng.integers(0, 4, size=200)
    golden("brier_scoring", {
        "brier_normalized": brier_score(probs, labels, normalize=True),
        "brier_classic": brier_score(probs, labels, normalize=False),
        "nll": negative_log_likelihood(probs, labels),
        "decomposition": brier_decomposition(probs, labels, bins=10),
    })
