"""CascadeMonitor and EscalationPolicy contracts.

The contracts pinned here:

- the escalation policy is a deterministic threshold + window +
  hysteresis-cooldown machine and a bit-exact Snapshotable participant;
- the cascade satisfies ``DriftMonitor`` over any two tiers, charges the
  simulated clock per tier, and defers the drift verdict to tier 1;
- ``observe_batch`` / ``supports_rollback`` are advertised exactly when
  *both* tiers qualify -- a cascade over ODIN falls back to the kernel's
  per-frame path and still reproduces batched results bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cascade import (
    TIER0_OPS,
    TIER1_OPS,
    CascadeDecision,
    CascadeMonitor,
    EscalationPolicy,
)
from repro.detectors import zoo
from repro.detectors.tier0 import PixelStatMonitor
from repro.errors import CascadeError, CheckpointError, ConfigurationError
from repro.obs.recorder import Recorder, logical_events
from repro.runtime import MonitorStage
from repro.sim.clock import SimulatedClock
from repro.sim.costs import PAPER_COSTS
from repro.testing import (
    gaussian_stream,
    make_pipeline,
    make_registry,
    result_sig,
)

DRIFT_SEGMENTS = [(0.0, 120), (6.0, 120)]


@pytest.fixture(scope="module")
def bundle():
    return make_registry().get("low")


def make_cascade(bundle, tier1="inspector", **policy_knobs):
    policy = EscalationPolicy(**policy_knobs) if policy_knobs else None
    return CascadeMonitor(PixelStatMonitor(bundle.sigma),
                          zoo.build(tier1, bundle), policy=policy)


class TestEscalationPolicyMachine:
    def test_knobs_validated(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            EscalationPolicy(threshold=0.0)
        with pytest.raises(ConfigurationError, match="window"):
            EscalationPolicy(window=0)
        with pytest.raises(ConfigurationError, match="cooldown"):
            EscalationPolicy(cooldown=-1)

    def test_below_threshold_never_escalates(self):
        policy = EscalationPolicy(threshold=3.5)
        assert not any(policy.decide(3.4) for _ in range(100))
        assert not policy.escalated

    def test_breach_escalates_itself_plus_window(self):
        policy = EscalationPolicy(threshold=3.5, window=3, cooldown=2)
        decisions = [policy.decide(s) for s in
                     [5.0, 0.0, 0.0, 0.0, 0.0, 0.0]]
        # the breaching frame and the next `window` frames go to tier 1
        assert decisions == [True, True, True, True, False, False]

    def test_breach_inside_window_refreshes_it(self):
        policy = EscalationPolicy(threshold=3.5, window=2, cooldown=0)
        sticky = [policy.decide(s) for s in [5.0, 0.0, 5.0, 0.0, 0.0, 0.0]]
        # the frame-2 re-breach restarts the window: escalation runs to
        # frame 4 instead of draining at frame 2
        assert sticky == [True, True, True, True, True, False]

    def test_cooldown_ignores_breaches_then_rearms(self):
        policy = EscalationPolicy(threshold=3.5, window=1, cooldown=3)
        assert [policy.decide(s) for s in
                [5.0, 0.0, 5.0, 5.0, 5.0, 5.0]] == \
            [True, True, False, False, False, True]

    def test_zero_cooldown_rearms_immediately(self):
        policy = EscalationPolicy(threshold=3.5, window=1, cooldown=0)
        assert [policy.decide(s) for s in [5.0, 0.0, 5.0]] == \
            [True, True, True]

    def test_state_roundtrip_is_bit_exact(self):
        suspicions = [5.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 5.0, 0.0]
        reference = EscalationPolicy(window=2, cooldown=2)
        expected = [reference.decide(s) for s in suspicions]
        driven = EscalationPolicy(window=2, cooldown=2)
        head = [driven.decide(s) for s in suspicions[:4]]
        restored = EscalationPolicy(window=2, cooldown=2)
        restored.load_state_dict(driven.state_dict())
        tail = [restored.decide(s) for s in suspicions[4:]]
        assert head + tail == expected
        assert restored.state_dict() == reference.state_dict()

    def test_reset_clears_window_and_cooldown(self):
        policy = EscalationPolicy(window=4, cooldown=4)
        policy.decide(99.0)
        policy.reset()
        assert policy.state_dict() == {"window_left": 0, "cooldown_left": 0}
        assert not policy.escalated


class TestCascadeMonitor:
    def test_tiers_must_be_drift_monitors(self, bundle):
        inspector = zoo.build("inspector", bundle)
        with pytest.raises(CascadeError, match="tier0"):
            CascadeMonitor(object(), inspector)
        with pytest.raises(CascadeError, match="tier1"):
            CascadeMonitor(PixelStatMonitor(bundle.sigma), object())

    def test_tier1_is_the_drift_authority(self, bundle):
        cascade = make_cascade(bundle)
        decisions = [cascade.observe(frame) for frame in
                     gaussian_stream(0, DRIFT_SEGMENTS)]
        assert all(isinstance(d, CascadeDecision) for d in decisions)
        assert cascade.drift_detected
        assert cascade.drift_frame >= 120
        # tier 0 alone never latched: the verdict came from tier 1
        assert decisions[cascade.drift_frame].escalated

    def test_stationary_stream_escalates_rarely(self, bundle):
        cascade = make_cascade(bundle)
        frames = gaussian_stream(0, [(0.0, 240)])
        for frame in frames:
            cascade.observe(frame)
        assert not cascade.drift_detected
        assert cascade.frames_seen == 240
        assert cascade.frames_escalated <= 0.2 * len(frames)
        assert cascade.escalations <= 3

    def test_clock_charged_per_tier(self, bundle):
        clock = SimulatedClock(PAPER_COSTS)
        cascade = CascadeMonitor(PixelStatMonitor(bundle.sigma),
                                 zoo.build("inspector", bundle),
                                 clock=clock)
        tier0_ms = sum(PAPER_COSTS.cost(op) for op in TIER0_OPS)
        tier1_ms = sum(PAPER_COSTS.cost(op) for op in TIER1_OPS)
        quiet = gaussian_stream(0, [(0.0, 1)])[0]
        loud = gaussian_stream(0, [(30.0, 1)])[0]
        cascade.observe(quiet)
        assert clock.elapsed_ms == pytest.approx(tier0_ms)
        decision = cascade.observe(loud)
        assert decision.escalated
        assert clock.elapsed_ms == pytest.approx(2 * tier0_ms + tier1_ms)

    def test_recorder_carries_escalation_accounting(self, bundle):
        recorder = Recorder()
        cascade = CascadeMonitor(PixelStatMonitor(bundle.sigma),
                                 zoo.build("inspector", bundle),
                                 recorder=recorder)
        for frame in gaussian_stream(0, DRIFT_SEGMENTS):
            cascade.observe(frame)
        assert recorder.counter("cascade.frames").value == 240
        assert recorder.counter("cascade.escalated_frames").value == \
            cascade.frames_escalated
        openings = [event for event in logical_events(recorder.events)
                    if event["kind"] == "cascade.escalated"]
        assert len(openings) == cascade.escalations >= 1
        assert all(event["suspicion"] >= 0.0 for event in openings)

    def test_bool_only_tier0_degrades_to_flag_escalation(self, bundle):
        class FlagScreen:
            """DriftMonitor speaking plain bools, no suspicion."""

            def __init__(self):
                self._seen = 0
                self._drift_frame = None

            @property
            def drift_detected(self):
                return self._drift_frame is not None

            @property
            def drift_frame(self):
                return self._drift_frame

            def observe(self, frame):
                flagged = float(np.mean(frame)) > 3.0
                if flagged and self._drift_frame is None:
                    self._drift_frame = self._seen
                self._seen += 1
                return flagged

            def reset(self):
                self._seen = 0
                self._drift_frame = None

        cascade = CascadeMonitor(FlagScreen(),
                                 zoo.build("inspector", bundle))
        quiet_frame = gaussian_stream(0, [(0.0, 1)])[0]
        quiet = cascade.observe(quiet_frame)
        assert (quiet.escalated, quiet.suspicion) == (False, 0.0)
        loud = cascade.observe(gaussian_stream(0, [(30.0, 1)])[0])
        # a raised flag counts as exactly threshold-level suspicion
        assert loud.escalated
        assert loud.suspicion == cascade.policy.threshold
        # no peek either: the serving screen is simply absent
        assert cascade.peek_suspicion(quiet_frame) is None
        # and a bool-only tier cannot be checkpointed
        with pytest.raises(CheckpointError, match="tier0"):
            cascade.state_dict()

    def test_peek_suspicion_delegates_to_tier0(self, bundle):
        cascade = make_cascade(bundle)
        frame = gaussian_stream(3, [(4.0, 1)])[0]
        assert cascade.peek_suspicion(frame) == \
            cascade.tier0.peek_suspicion(frame)

    def test_reset_rearms_both_tiers(self, bundle):
        cascade = make_cascade(bundle)
        for frame in gaussian_stream(0, DRIFT_SEGMENTS):
            cascade.observe(frame)
        assert cascade.drift_detected
        cascade.reset()
        assert not cascade.drift_detected
        assert cascade.frames_seen == 0
        assert cascade.frames_escalated == 0
        assert cascade.escalations == 0
        assert not cascade.tier0.drift_detected
        assert not cascade.tier1.drift_detected
        assert not cascade.policy.escalated

    @pytest.mark.parametrize("split", [40, 130])
    def test_state_roundtrip_is_bit_exact(self, bundle, split):
        frames = gaussian_stream(0, DRIFT_SEGMENTS)
        reference = make_cascade(bundle)
        expected = [reference.observe(frame) for frame in frames]

        driven = make_cascade(bundle)
        head = [driven.observe(frame) for frame in frames[:split]]
        restored = make_cascade(bundle)
        restored.load_state_dict(driven.state_dict())
        tail = [restored.observe(frame) for frame in frames[split:]]
        assert head + tail == expected
        assert restored.state_dict() == reference.state_dict()


class TestRollbackAdvertisement:
    def test_qualifying_tiers_bind_observe_batch(self, bundle):
        cascade = make_cascade(bundle)
        assert callable(cascade.observe_batch)
        assert MonitorStage(cascade).supports_rollback
        assert zoo.get_spec("cascade-di").rollback

    def test_batched_observation_is_bit_identical(self, bundle):
        frames = gaussian_stream(0, DRIFT_SEGMENTS)
        sequential = make_cascade(bundle)
        expected = [sequential.observe(frame) for frame in frames]
        batched = make_cascade(bundle)
        decisions = []
        for start in range(0, len(frames), 16):
            decisions.extend(batched.observe_batch(frames[start:start + 16]))
        assert decisions == expected
        assert batched.state_dict() == sequential.state_dict()

    def test_cascade_over_odin_refuses_observe_batch(self, bundle):
        """ODIN has no certified snapshot-replay semantics, so a cascade
        wrapping it must not advertise one on its behalf."""
        cascade = make_cascade(bundle, tier1="odin")
        assert not hasattr(cascade, "observe_batch")
        assert not MonitorStage(cascade).supports_rollback

    def test_cascade_over_odin_takes_the_per_frame_fallback(self, bundle):
        """Regression for satellite (f): the kernel must drive a
        non-rollback cascade frame by frame, and batched processing must
        still be bit-identical to sequential processing."""
        frames = gaussian_stream(0, DRIFT_SEGMENTS)

        def factory(b):
            return CascadeMonitor(PixelStatMonitor(b.sigma),
                                  zoo.build("odin", b))

        sequential = make_pipeline(0, monitor_factory=factory)
        batched = make_pipeline(0, monitor_factory=factory)
        assert not batched.kernel.monitor.supports_rollback
        assert result_sig(sequential.process(frames)) == \
            result_sig(batched.process_batched(frames, batch_size=16))
