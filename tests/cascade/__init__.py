"""Tests for :mod:`repro.cascade`."""
