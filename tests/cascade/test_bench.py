"""CASCADE_SCHEMA round trips, frontier scoring, and the committed
``BENCH_cascade.json`` acceptance bars."""

from __future__ import annotations

import os

import pytest

from repro.cascade.bench import (
    DEFAULT_THRESHOLD,
    default_mode_name,
    mode_matrix,
    run_benchmark,
)
from repro.cascade.report import (
    frontier_summary,
    load_cascade_report,
    validate_cascade_report,
    write_cascade_report,
)
from repro.detectors.bench import Scenario
from repro.errors import CascadeError, CascadeReportError

COMMITTED_REPORT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "BENCH_cascade.json")

#: The CI gate's frontier bars (mirrored by ``scripts/check.sh``):
#: stationary escalation share, stationary cost vs always-on DI, and
#: abrupt detection delay vs always-on DI.
MAX_STATIONARY_ESCALATED_PCT = 20.0
MIN_COST_ADVANTAGE = 3.0
MAX_DELAY_RATIO = 2.0


def minimal_report() -> dict:
    cell = {"detection_delay": 2.0, "detected_runs": 1, "runs": 1,
            "false_alarms": 0.0, "escalated_pct": 5.0,
            "us_per_frame": 200.0}
    return {
        "schema_version": 1,
        "benchmark": "tiered-cascade accuracy/cost frontier",
        "quick": True,
        "default_mode": "cascade@3.5",
        "scenarios": {
            "abrupt": {"frames": 120, "onset": 60, "seeds": [0]},
            "stationary": {"frames": 120, "onset": None, "seeds": [0]},
        },
        "modes": {
            "cascade@3.5": {
                "kind": "cascade",
                "threshold": 3.5,
                "scenarios": {"abrupt": dict(cell),
                              "stationary": dict(cell)},
            },
        },
    }


class TestSchema:
    def test_minimal_report_validates(self):
        validate_cascade_report(minimal_report())

    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_cascade.json")
        report = minimal_report()
        write_cascade_report(path, report)
        assert load_cascade_report(path) == report

    @pytest.mark.parametrize("key", ["schema_version", "benchmark", "quick",
                                     "default_mode", "scenarios", "modes"])
    def test_missing_required_key_rejected(self, key):
        report = minimal_report()
        del report[key]
        with pytest.raises(CascadeReportError, match=key):
            validate_cascade_report(report)

    def test_extra_cell_key_rejected(self):
        report = minimal_report()
        report["modes"]["cascade@3.5"]["scenarios"]["abrupt"]["extra"] = 1
        with pytest.raises(CascadeReportError, match="extra"):
            validate_cascade_report(report)

    def test_unknown_kind_rejected(self):
        report = minimal_report()
        report["modes"]["cascade@3.5"]["kind"] = "sometimes-on"
        with pytest.raises(CascadeReportError, match="kind"):
            validate_cascade_report(report)

    def test_escalated_pct_bounded(self):
        report = minimal_report()
        report["modes"]["cascade@3.5"]["scenarios"]["abrupt"][
            "escalated_pct"] = 101.0
        with pytest.raises(CascadeReportError, match="escalated_pct"):
            validate_cascade_report(report)

    def test_zero_cost_rejected(self):
        report = minimal_report()
        report["modes"]["cascade@3.5"]["scenarios"]["abrupt"][
            "us_per_frame"] = 0.0
        with pytest.raises(CascadeReportError, match="us_per_frame"):
            validate_cascade_report(report)

    def test_default_mode_must_be_scored(self):
        report = minimal_report()
        report["default_mode"] = "cascade@99"
        with pytest.raises(CascadeReportError, match="default_mode"):
            validate_cascade_report(report)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CascadeReportError, match="not valid JSON"):
            load_cascade_report(str(path))


class TestModeMatrix:
    def test_matrix_names_and_order(self):
        modes = mode_matrix((2.5, 3.5))
        assert list(modes) == ["always-on-di", "tier0-alone",
                               "cascade@2.5", "cascade@3.5"]
        assert modes["cascade@2.5"].threshold == 2.5
        assert modes["always-on-di"].threshold is None

    def test_thresholds_validated(self):
        with pytest.raises(CascadeError, match="at least one"):
            mode_matrix(())
        with pytest.raises(CascadeError, match="positive"):
            mode_matrix((0.0,))

    def test_default_mode_prefers_the_headline_threshold(self):
        assert default_mode_name((2.5, DEFAULT_THRESHOLD)) == \
            f"cascade@{DEFAULT_THRESHOLD:g}"
        assert default_mode_name((5.0, 8.0)) == "cascade@5"


class TestQuickBenchmark:
    SCENARIOS = {
        "abrupt": Scenario("abrupt", ((0.0, 60), (6.0, 60)), onset=60),
        "stationary": Scenario("stationary", ((0.0, 120),), onset=None),
    }

    @pytest.fixture(scope="class")
    def report(self):
        return run_benchmark(thresholds=(3.5,), scenarios=self.SCENARIOS,
                             seeds=(0,), quick=True)

    def test_report_is_schema_valid(self, report):
        validate_cascade_report(report)
        assert report["quick"] is True
        assert report["default_mode"] == "cascade@3.5"

    def test_escalation_shares_bracket_the_cascade(self, report):
        summary = frontier_summary(report)
        assert summary["always-on-di"]["stationary_escalated_pct"] == 100.0
        assert summary["tier0-alone"]["stationary_escalated_pct"] == 0.0
        cascade = summary["cascade@3.5"]["stationary_escalated_pct"]
        assert 0.0 <= cascade < 100.0

    def test_costs_order_tier0_cascade_always_on(self, report):
        summary = frontier_summary(report)
        tier0 = summary["tier0-alone"]["stationary_us_per_frame"]
        cascade = summary["cascade@3.5"]["stationary_us_per_frame"]
        always = summary["always-on-di"]["stationary_us_per_frame"]
        assert tier0 <= cascade < always

    def test_benchmark_is_deterministic(self, report):
        rerun = run_benchmark(thresholds=(3.5,), scenarios=self.SCENARIOS,
                              seeds=(0,), quick=True)
        assert rerun == report

    def test_empty_seeds_rejected(self):
        with pytest.raises(CascadeError, match="seed"):
            run_benchmark(seeds=())


class TestCommittedReport:
    """The acceptance bars ISSUE 9 pins on the committed frontier --
    asserted in-tree so a regressing re-run cannot be committed even if
    the CI gate is skipped."""

    @pytest.fixture(scope="class")
    def summary(self):
        report = load_cascade_report(COMMITTED_REPORT)
        assert report["quick"] is False
        return frontier_summary(report), report["default_mode"]

    def test_headline_mode_is_a_cascade(self, summary):
        modes, headline = summary
        assert modes[headline]["kind"] == "cascade"

    def test_stationary_escalation_within_budget(self, summary):
        modes, headline = summary
        assert modes[headline]["stationary_escalated_pct"] <= \
            MAX_STATIONARY_ESCALATED_PCT
        assert modes[headline]["stationary_false_alarms"] == 0.0

    def test_cost_advantage_over_always_on(self, summary):
        modes, headline = summary
        always = modes["always-on-di"]["stationary_us_per_frame"]
        assert modes[headline]["stationary_us_per_frame"] <= \
            always / MIN_COST_ADVANTAGE

    def test_abrupt_delay_within_ratio(self, summary):
        modes, headline = summary
        ceiling = modes["always-on-di"]
        cascade = modes[headline]
        assert cascade["abrupt_detected_runs"] == \
            ceiling["abrupt_detected_runs"]
        assert cascade["abrupt_delay"] <= \
            MAX_DELAY_RATIO * ceiling["abrupt_delay"]

    def test_report_matches_disk_formatting(self, tmp_path):
        """The committed file is exactly what ``write_cascade_report``
        emits (sorted keys, two-space indent, trailing newline)."""
        report = load_cascade_report(COMMITTED_REPORT)
        rewritten = str(tmp_path / "rewrite.json")
        write_cascade_report(rewritten, report)
        with open(COMMITTED_REPORT, encoding="utf-8") as handle:
            committed = handle.read()
        with open(rewritten, encoding="utf-8") as handle:
            assert handle.read() == committed
