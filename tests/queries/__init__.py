"""Tests for :mod:`repro.queries` (aggregate video queries)."""
