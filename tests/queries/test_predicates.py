"""Predicate combinator algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.queries.predicates import (
    Above,
    And,
    InRegion,
    LeftOf,
    MinCount,
    Near,
    Not,
    Or,
    ground_truth,
)
from repro.video.objects import SceneObject
from repro.video.stream import Frame


def frame_with(objects):
    return Frame(index=0, pixels=np.zeros((4, 4)), objects=tuple(objects),
                 segment="s", condition="day", angle="front")


def obj(kind, x, y=0.5):
    return SceneObject(kind=kind, x=x, y=y, width=0.05, height=0.05,
                       intensity=0.5)


@pytest.fixture
def busy_frame():
    return frame_with([obj("car", 0.2, 0.3), obj("car", 0.8, 0.7),
                       obj("bus", 0.5, 0.5)])


class TestAtomicPredicates:
    def test_min_count(self, busy_frame):
        assert MinCount("car", 2)(busy_frame)
        assert not MinCount("car", 3)(busy_frame)
        assert MinCount("bus", 1)(busy_frame)

    def test_left_of(self, busy_frame):
        assert LeftOf("car", "bus")(busy_frame)   # car at 0.2 < bus at 0.5
        assert LeftOf("bus", "car")(busy_frame)   # bus at 0.5 < car at 0.8

    def test_left_of_requires_both_kinds(self):
        only_cars = frame_with([obj("car", 0.1), obj("car", 0.9)])
        assert not LeftOf("bus", "car")(only_cars)

    def test_above(self, busy_frame):
        assert Above("car", "bus")(busy_frame)    # car at y=0.3 above 0.5

    def test_near(self):
        close = frame_with([obj("car", 0.50, 0.50), obj("bus", 0.55, 0.50)])
        apart = frame_with([obj("car", 0.1, 0.1), obj("bus", 0.9, 0.9)])
        assert Near("car", "bus", radius=0.1)(close)
        assert not Near("car", "bus", radius=0.1)(apart)

    def test_near_ignores_self_pairs(self):
        one_car = frame_with([obj("car", 0.5, 0.5)])
        assert not Near("car", "car", radius=1.0)(one_car)

    def test_in_region(self, busy_frame):
        assert InRegion("bus", 0.4, 0.4, 0.6, 0.6)(busy_frame)
        assert not InRegion("bus", 0.0, 0.0, 0.1, 0.1)(busy_frame)

    @pytest.mark.parametrize("build", [
        lambda: MinCount("plane", 1),
        lambda: MinCount("car", 0),
        lambda: Near("car", "bus", radius=0.0),
        lambda: InRegion("car", 0.5, 0.5, 0.4, 0.6),
    ])
    def test_invalid_construction(self, build):
        with pytest.raises(ConfigurationError):
            build()


class TestCombinators:
    def test_and_or_not(self, busy_frame):
        p = And(MinCount("car", 2), MinCount("bus", 1))
        assert p(busy_frame)
        q = Or(MinCount("car", 5), MinCount("bus", 1))
        assert q(busy_frame)
        assert not Not(q)(busy_frame)

    def test_operator_sugar(self, busy_frame):
        p = MinCount("car", 2) & MinCount("bus", 1)
        q = MinCount("car", 9) | MinCount("bus", 1)
        assert p(busy_frame) and q(busy_frame)
        assert not (~p)(busy_frame)

    def test_names_are_readable(self):
        p = And(MinCount("car", 3), LeftOf("bus", "car"))
        assert "count(car) >= 3" in p.name
        assert "bus left-of car" in p.name

    def test_combinators_need_two_operands(self):
        with pytest.raises(ConfigurationError):
            And(MinCount("car", 1))


class TestIntegration:
    def test_matches_builtin_spatial_predicate(self):
        """LeftOf('bus', 'car') is exactly the paper's query."""
        from repro.queries.spatial import bus_left_of_car
        from repro.video.datasets import make_bdd

        frames = make_bdd(scale=1e9).training_frames("day", 40, seed=0)
        dsl = LeftOf("bus", "car")
        assert [dsl(f) for f in frames] == [bus_left_of_car(f)
                                            for f in frames]

    def test_selectivity_and_ground_truth(self):
        from repro.video.datasets import make_bdd

        frames = make_bdd(scale=1e9).training_frames("day", 40, seed=0)
        p = MinCount("car", 1)
        labels = ground_truth(p, frames)
        assert p.selectivity(frames) == pytest.approx(
            sum(labels) / len(labels))

    def test_predicate_trains_a_spatial_filter(self):
        """Any predicate plugs into the learned pixel-level filter."""
        from repro.detectors.classifier_filters import SpatialFilter
        from repro.nn.classifier import ClassifierConfig
        from repro.video.datasets import make_bdd

        frames = make_bdd(scale=1e9).training_frames("day", 60, seed=0)
        query = MinCount("car", 8)
        filt = SpatialFilter(query, config=ClassifierConfig(
            input_shape=(1, 32, 32), num_classes=2, hidden=32, epochs=6,
            seed=0))
        filt.fit_frames(frames)
        assert 0.0 <= filt.accuracy_on(frames) <= 1.0
