"""Count and spatial queries, the A_q metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import Detection, DetectionResult
from repro.errors import ConfigurationError
from repro.queries.accuracy import accuracy_by_key, query_accuracy
from repro.queries.count import CountQuery
from repro.queries.spatial import SpatialQuery, bus_left_of_car
from repro.video.datasets import make_bdd
from repro.video.objects import SceneObject


@pytest.fixture(scope="module")
def frames():
    return make_bdd(scale=1e9).training_frames("day", 25, seed=0)


def frame_with(objects):
    """A minimal Frame carrying only object ground truth."""
    from repro.video.stream import Frame
    return Frame(index=0, pixels=np.zeros((4, 4)), objects=tuple(objects),
                 segment="s", condition="day", angle="front")


def obj(kind, x):
    return SceneObject(kind=kind, x=x, y=0.5, width=0.05, height=0.05,
                       intensity=0.5)


class TestBusLeftOfCar:
    def test_true_when_bus_left(self):
        frame = frame_with([obj("bus", 0.2), obj("car", 0.8)])
        assert bus_left_of_car(frame)

    def test_false_when_bus_right(self):
        frame = frame_with([obj("bus", 0.9), obj("car", 0.1)])
        assert not bus_left_of_car(frame)

    def test_false_without_both_kinds(self):
        assert not bus_left_of_car(frame_with([obj("car", 0.5)]))
        assert not bus_left_of_car(frame_with([obj("bus", 0.5)]))
        assert not bus_left_of_car(frame_with([]))

    def test_any_pair_suffices(self):
        frame = frame_with([obj("bus", 0.6), obj("car", 0.1),
                            obj("car", 0.9)])
        assert bus_left_of_car(frame)


class TestCountQuery:
    def test_perfect_predictions_give_full_accuracy(self, frames):
        query = CountQuery(num_classes=6, bucket_width=4)
        truth = query.ground_truth(frames)
        assert query.accuracy(frames, truth) == 1.0

    def test_wrong_predictions_give_zero(self, frames):
        query = CountQuery(num_classes=6, bucket_width=4)
        truth = query.ground_truth(frames)
        assert query.accuracy(frames, (truth + 1) % 6) == 0.0

    def test_accuracy_from_detections_with_oracle(self, frames):
        query = CountQuery(num_classes=6, bucket_width=4)
        results = [
            DetectionResult([Detection(o.kind, o.x, o.y) for o in f.objects])
            for f in frames
        ]
        assert query.accuracy_from_detections(frames, results) == 1.0

    def test_per_sequence_accuracy_groups_by_segment(self, frames):
        query = CountQuery(num_classes=6, bucket_width=4)
        truth = query.ground_truth(frames)
        by_seq = query.per_sequence_accuracy(frames, truth)
        assert by_seq == {"day": 1.0}

    def test_length_mismatch_rejected(self, frames):
        query = CountQuery(num_classes=6)
        with pytest.raises(ConfigurationError):
            query.accuracy(frames, np.zeros(3, dtype=np.int64))


class TestSpatialQuery:
    def test_perfect_predictions(self, frames):
        query = SpatialQuery()
        truth = query.ground_truth(frames)
        assert query.accuracy(frames, truth) == 1.0

    def test_detection_based_evaluation(self, frames):
        query = SpatialQuery()
        results = [
            DetectionResult([Detection(o.kind, o.x, o.y) for o in f.objects])
            for f in frames
        ]
        assert query.accuracy_from_detections(frames, results) == 1.0

    def test_missing_detections_can_flip_predicate(self):
        query = SpatialQuery()
        frame = frame_with([obj("bus", 0.2), obj("car", 0.8)])
        empty = DetectionResult([])
        assert query.accuracy_from_detections([frame], [empty]) == 0.0


class TestAccuracyHelpers:
    def test_query_accuracy(self):
        assert query_accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)

    def test_query_accuracy_empty(self):
        assert query_accuracy([], []) == 0.0

    def test_query_accuracy_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            query_accuracy([1], [1, 2])

    def test_accuracy_by_key(self):
        result = accuracy_by_key([1, 1, 0, 0], [1, 0, 0, 1],
                                 ["a", "a", "b", "b"])
        assert result == {"a": 0.5, "b": 0.5}
