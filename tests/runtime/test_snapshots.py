"""detach_arrays: snapshots must never alias transport-owned memory."""

from __future__ import annotations

import multiprocessing

import numpy as np

from repro.runtime import detach_arrays, owns_memory
from repro.parallel import FrameRing


class TestOwnsMemory:
    def test_fresh_array_owns(self):
        assert owns_memory(np.zeros(4))

    def test_view_does_not_own(self):
        base = np.zeros((4, 4))
        assert not owns_memory(base[1:])
        assert not owns_memory(base.reshape(16))

    def test_buffer_backed_array_does_not_own(self):
        raw = bytearray(32)
        assert not owns_memory(np.frombuffer(raw, dtype=np.float64))


class TestDetachArrays:
    def test_owned_arrays_pass_through_by_reference(self):
        state = {"w": np.arange(6.0), "n": 3, "name": "x"}
        detached = detach_arrays(state)
        assert detached["w"] is state["w"]
        assert detached["n"] == 3 and detached["name"] == "x"

    def test_views_are_copied_and_decoupled(self):
        base = np.arange(12.0)
        state = {"view": base[2:8]}
        detached = detach_arrays(state)
        assert owns_memory(detached["view"])
        assert np.array_equal(detached["view"], base[2:8])
        base[:] = -1.0  # mutating the base must not reach the snapshot
        assert np.array_equal(detached["view"], np.arange(2.0, 8.0))

    def test_recurses_through_containers(self):
        base = np.ones((3, 3))
        state = {"a": [base[0], (base[1], {"b": base[2]})],
                 "scalar": 1.5, "none": None}
        detached = detach_arrays(state)
        assert owns_memory(detached["a"][0])
        assert owns_memory(detached["a"][1][0])
        assert owns_memory(detached["a"][1][1]["b"])
        assert isinstance(detached["a"][1], tuple)
        assert detached["scalar"] == 1.5 and detached["none"] is None

    def test_detach_preserves_dtype_shape_and_bits(self):
        base = np.arange(24, dtype=np.int32).reshape(4, 6)
        view = base[::2, ::3]  # non-contiguous
        detached = detach_arrays(view)
        assert detached.dtype == view.dtype
        assert detached.shape == view.shape
        assert detached.flags.c_contiguous
        assert np.array_equal(detached, view)

    def test_idempotent(self):
        state = {"v": np.arange(9.0)[3:]}
        once = detach_arrays(state)
        twice = detach_arrays(once)
        assert twice["v"] is once["v"]

    def test_detaches_shared_memory_ring_views(self):
        """The fleet case: state holding a zero-copy ring view must
        survive the ring being released and unlinked."""
        ring = FrameRing(multiprocessing.get_context("fork"),
                         slots=1, slot_bytes=64)
        ring.push("k", np.arange(8.0))
        meta, view = ring.pop()
        detached = detach_arrays({"window": view})
        ring.release(meta)
        ring.close_send()
        ring.unlink()
        assert owns_memory(detached["window"])
        assert np.array_equal(detached["window"], np.arange(8.0))
