"""Checkpoint -> restore -> bit-exact resume, at the kernel level.

``tests/faults/test_checkpoint.py`` exercises the npz archive through the
:class:`~repro.core.pipeline.DriftAwareAnalytics` façade; these tests pin
the underlying :class:`~repro.runtime.protocols.Snapshotable` mechanism
itself: a raw ``state_dict`` round trip on the kernel (no archive), a
restore that resumes under a *different* chunking, the full npz path, and
the refusal to checkpoint a session whose monitor cannot snapshot.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.core.checkpoint import restore_checkpoint, save_checkpoint
from repro.errors import CheckpointError
from repro.testing import gaussian_stream, make_pipeline, result_sig

FRAMES = gaussian_stream(3, [(0.0, 25), (6.0, 35)])


class _AmnesiacMonitor:
    """A deliberately non-Snapshotable DriftMonitor: satisfies the
    structural protocol (observe/reset/flags) but has no state_dict, so
    the checkpoint path must refuse it.  Every registered zoo detector
    is Snapshotable now -- this stand-in keeps the refusal covered."""

    def __init__(self, reference: np.ndarray) -> None:
        centroid = np.asarray(reference, dtype=np.float64).mean(axis=0)
        self._centroid = centroid
        self._frame_index = 0
        self._drift_frame = None

    @property
    def drift_detected(self) -> bool:
        return self._drift_frame is not None

    @property
    def drift_frame(self):
        return self._drift_frame

    def observe(self, frame) -> bool:
        latent = np.asarray(frame, dtype=np.float64).reshape(-1)
        dist = float(np.sqrt(((latent - self._centroid) ** 2).sum()))
        if dist > 10.0 and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return self.drift_detected

    def reset(self) -> None:
        self._drift_frame = None


def amnesiac_monitor(bundle):
    return _AmnesiacMonitor(bundle.sigma)


def run_steps(pipeline, frames):
    pipeline.start()
    for frame in frames:
        pipeline.step(frame)
    return pipeline


def finish(pipeline, frames):
    for frame in frames:
        pipeline.step(frame)
    pipeline.flush()
    return pipeline.result()


@pytest.fixture(scope="module")
def reference_sig():
    return result_sig(make_pipeline(seed=3).process(FRAMES))


class TestKernelRoundTrip:
    # cuts land before the drift, mid-selection-buffer, and after the swap
    @pytest.mark.parametrize("cut", [17, 31, 45])
    def test_state_dict_round_trip_resumes_bit_exactly(self, cut,
                                                       reference_sig):
        first = run_steps(make_pipeline(seed=3), FRAMES[:cut])
        state = first.kernel.state_dict()

        resumed = make_pipeline(seed=3)
        resumed.kernel.load_state_dict(state)
        assert result_sig(finish(resumed, FRAMES[cut:])) == reference_sig

    def test_restore_resumes_under_a_different_chunking(self, reference_sig):
        """The original session ran frame by frame; the restored one resumes
        through ``step_batch`` -- the equivalence contract must hold across
        the checkpoint boundary too."""
        first = run_steps(make_pipeline(seed=3), FRAMES[:21])
        state = first.kernel.state_dict()

        resumed = make_pipeline(seed=3)
        resumed.kernel.load_state_dict(state)
        resumed.step_batch(FRAMES[21:], batch_size=16)
        resumed.flush()
        assert result_sig(resumed.result()) == reference_sig

    def test_npz_archive_round_trip(self, tmp_path, reference_sig):
        first = run_steps(make_pipeline(seed=3), FRAMES[:31])
        path = str(tmp_path / "session.npz")
        save_checkpoint(path, first)

        resumed = restore_checkpoint(path, make_pipeline(seed=3))
        assert result_sig(finish(resumed, FRAMES[31:])) == reference_sig

    def test_non_snapshotable_monitor_refused(self):
        pipeline = make_pipeline(seed=0, monitor_factory=amnesiac_monitor)
        pipeline.process(gaussian_stream(0, [(0.0, 10)]))
        with pytest.raises(CheckpointError, match="Snapshotable"):
            pipeline.state_dict()


class TestMonitorFactoryRebuild:
    def test_factory_rebuilds_monitor_per_deploy(self):
        """Every deploy (initial arm + each post-drift swap) must call
        ``monitor_factory`` with the newly deployed bundle, so the
        monitor is always armed against the *current* reference."""
        built = []

        def tracking_factory(bundle):
            built.append(bundle.name)
            return amnesiac_monitor(bundle)

        pipeline = make_pipeline(seed=0, monitor_factory=tracking_factory)
        result = pipeline.process(gaussian_stream(0, [(0.0, 30), (6.0, 60)]))
        assert result.detections, "drift never detected"
        # one build per deployment: the initial arm plus one per swap
        assert built[0] == "low"
        assert len(built) == 1 + len(result.detections)
        assert built[1:] == [d.selected_model for d in result.detections]
