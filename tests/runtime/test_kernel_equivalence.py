"""One kernel, three substrates, one bit pattern -- for the whole zoo.

The serving suite already proves that an unconstrained stream served
through the scheduler reproduces ``process_batched`` for the default Drift
Inspector.  These properties push the same contract down to the
:class:`~repro.runtime.protocols.DriftMonitor` seam and out to every
detector registered in :mod:`repro.detectors.zoo` (plus the kernel's
default when no factory is given): sequential ``process``,
``process_batched`` at any chunking, and an unconstrained serve run must
all emit bit-identical
:class:`~repro.runtime.emission.PipelineResult`\\s -- whether the entry
rides the optimistic batched-rollback path or the scalar fallback.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import zoo
from repro.testing import gaussian_stream, make_pipeline, result_sig
from repro.testing.conformance import serve_unconstrained

#: Every registered detector, plus the kernel's built-in default
#: (``monitor_factory=None`` -> the paper's Drift Inspector).
MONITORS = {"default": None}
MONITORS.update({name: zoo.factory(name) for name in zoo.names()})

#: The short three-substrate stream latches drift in most entries; the
#: slow starters need the longer certification stream (covered by the
#: conformance battery in ``tests/detectors/test_conformance.py``) and
#: here are pinned for bit-identity only.
SLOW_STARTERS = {"eddm", "odin"}


class TestThreeSubstrateBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100),
           batch_size=st.sampled_from([1, 3, 8, 32]),
           monitor=st.sampled_from(sorted(MONITORS)))
    def test_sequential_batched_and_serve_agree(self, seed, batch_size,
                                                monitor):
        factory = MONITORS[monitor]
        frames = gaussian_stream(seed, [(0.0, 30), (6.0, 30)])
        sequential = make_pipeline(
            seed=seed, monitor_factory=factory).process(frames)
        batched = make_pipeline(
            seed=seed, monitor_factory=factory).process_batched(
                frames, batch_size=batch_size)
        served = serve_unconstrained(frames, seed, batch_size, factory)
        signature = result_sig(sequential)
        assert result_sig(batched) == signature
        assert result_sig(served) == signature

    @pytest.mark.parametrize(
        "monitor", sorted(set(MONITORS) - SLOW_STARTERS))
    def test_property_is_not_vacuous(self, monitor):
        """Every fast-reacting monitor actually detects the 0 -> 6 shift
        on the short stream and drives a swap, so the bit-identity above
        covers detection, selection and redeployment -- not just
        steady-state monitoring."""
        factory = MONITORS[monitor]
        frames = gaussian_stream(0, [(0.0, 30), (6.0, 60)])
        result = make_pipeline(seed=0, monitor_factory=factory).process(
            frames)
        assert result.detections, f"{monitor} never detected the drift"
        assert result.records[-1].model == "high"

    @pytest.mark.parametrize("monitor", sorted(SLOW_STARTERS))
    def test_slow_starters_detect_on_long_stream(self, monitor):
        """EDDM needs an error-gap baseline and ODIN a stabilised
        temporary cluster; both catch the shift given the certification
        stream length."""
        factory = MONITORS[monitor]
        frames = gaussian_stream(0, [(0.0, 120), (6.0, 120)])
        result = make_pipeline(seed=0, monitor_factory=factory).process(
            frames)
        assert result.detections, f"{monitor} never detected the drift"
        assert result.detections[0].frame_index >= 120
        assert result.records[-1].model == "high"

    def test_scalar_fallback_chunking_invariance(self):
        """ODIN exposes no ``observe_batch``: every chunk must take the
        kernel's scalar fallback, and any chunking must still match
        sequential exactly."""
        factory = zoo.factory("odin")
        frames = gaussian_stream(5, [(0.0, 30), (6.0, 30)])
        signature = result_sig(make_pipeline(
            seed=5, monitor_factory=factory).process(frames))
        for batch_size in (2, 7, 64):
            batched = make_pipeline(
                seed=5, monitor_factory=factory).process_batched(
                    frames, batch_size=batch_size)
            assert result_sig(batched) == signature
