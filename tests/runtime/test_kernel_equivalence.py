"""One kernel, three substrates, one bit pattern -- per monitor protocol.

The serving suite already proves that an unconstrained stream served
through the scheduler reproduces ``process_batched`` for the default Drift
Inspector.  These properties push the same contract down to the
:class:`~repro.runtime.protocols.DriftMonitor` seam: for *any* monitor
backing the kernel's monitoring stage -- the Drift Inspector (rollback
batching), ODIN-Detect and a CUSUM chart (scalar-fallback batching) --
sequential ``process``, ``process_batched`` at any chunking, and an
unconstrained serve run must all emit bit-identical
:class:`~repro.runtime.emission.PipelineResult`\\s.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.baselines.statistical import CusumDetector
from repro.serve import (
    DriftServer,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.testing import gaussian_stream, make_pipeline, result_sig

CAPACITY = capacity_fps()


def odin_monitor(bundle):
    """ODIN-Detect seeded with the deployed bundle's reference cluster."""
    detect = OdinDetect(config=OdinConfig())
    detect.seed_cluster(bundle.name, bundle.sigma, model_name=bundle.name)
    return detect


def cusum_monitor(bundle):
    """Page's CUSUM chart against the deployed bundle's reference."""
    return CusumDetector(bundle.sigma)


MONITORS = {
    "inspector": None,  # kernel default: the paper's Drift Inspector
    "odin": odin_monitor,
    "cusum": cusum_monitor,
}


def serve_unconstrained(frames, seed, batch_size, factory):
    """Serve ``frames`` on one stream that can never shed or miss."""
    session = StreamSession(
        "cam", make_pipeline(seed=seed, monitor_factory=factory),
        SessionConfig(queue_capacity=1 << 20, deadline_ms=1e12))
    arrivals = generate_arrivals(
        frames, WorkloadConfig(rate_fps=CAPACITY), stream_id="cam",
        deadline_ms=1e12, seed=seed + 1)
    server = DriftServer([session], ServeConfig(
        scheduler=SchedulerConfig(batch_size=batch_size)))
    return server.run(arrivals).pipeline_results["cam"]


class TestThreeSubstrateBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100),
           batch_size=st.sampled_from([1, 3, 8, 32]),
           monitor=st.sampled_from(sorted(MONITORS)))
    def test_sequential_batched_and_serve_agree(self, seed, batch_size,
                                                monitor):
        factory = MONITORS[monitor]
        frames = gaussian_stream(seed, [(0.0, 30), (6.0, 30)])
        sequential = make_pipeline(
            seed=seed, monitor_factory=factory).process(frames)
        batched = make_pipeline(
            seed=seed, monitor_factory=factory).process_batched(
                frames, batch_size=batch_size)
        served = serve_unconstrained(frames, seed, batch_size, factory)
        signature = result_sig(sequential)
        assert result_sig(batched) == signature
        assert result_sig(served) == signature

    @pytest.mark.parametrize("monitor", sorted(MONITORS))
    def test_property_is_not_vacuous(self, monitor):
        """Every monitor actually detects the 0 -> 6 shift and drives a
        swap, so the bit-identity above covers detection, selection and
        redeployment -- not just steady-state monitoring."""
        factory = MONITORS[monitor]
        frames = gaussian_stream(0, [(0.0, 30), (6.0, 60)])
        result = make_pipeline(seed=0, monitor_factory=factory).process(
            frames)
        assert result.detections, f"{monitor} never detected the drift"
        assert result.records[-1].model == "high"

    def test_scalar_fallback_chunking_invariance(self):
        """ODIN exposes neither ``observe_batch`` nor ``state_dict``: every
        chunk must take the kernel's scalar fallback, and any chunking must
        still match sequential exactly."""
        frames = gaussian_stream(5, [(0.0, 30), (6.0, 30)])
        signature = result_sig(make_pipeline(
            seed=5, monitor_factory=odin_monitor).process(frames))
        for batch_size in (2, 7, 64):
            batched = make_pipeline(
                seed=5, monitor_factory=odin_monitor).process_batched(
                    frames, batch_size=batch_size)
            assert result_sig(batched) == signature
