"""Protocol conformance: who satisfies Snapshotable / DriftMonitor.

The contracts are structural (``runtime_checkable`` protocols), so these
tests pin down which components participate in each mechanism -- the
kernel's optimistic batched rollback and the checkpoint path both dispatch
on exactly these ``isinstance`` checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.odin.detect import OdinDetect
from repro.baselines.statistical import (
    CusumDetector,
    KSDetector,
    MomentDetector,
)
from repro.core.drift_inspector import DriftInspector
from repro.obs.recorder import Recorder
from repro.runtime import DriftMonitor, MonitorStage, Snapshotable
from repro.sim.clock import SimulatedClock
from repro.sim.metrics import FaultStats, InvocationCounter
from repro.testing import make_pipeline


@pytest.fixture(scope="module")
def reference():
    rng = np.random.default_rng(7)
    return rng.normal(0.0, 1.0, size=(60, 4))


class TestSnapshotable:
    @pytest.mark.parametrize("factory", [
        SimulatedClock,
        Recorder,
        InvocationCounter,
        FaultStats,
    ])
    def test_infra_components_are_snapshotable(self, factory):
        assert isinstance(factory(), Snapshotable)

    def test_drift_inspector_is_snapshotable(self, reference):
        assert isinstance(DriftInspector(reference), Snapshotable)

    def test_pipeline_facade_and_kernel_are_snapshotable(self):
        pipeline = make_pipeline(seed=0)
        assert isinstance(pipeline, Snapshotable)
        assert isinstance(pipeline.kernel, Snapshotable)

    @pytest.mark.parametrize("cls", [KSDetector, CusumDetector,
                                     MomentDetector])
    def test_statistical_detectors_are_snapshotable(self, cls, reference):
        # state_dict + observe_batch: they ride the kernel's optimistic
        # batched-rollback path and can be checkpointed
        assert isinstance(cls(reference), Snapshotable)

    def test_odin_detect_is_snapshotable(self, reference):
        detect = OdinDetect()
        detect.seed_cluster("base", reference)
        assert isinstance(detect, Snapshotable)

    def test_zoo_monitors_are_snapshotable(self):
        from repro.detectors import zoo
        from repro.testing import make_registry

        bundle = make_registry().get("low")
        for spec in zoo.specs():
            assert isinstance(spec.build(bundle), Snapshotable), spec.name


class TestDriftMonitor:
    def test_drift_inspector_conforms(self, reference):
        inspector = DriftInspector(reference)
        assert isinstance(inspector, DriftMonitor)
        assert MonitorStage(inspector).supports_rollback

    @pytest.mark.parametrize("cls", [KSDetector, CusumDetector,
                                     MomentDetector])
    def test_statistical_detectors_conform(self, cls, reference):
        detector = cls(reference)
        assert isinstance(detector, DriftMonitor)
        # observe_batch + Snapshotable -> optimistic batched rollback
        assert MonitorStage(detector).supports_rollback

    def test_odin_detect_conforms(self, reference):
        detect = OdinDetect()
        detect.seed_cluster("base", reference)
        assert isinstance(detect, DriftMonitor)
        # Snapshotable but no observe_batch: scalar fallback batching
        assert not MonitorStage(detect).supports_rollback

    def test_drift_of_normalizes_bools_and_decisions(self, reference):
        assert MonitorStage.drift_of(True) is True
        assert MonitorStage.drift_of(False) is False
        inspector = DriftInspector(reference)
        decision = inspector.observe(np.zeros(4))
        assert MonitorStage.drift_of(decision) == decision.drift

    @pytest.mark.parametrize("cls", [KSDetector, CusumDetector,
                                     MomentDetector])
    def test_statistical_reset_rearms_detection(self, cls, reference):
        detector = cls(reference)
        rng = np.random.default_rng(3)
        for _ in range(200):
            if detector.observe(rng.normal(30.0, 1.0, size=4)):
                break
        assert detector.drift_detected
        detector.reset()
        assert not detector.drift_detected
        assert detector.drift_frame is None
        # after the reset the detector accepts in-distribution frames again
        for i in range(5):
            assert not detector.observe(reference[i])

    def test_odin_reset_clears_flag_keeps_clusters(self, reference):
        detect = OdinDetect()
        detect.seed_cluster("base", reference)
        detect._drift_frame = 42
        detect.reset()
        assert not detect.drift_detected
        assert len(detect.clusters) == 1
