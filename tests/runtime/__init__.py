"""Tests for :mod:`repro.runtime` (the staged kernel and its protocols)."""
