"""FleetExecutor: sharding, seeding, crash recovery, failure reporting.

The executor's contract is determinism: results must not depend on worker
count, scheduling, or whether a worker died and was restored mid-stream.
Every test here compares full result signatures (records, detections,
invocation ledger, simulated clock, fault stats) bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, FleetError
from repro.parallel import (
    TRANSPORTS,
    FleetExecutor,
    FleetTask,
    SimulatedWorkerCrash,
    stream_seed,
)

from tests.parallel.conftest import (
    gaussian_stream,
    make_pipeline,
    result_sig,
)


def factory(task, seed):
    return make_pipeline(seed=seed)


def make_tasks(n_streams=3, frames=120):
    tasks = []
    for index in range(n_streams):
        frames_arr = gaussian_stream(
            300 + index, [(0.0, frames // 2), (6.0, frames - frames // 2)])
        tasks.append(FleetTask(stream_id=f"cam-{index}", frames=frames_arr))
    return tasks


def sigs(results):
    return [(entry.stream_id, result_sig(entry.result))
            for entry in results]


# ----------------------------------------------------------------------
# seeding
# ----------------------------------------------------------------------
def test_stream_seed_is_deterministic_and_distinct():
    assert stream_seed(0, "cam-1") == stream_seed(0, "cam-1")
    assert stream_seed(0, "cam-1") != stream_seed(0, "cam-2")
    assert stream_seed(0, "cam-1") != stream_seed(1, "cam-1")


def test_worker_count_and_transport_never_change_results():
    tasks = make_tasks()
    reference = sigs(FleetExecutor(factory, workers=0).run(tasks))
    for workers in (1, 2, 4):
        for transport in TRANSPORTS:
            got = sigs(FleetExecutor(factory, workers=workers,
                                     transport=transport).run(tasks))
            assert got == reference, \
                f"workers={workers} transport={transport} diverged"


def test_fleet_stream_matches_direct_process():
    """A fleet stream's result is exactly what running the pipeline
    directly (same factory, same stream seed) would produce."""
    tasks = make_tasks(n_streams=2)
    results = {entry.stream_id: entry.result
               for entry in FleetExecutor(factory, workers=2).run(tasks)}
    for task in tasks:
        direct = factory(task, stream_seed(0, task.stream_id))
        expected = direct.process(task.frames)
        assert result_sig(results[task.stream_id]) == result_sig(expected)


def test_results_come_back_in_submission_order():
    tasks = make_tasks(n_streams=4, frames=60)
    results = FleetExecutor(factory, workers=2).run(tasks)
    assert [entry.stream_id for entry in results] == \
        [task.stream_id for task in tasks]


def test_empty_task_list():
    assert FleetExecutor(factory).run([]) == []


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers,transport",
                         [(0, "shm"), (2, "shm"), (2, "pipe")])
def test_crash_recovery_is_bit_exact(workers, transport, tmp_path):
    """Kill a worker mid-shard; the restored run must merge to exactly
    the uninterrupted fleet's results.  Under the shm transport this
    also proves checkpoints never alias the (unlinked) frame ring: the
    resumed attempt reloads state written from shared-memory views."""
    clean_tasks = make_tasks()
    expected = sigs(FleetExecutor(factory, workers=workers).run(clean_tasks))

    crashing = [FleetTask(task.stream_id, task.frames,
                          crash_at_frame=47 if i == 1 else None)
                for i, task in enumerate(clean_tasks)]
    executor = FleetExecutor(factory, workers=workers, transport=transport,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=20, max_restarts=1)
    results = executor.run(crashing)
    assert sigs(results) == expected
    by_id = {entry.stream_id: entry for entry in results}
    crashed = by_id[crashing[1].stream_id]
    assert crashed.attempts == 2
    assert crashed.resumed_at == 40  # last checkpoint before frame 47
    for entry in results:
        if entry.stream_id != crashed.stream_id:
            assert entry.attempts == 1


def test_crash_without_checkpoints_restarts_from_scratch(tmp_path):
    """No checkpoint_dir: the retry reprocesses the whole stream and still
    lands on the uninterrupted result."""
    tasks = make_tasks(n_streams=1)
    expected = sigs(FleetExecutor(factory, workers=0).run(tasks))
    crashing = [FleetTask(tasks[0].stream_id, tasks[0].frames,
                          crash_at_frame=30)]
    results = FleetExecutor(factory, workers=0, max_restarts=1).run(crashing)
    assert sigs(results) == expected
    assert results[0].attempts == 2
    assert results[0].resumed_at is None


def test_exhausted_restarts_raise_fleet_error(tmp_path):
    tasks = [FleetTask("doomed", make_tasks(n_streams=1)[0].frames,
                       crash_at_frame=10)]
    executor = FleetExecutor(factory, workers=0, max_restarts=0,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=5)
    with pytest.raises(FleetError, match="exhausted"):
        executor.run(tasks)


def test_stale_checkpoints_are_cleared_between_runs(tmp_path):
    """A fresh run() must not resume from a previous run's checkpoints."""
    tasks = make_tasks(n_streams=1)
    executor = FleetExecutor(factory, workers=0,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=20)
    first = sigs(executor.run(tasks))
    second = executor.run(tasks)
    assert sigs(second) == first
    assert second[0].resumed_at is None


# ----------------------------------------------------------------------
# failures and validation
# ----------------------------------------------------------------------
def _broken_factory(task, seed):
    raise RuntimeError("bundle store unavailable")


@pytest.mark.parametrize("workers", [0, 2])
def test_real_failures_fail_fast(workers):
    tasks = make_tasks(n_streams=2, frames=40)
    executor = FleetExecutor(_broken_factory, workers=workers)
    if workers == 0:
        with pytest.raises(RuntimeError):
            executor.run(tasks)
    else:
        with pytest.raises(FleetError, match="failed in a worker"):
            executor.run(tasks)


def test_simulated_crash_is_not_a_library_error():
    from repro.errors import ReproError
    assert not issubclass(SimulatedWorkerCrash, ReproError)


def test_duplicate_stream_ids_rejected():
    frames = make_tasks(n_streams=1, frames=20)[0].frames
    tasks = [FleetTask("cam", frames), FleetTask("cam", frames)]
    with pytest.raises(ConfigurationError, match="unique"):
        FleetExecutor(factory).run(tasks)


@pytest.mark.parametrize("kwargs", [
    {"workers": -1},
    {"batch_size": 0},
    {"checkpoint_every": 0, "checkpoint_dir": "/tmp/x"},
    {"checkpoint_every": 10},  # checkpoint_every without a dir
    {"max_restarts": -1},
    {"transport": "carrier-pigeon"},
])
def test_executor_configuration_validation(kwargs):
    with pytest.raises(ConfigurationError):
        FleetExecutor(factory, **kwargs)
