"""FleetExecutor: sharding, seeding, crash recovery, failure reporting.

The executor's contract is determinism: results must not depend on worker
count, scheduling, or whether a worker died and was restored mid-stream.
Every test here compares full result signatures (records, detections,
invocation ledger, simulated clock, fault stats) bit for bit.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError, FleetError
from repro.parallel import (
    TRANSPORTS,
    FleetExecutor,
    FleetTask,
    SimulatedWorkerCrash,
    stream_seed,
)

from tests.parallel.conftest import (
    gaussian_stream,
    make_pipeline,
    result_sig,
)


def factory(task, seed):
    return make_pipeline(seed=seed)


def make_tasks(n_streams=3, frames=120):
    tasks = []
    for index in range(n_streams):
        frames_arr = gaussian_stream(
            300 + index, [(0.0, frames // 2), (6.0, frames - frames // 2)])
        tasks.append(FleetTask(stream_id=f"cam-{index}", frames=frames_arr))
    return tasks


def sigs(results):
    return [(entry.stream_id, result_sig(entry.result))
            for entry in results]


# ----------------------------------------------------------------------
# seeding
# ----------------------------------------------------------------------
def test_stream_seed_is_deterministic_and_distinct():
    assert stream_seed(0, "cam-1") == stream_seed(0, "cam-1")
    assert stream_seed(0, "cam-1") != stream_seed(0, "cam-2")
    assert stream_seed(0, "cam-1") != stream_seed(1, "cam-1")


def test_worker_count_and_transport_never_change_results():
    tasks = make_tasks()
    reference = sigs(FleetExecutor(factory, workers=0).run(tasks))
    for workers in (1, 2, 4):
        for transport in TRANSPORTS:
            got = sigs(FleetExecutor(factory, workers=workers,
                                     transport=transport).run(tasks))
            assert got == reference, \
                f"workers={workers} transport={transport} diverged"


def test_fleet_stream_matches_direct_process():
    """A fleet stream's result is exactly what running the pipeline
    directly (same factory, same stream seed) would produce."""
    tasks = make_tasks(n_streams=2)
    results = {entry.stream_id: entry.result
               for entry in FleetExecutor(factory, workers=2).run(tasks)}
    for task in tasks:
        direct = factory(task, stream_seed(0, task.stream_id))
        expected = direct.process(task.frames)
        assert result_sig(results[task.stream_id]) == result_sig(expected)


def test_results_come_back_in_submission_order():
    tasks = make_tasks(n_streams=4, frames=60)
    results = FleetExecutor(factory, workers=2).run(tasks)
    assert [entry.stream_id for entry in results] == \
        [task.stream_id for task in tasks]


def test_empty_task_list():
    assert FleetExecutor(factory).run([]) == []


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers,transport",
                         [(0, "shm"), (2, "shm"), (2, "pipe")])
def test_crash_recovery_is_bit_exact(workers, transport, tmp_path):
    """Kill a worker mid-shard; the restored run must merge to exactly
    the uninterrupted fleet's results.  Under the shm transport this
    also proves checkpoints never alias the (unlinked) frame ring: the
    resumed attempt reloads state written from shared-memory views."""
    clean_tasks = make_tasks()
    expected = sigs(FleetExecutor(factory, workers=workers).run(clean_tasks))

    crashing = [FleetTask(task.stream_id, task.frames,
                          crash_at_frame=47 if i == 1 else None)
                for i, task in enumerate(clean_tasks)]
    executor = FleetExecutor(factory, workers=workers, transport=transport,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=20, max_restarts=1)
    results = executor.run(crashing)
    assert sigs(results) == expected
    by_id = {entry.stream_id: entry for entry in results}
    crashed = by_id[crashing[1].stream_id]
    assert crashed.attempts == 2
    assert crashed.resumed_at == 40  # last checkpoint before frame 47
    for entry in results:
        if entry.stream_id != crashed.stream_id:
            assert entry.attempts == 1


def test_crash_without_checkpoints_restarts_from_scratch(tmp_path):
    """No checkpoint_dir: the retry reprocesses the whole stream and still
    lands on the uninterrupted result."""
    tasks = make_tasks(n_streams=1)
    expected = sigs(FleetExecutor(factory, workers=0).run(tasks))
    crashing = [FleetTask(tasks[0].stream_id, tasks[0].frames,
                          crash_at_frame=30)]
    results = FleetExecutor(factory, workers=0, max_restarts=1).run(crashing)
    assert sigs(results) == expected
    assert results[0].attempts == 2
    assert results[0].resumed_at is None


def test_exhausted_restarts_raise_fleet_error(tmp_path):
    tasks = [FleetTask("doomed", make_tasks(n_streams=1)[0].frames,
                       crash_at_frame=10)]
    executor = FleetExecutor(factory, workers=0, max_restarts=0,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=5)
    with pytest.raises(FleetError, match="exhausted"):
        executor.run(tasks)


def test_stale_checkpoints_are_cleared_between_runs(tmp_path):
    """A fresh run() must not resume from a previous run's checkpoints."""
    tasks = make_tasks(n_streams=1)
    executor = FleetExecutor(factory, workers=0,
                             checkpoint_dir=str(tmp_path),
                             checkpoint_every=20)
    first = sigs(executor.run(tasks))
    second = executor.run(tasks)
    assert sigs(second) == first
    assert second[0].resumed_at is None


# ----------------------------------------------------------------------
# liveness: feeding and draining must overlap, never deadlock
# ----------------------------------------------------------------------
class _EchoPipeline:
    """Duck-typed pipeline stand-in for transport-level regressions:
    near-free per frame, but its result pickles to ``payload_floats``
    doubles -- sized by each test so worker->parent result pipes fill
    while the parent is still feeding frames."""

    def __init__(self, payload_floats):
        self.chunks = []
        self.payload_floats = payload_floats

    def start(self):
        pass

    def step_batch(self, frames, batch_size=None):
        self.chunks.append(np.array(frames, copy=True))

    def flush(self):
        pass

    def result(self):
        frames = (np.concatenate(self.chunks) if self.chunks
                  else np.zeros(0))
        return SimpleNamespace(telemetry=None,
                               n_frames=int(frames.shape[0]),
                               checksum=float(frames.sum()),
                               padding=np.zeros(self.payload_floats))


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_large_results_drain_while_frames_still_feed(transport):
    """Regression: each result pickles far larger than an OS pipe buffer
    and each shard's frame bytes outsize it too, so a dispatcher that
    fed every frame before its first recv deadlocked here (worker
    blocked sending a result, parent blocked pushing frames)."""
    n, frames_per = 8, 3000
    tasks = [FleetTask(f"cam-{i}", np.full(frames_per, float(i)))
             for i in range(n)]
    results = FleetExecutor(
        lambda task, seed: _EchoPipeline(payload_floats=40_000),
        workers=2, transport=transport, batch_size=512).run(tasks)
    assert [r.stream_id for r in results] == [t.stream_id for t in tasks]
    for i, entry in enumerate(results):
        assert entry.result.n_frames == frames_per
        assert entry.result.checksum == float(i) * frames_per


def test_descriptor_backlog_does_not_wedge_the_dispatcher():
    """Regression: with hundreds of streams per shard the BlockMeta
    descriptors alone outgrow the shm ring's descriptor pipe while the
    worker is blocked sending results; the feeder thread must be able
    to block there without stalling the parent's result drain."""
    n = 1500  # 750 descriptors per shard >> ~560 that fit in 64 KiB
    tasks = [FleetTask(f"cam-{i:04d}", np.full(4, float(i)))
             for i in range(n)]
    results = FleetExecutor(
        lambda task, seed: _EchoPipeline(payload_floats=64),
        workers=2, transport="shm").run(tasks)
    assert len(results) == n
    for i, entry in enumerate(results):
        assert entry.result.checksum == float(i) * 4


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_worker_death_with_frames_still_pending_recovers(transport):
    """Regression: a worker that dies while the parent still has frame
    blocks queued for it (more bytes than the OS pipe buffer) must
    break the transport under the feeder -- not wedge the dispatch --
    and its shard must be re-dispatched to completion."""
    n, frames_per = 6, 3000
    tasks = [FleetTask(f"cam-{i}", np.full(frames_per, float(i)),
                       crash_at_frame=frames_per // 2 if i == 0 else None)
             for i in range(n)]
    results = FleetExecutor(
        lambda task, seed: _EchoPipeline(payload_floats=16),
        workers=2, transport=transport, max_restarts=1,
        batch_size=512).run(tasks)
    by_id = {r.stream_id: r for r in results}
    assert by_id["cam-0"].attempts == 2
    for i in range(n):
        assert by_id[f"cam-{i}"].result.checksum == float(i) * frames_per


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_for_matches_run_when_tasks_are_fewer_than_workers():
    """Regression: with a forced steal_order and fewer tasks than
    workers, plan_for used to raise (the order no longer permuted the
    clamped worker count) while run() executed fine on the seeded
    fallback; both must agree."""
    tasks = make_tasks(n_streams=2, frames=30)
    executor = FleetExecutor(factory, workers=4, steal_order=[3, 1, 2, 0])
    plan = executor.plan_for(tasks)
    executor.run(tasks)
    executed = executor.last_plans[0]
    assert plan.workers == executed.workers == 2
    assert plan.assignments == executed.assignments


# ----------------------------------------------------------------------
# failures and validation
# ----------------------------------------------------------------------
def _broken_factory(task, seed):
    raise RuntimeError("bundle store unavailable")


@pytest.mark.parametrize("workers", [0, 2])
def test_real_failures_fail_fast(workers):
    tasks = make_tasks(n_streams=2, frames=40)
    executor = FleetExecutor(_broken_factory, workers=workers)
    if workers == 0:
        with pytest.raises(RuntimeError):
            executor.run(tasks)
    else:
        with pytest.raises(FleetError, match="failed in a worker"):
            executor.run(tasks)


def test_simulated_crash_is_not_a_library_error():
    from repro.errors import ReproError
    assert not issubclass(SimulatedWorkerCrash, ReproError)


def test_duplicate_stream_ids_rejected():
    frames = make_tasks(n_streams=1, frames=20)[0].frames
    tasks = [FleetTask("cam", frames), FleetTask("cam", frames)]
    with pytest.raises(ConfigurationError, match="unique"):
        FleetExecutor(factory).run(tasks)


@pytest.mark.parametrize("kwargs", [
    {"workers": -1},
    {"batch_size": 0},
    {"checkpoint_every": 0, "checkpoint_dir": "/tmp/x"},
    {"checkpoint_every": 10},  # checkpoint_every without a dir
    {"max_restarts": -1},
    {"transport": "carrier-pigeon"},
])
def test_executor_configuration_validation(kwargs):
    with pytest.raises(ConfigurationError):
        FleetExecutor(factory, **kwargs)
