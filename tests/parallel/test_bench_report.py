"""The BENCH_pipeline.json contract: schema, validator, read/write."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.errors import BenchReportError
from repro.parallel import (
    BENCH_SCHEMA,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def minimal_report() -> dict:
    mode = {"frames": 100, "elapsed_s": 0.5, "fps": 200.0}
    stage = {"sequential_us_per_frame": 10.0, "batched_us_per_frame": 2.0,
             "speedup": 5.0}
    return {
        "schema_version": 1,
        "benchmark": "unit-test",
        "quick": True,
        "config": {"streams": 1, "frames_per_stream": 100,
                   "frame_shape": [8], "batch_size": 64, "workers": 0,
                   "reference_size": 50, "latent_dim": 8},
        "modes": {"sequential": dict(mode),
                  "batched": {**mode, "speedup_vs_sequential": 5.0,
                              "batch_size": 64},
                  "fleet": {**mode, "workers": 2, "batch_size": 64}},
        "stages": {"encode": dict(stage), "pvalue": dict(stage),
                   "martingale": dict(stage), "selection": dict(stage)},
    }


def test_minimal_report_validates():
    validate_bench_report(minimal_report())


@pytest.mark.parametrize("mutate,match", [
    (lambda r: r.pop("modes"), "missing required key"),
    (lambda r: r.update(schema_version=2), "not in"),
    (lambda r: r.update(extra="x"), "unexpected key"),
    (lambda r: r["modes"]["batched"].update(fps="fast"), "expected number"),
    (lambda r: r["config"].update(streams=0), "minimum"),
    (lambda r: r["modes"]["sequential"].update(elapsed_s=0.0),
     "exclusiveMinimum"),
    (lambda r: r["config"].update(streams=True), "expected integer"),
    (lambda r: r["config"].update(frame_shape=[8, "x"]), "expected integer"),
    (lambda r: r["stages"]["encode"].pop("speedup"), "missing required key"),
])
def test_schema_violations_are_rejected(mutate, match):
    report = copy.deepcopy(minimal_report())
    mutate(report)
    with pytest.raises(BenchReportError, match=match):
        validate_bench_report(report)


def test_write_then_load_round_trips(tmp_path):
    path = str(tmp_path / "report.json")
    report = minimal_report()
    write_bench_report(path, report)
    assert load_bench_report(path) == report


def test_write_refuses_invalid_report(tmp_path):
    path = str(tmp_path / "report.json")
    broken = minimal_report()
    broken.pop("stages")
    with pytest.raises(BenchReportError):
        write_bench_report(path, broken)
    assert not os.path.exists(path)


def test_load_rejects_malformed_json(tmp_path):
    path = tmp_path / "report.json"
    path.write_text("{not json")
    with pytest.raises(BenchReportError, match="not valid JSON"):
        load_bench_report(str(path))


def test_schema_is_itself_json_serializable():
    json.dumps(BENCH_SCHEMA)


def test_committed_report_is_valid():
    """The report at the repo root must always satisfy the schema."""
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    assert os.path.exists(path), "BENCH_pipeline.json must be committed"
    report = load_bench_report(path)
    assert report["schema_version"] == 1
    assert report["modes"]["batched"]["fps"] > 0
