"""The BENCH_pipeline.json contract: schema, validator, upgrade, I/O."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.errors import BenchReportError
from repro.parallel import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    load_bench_report,
    upgrade_bench_report,
    validate_bench_report,
    write_bench_report,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def minimal_report() -> dict:
    mode = {"frames": 100, "elapsed_s": 0.5, "fps": 200.0}
    stage = {"sequential_us_per_frame": 10.0, "batched_us_per_frame": 2.0,
             "speedup": 5.0}
    return {
        "schema_version": 2,
        "benchmark": "unit-test",
        "quick": True,
        "config": {"streams": 1, "frames_per_stream": 100,
                   "frame_shape": [8], "batch_size": 64, "workers": 0,
                   "reference_size": 50, "latent_dim": 8,
                   "transport": "shm", "host_cores": 1},
        "modes": {"sequential": dict(mode),
                  "batched": {**mode, "speedup_vs_sequential": 5.0,
                              "batch_size": 64},
                  "fleet": {**mode, "workers": 2, "batch_size": 64,
                            "transport": "shm"}},
        "stages": {"encode": dict(stage), "pvalue": dict(stage),
                   "martingale": dict(stage), "selection": dict(stage)},
        "scaling": [{"workers": 4, "streams": 100, "frames": 10000,
                     "speedup_vs_sequential": 18.5,
                     "critical_path_frames": 2700, "balance": 0.97,
                     "steals": 4},
                    {"workers": 1, "streams": 100, "frames": 10000,
                     "speedup_vs_sequential": 5.0}],
    }


def legacy_v1_report() -> dict:
    report = minimal_report()
    report["schema_version"] = 1
    del report["scaling"]
    del report["config"]["transport"]
    del report["config"]["host_cores"]
    del report["modes"]["fleet"]["transport"]
    report["modes"]["fleet"]["speedup_vs_sequential"] = 3.6
    return report


def test_minimal_report_validates():
    validate_bench_report(minimal_report())


@pytest.mark.parametrize("mutate,match", [
    (lambda r: r.pop("modes"), "missing required key"),
    (lambda r: r.pop("scaling"), "missing required key"),
    (lambda r: r.update(schema_version=3), "not in"),
    (lambda r: r.update(extra="x"), "unexpected key"),
    (lambda r: r["modes"]["batched"].update(fps="fast"), "expected number"),
    (lambda r: r["config"].update(streams=0), "minimum"),
    (lambda r: r["modes"]["sequential"].update(elapsed_s=0.0),
     "exclusiveMinimum"),
    (lambda r: r["config"].update(streams=True), "expected integer"),
    (lambda r: r["config"].update(frame_shape=[8, "x"]), "expected integer"),
    (lambda r: r["config"].update(transport="carrier-pigeon"), "not in"),
    (lambda r: r["stages"]["encode"].pop("speedup"), "missing required key"),
    (lambda r: r["scaling"][0].pop("workers"), "missing required key"),
    (lambda r: r["scaling"][0].update(steals=-1), "minimum"),
    (lambda r: r["scaling"][0].update(surprise=1), "unexpected key"),
    (lambda r: r["scaling"][1].update(speedup_vs_sequential=0.0),
     "exclusiveMinimum"),
])
def test_schema_violations_are_rejected(mutate, match):
    report = copy.deepcopy(minimal_report())
    mutate(report)
    with pytest.raises(BenchReportError, match=match):
        validate_bench_report(report)


def test_write_then_load_round_trips(tmp_path):
    path = str(tmp_path / "report.json")
    report = minimal_report()
    write_bench_report(path, report)
    assert load_bench_report(path) == report


def test_write_refuses_invalid_report(tmp_path):
    path = str(tmp_path / "report.json")
    broken = minimal_report()
    broken.pop("stages")
    with pytest.raises(BenchReportError):
        write_bench_report(path, broken)
    assert not os.path.exists(path)


def test_load_rejects_malformed_json(tmp_path):
    path = tmp_path / "report.json"
    path.write_text("{not json")
    with pytest.raises(BenchReportError, match="not valid JSON"):
        load_bench_report(str(path))


def test_schema_is_itself_json_serializable():
    json.dumps(BENCH_SCHEMA)


# ----------------------------------------------------------------------
# the v1 -> v2 upgrade shim
# ----------------------------------------------------------------------
class TestUpgradeShim:
    def test_v1_upgrades_to_valid_v2(self):
        upgraded = upgrade_bench_report(legacy_v1_report())
        validate_bench_report(upgraded)
        assert upgraded["schema_version"] == BENCH_SCHEMA_VERSION

    def test_v1_scaling_synthesised_from_fleet_mode(self):
        legacy = legacy_v1_report()
        upgraded = upgrade_bench_report(legacy)
        (entry,) = upgraded["scaling"]
        fleet = legacy["modes"]["fleet"]
        assert entry == {
            "workers": fleet["workers"],
            "streams": legacy["config"]["streams"],
            "frames": fleet["frames"],
            "speedup_vs_sequential": fleet["speedup_vs_sequential"],
            "elapsed_s": fleet["elapsed_s"],
            "fps": fleet["fps"],
        }

    def test_upgrade_does_not_mutate_input(self):
        legacy = legacy_v1_report()
        snapshot = copy.deepcopy(legacy)
        upgrade_bench_report(legacy)
        assert legacy == snapshot

    def test_v2_passes_through_unchanged(self):
        report = minimal_report()
        assert upgrade_bench_report(report) is report

    def test_unknown_version_is_rejected(self):
        with pytest.raises(BenchReportError, match="cannot upgrade"):
            upgrade_bench_report({"schema_version": 99})
        with pytest.raises(BenchReportError, match="must be an object"):
            upgrade_bench_report([1, 2])

    def test_load_upgrades_v1_documents(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy_v1_report()))
        report = load_bench_report(str(path))
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["scaling"]


def test_committed_report_is_valid():
    """The report at the repo root must always satisfy the schema and
    carry the fleet scaling sweep."""
    path = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
    assert os.path.exists(path), "BENCH_pipeline.json must be committed"
    report = load_bench_report(path)
    assert report["schema_version"] == BENCH_SCHEMA_VERSION
    assert report["modes"]["batched"]["fps"] > 0
    workers = {entry["workers"] for entry in report["scaling"]}
    assert {1, 2, 4, 8} <= workers, (
        "committed sweep must cover 1/2/4/8 workers")
