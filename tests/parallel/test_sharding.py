"""The shard planner: deterministic plans, load balance, steal safety.

``plan_shards`` is the fleet's scheduler, and its entire value is that
it is boring: a pure function of ``(loads, workers, seed)`` whose
output never depends on wall clock, host, or interleaving.  The suite
pins that purity (including a golden plan for a fixed seed), checks the
plan is a real partition, that stealing only improves the critical
path, and that executed fleet results are invariant under worker count
and adversarial steal orders.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.parallel import FleetExecutor, FleetTask, plan_shards

from tests.parallel.conftest import (
    gaussian_stream,
    make_pipeline,
    result_sig,
)

_LOADS = st.lists(st.integers(0, 500), min_size=0, max_size=24)
_WORKERS = st.integers(1, 8)


def factory(task, seed):
    return make_pipeline(seed=seed)


# ----------------------------------------------------------------------
# plan structure and determinism
# ----------------------------------------------------------------------
class TestPlanning:
    @settings(max_examples=80, deadline=None)
    @given(loads=_LOADS, workers=_WORKERS, seed=st.integers(0, 1000))
    def test_plan_is_a_partition(self, loads, workers, seed):
        plan = plan_shards(loads, workers, seed=seed)
        flat = sorted(itertools.chain.from_iterable(plan.assignments))
        assert flat == list(range(len(loads)))
        assert len(plan.assignments) == workers
        assert plan.total_load == sum(loads)
        assert plan.critical_path == max(plan.worker_loads, default=0)

    @settings(max_examples=40, deadline=None)
    @given(loads=_LOADS, workers=_WORKERS, seed=st.integers(0, 1000))
    def test_plan_is_deterministic(self, loads, workers, seed):
        first = plan_shards(loads, workers, seed=seed)
        second = plan_shards(loads, workers, seed=seed)
        assert first.assignments == second.assignments
        assert first.steals == second.steals

    @settings(max_examples=40, deadline=None)
    @given(loads=_LOADS, workers=_WORKERS, seed=st.integers(0, 1000))
    def test_stealing_never_hurts_the_critical_path(self, loads, workers,
                                                    seed):
        stolen = plan_shards(loads, workers, seed=seed, steal=True)
        plain = plan_shards(loads, workers, seed=seed, steal=False)
        assert stolen.critical_path <= plain.critical_path

    @settings(max_examples=40, deadline=None)
    @given(loads=_LOADS, workers=_WORKERS, seed=st.integers(0, 1000))
    def test_critical_path_bounds(self, loads, workers, seed):
        plan = plan_shards(loads, workers, seed=seed)
        if sum(loads):
            # no plan beats the pigeonhole bounds ...
            assert plan.critical_path >= max(loads)
            assert plan.critical_path >= -(-sum(loads) // workers)
            # ... and efficiency / speedup stay in their ranges
            assert 0.0 < plan.balance <= 1.0
            assert 1.0 <= plan.speedup() <= workers

    def test_one_worker_is_submission_order(self):
        plan = plan_shards([30, 10, 50, 20], 1, seed=7)
        assert plan.assignments == [[0, 1, 2, 3]]
        assert plan.steals == []

    def test_steal_disabled_is_round_robin(self):
        plan = plan_shards([5, 6, 7, 8, 9], 2, steal=False)
        assert plan.assignments == [[0, 2, 4], [1, 3]]
        assert plan.initial == [[0, 2, 4], [1, 3]]
        assert plan.steals == []

    def test_imbalanced_deal_triggers_steals(self):
        """One giant stream round-robins next to many small ones; the
        idle workers must raid the overloaded queue."""
        loads = [1000, 1, 1, 1, 1, 1, 1, 1]
        plan = plan_shards(loads, 2, seed=0)
        assert plan.steals, "no steals on a pathologically imbalanced deal"
        assert plan.critical_path == 1000  # the giant stream lower-bounds it
        assert plan.balance > 0.5

    def test_golden_plan_for_fixed_seed(self):
        """Regression pin: the exact plan for a fixed workload and seed.
        If this changes, every committed scaling number changes with it
        -- bump deliberately, never silently."""
        loads = [120, 45, 200, 10, 80, 160, 30, 95]
        plan = plan_shards(loads, 4, seed=0)
        assert plan.initial == [[0, 4], [1, 5], [2, 6], [3, 7]]
        assert plan.assignments == [[0, 6], [1, 5], [2], [3, 7, 4]]
        assert [(s.virtual_time, s.thief, s.victim, s.task_index)
                for s in plan.steals] == [(105, 3, 0, 4), (120, 0, 2, 6)]
        assert plan.worker_loads == [150, 205, 200, 185]
        assert plan.critical_path == 205
        assert plan.speedup() == pytest.approx(740 / 205)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="workers"):
            plan_shards([1, 2], 0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            plan_shards([1, -2], 2)
        with pytest.raises(ConfigurationError, match="permute"):
            plan_shards([1, 2, 3], 2, steal_order=[0, 0])
        with pytest.raises(ConfigurationError, match="permute"):
            plan_shards([1, 2, 3], 2, steal_order=[1, 2])


# ----------------------------------------------------------------------
# executed results are invariant under the plan
# ----------------------------------------------------------------------
def heterogeneous_tasks(n=8):
    """Stream lengths spread 3x so the planner has real imbalance."""
    tasks = []
    for index in range(n):
        length = 40 + 23 * index
        frames = gaussian_stream(700 + index,
                                 [(0.0, length // 2),
                                  (6.0, length - length // 2)])
        tasks.append(FleetTask(stream_id=f"cam-{index}", frames=frames))
    return tasks


def sigs(results):
    return [(entry.stream_id, result_sig(entry.result))
            for entry in results]


class TestExecutionInvariance:
    def test_results_identical_across_worker_counts(self):
        tasks = heterogeneous_tasks()
        reference = sigs(FleetExecutor(factory, workers=0).run(tasks))
        for workers in (1, 2, 4, 8):
            executor = FleetExecutor(factory, workers=workers)
            assert sigs(executor.run(tasks)) == reference, \
                f"workers={workers} diverged"
            # and the executed plan matches the advertised one
            assert executor.last_plans[0].assignments == \
                executor.plan_for(tasks, workers=workers).assignments

    def test_forced_steal_orders_never_change_results(self):
        tasks = heterogeneous_tasks(n=6)
        reference = sigs(FleetExecutor(factory, workers=0).run(tasks))
        for order in itertools.permutations(range(3)):
            executor = FleetExecutor(factory, workers=3,
                                     steal_order=list(order))
            assert sigs(executor.run(tasks)) == reference, \
                f"steal_order={order} changed results"

    def test_steal_disabled_never_changes_results(self):
        tasks = heterogeneous_tasks(n=5)
        reference = sigs(FleetExecutor(factory, workers=0).run(tasks))
        executor = FleetExecutor(factory, workers=2, steal=False)
        assert sigs(executor.run(tasks)) == reference
        assert executor.last_plans[0].steals == []

    def test_last_plans_use_submission_indices(self):
        tasks = heterogeneous_tasks(n=6)
        executor = FleetExecutor(factory, workers=3)
        executor.run(tasks)
        (plan,) = executor.last_plans
        flat = sorted(itertools.chain.from_iterable(plan.assignments))
        assert flat == list(range(len(tasks)))
        assert plan.loads == [len(task.frames) for task in tasks]
