"""Tests for :mod:`repro.parallel` and the batched execution paths."""
