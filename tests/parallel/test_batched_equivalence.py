"""Property tests: every batched kernel is bit-identical to its scalar loop.

The batched execution paths (``observe_batch``, ``update_batch``,
``PValueCalculator.batch``, ``process_batched``, MSBI's batched testing)
all promise *bit* equivalence with their sequential counterparts -- not
"numerically close", but the same floats, the same RNG stream consumption
and the same downstream decisions.  These tests state that contract as
hypothesis properties over seeds, chunkings and p-value streams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.betting import LogScore, MixtureBetting, PowerBetting
from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.martingale import AdditiveMartingale, MultiplicativeMartingale
from repro.core.nonconformity import KNNDistance
from repro.core.pvalues import PValueCalculator
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.parallel import BatchedFeatureExtractor

from tests.parallel.conftest import (
    DIM,
    gaussian_stream,
    make_pipeline,
    make_registry,
    result_sig,
)

# p-value streams that visit every CUSUM regime: long null runs (clamped
# at zero), drift runs (monotone growth) and alternating chatter
p_streams = st.lists(
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)


# ----------------------------------------------------------------------
# stage kernels
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(ps=p_streams, cusum=st.booleans(), split=st.integers(0, 200))
def test_additive_update_batch_matches_loop(ps, cusum, split):
    scalar = AdditiveMartingale(LogScore(PowerBetting(0.1)), window=3,
                                cusum_reset=cusum)
    batched = AdditiveMartingale(LogScore(PowerBetting(0.1)), window=3,
                                 cusum_reset=cusum)
    states = [scalar.update(p) for p in ps]
    split = min(split, len(ps))
    chunks = [ps[:split], ps[split:]]
    batches = [batched.update_batch(np.asarray(chunk))
               for chunk in chunks if chunk]
    values = [v for batch in batches for v in batch.values.tolist()]
    drift = [d for batch in batches for d in batch.drift.tolist()]
    assert values == [s.value for s in states]
    assert drift == [s.drift for s in states]
    assert batched.history == scalar.history
    assert batched.step == scalar.step


@settings(max_examples=25, deadline=None)
@given(ps=st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1,
                   max_size=120),
       split=st.integers(0, 120))
@pytest.mark.parametrize("betting", [PowerBetting(0.1), MixtureBetting()])
def test_multiplicative_update_batch_matches_loop(betting, ps, split):
    scalar = MultiplicativeMartingale(betting, significance=0.05)
    batched = MultiplicativeMartingale(betting, significance=0.05)
    states = [scalar.update(p) for p in ps]
    split = min(split, len(ps))
    batches = [batched.update_batch(np.asarray(chunk))
               for chunk in (ps[:split], ps[split:]) if chunk]
    values = [v for batch in batches for v in batch.values.tolist()]
    drift = [d for batch in batches for d in batch.drift.tolist()]
    assert values == [s.value for s in states]
    assert drift == [s.drift for s in states]
    assert batched.log_value == scalar.log_value
    assert batched.max_log_value == scalar.max_log_value


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), ties=st.booleans())
def test_pvalue_batch_matches_scalar_stream(seed, ties):
    rng = np.random.default_rng(seed)
    reference = rng.normal(1.0, 0.2, size=50)
    if ties:
        # draw scores from the reference itself so exact ties exercise the
        # tie-breaking uniform draws
        scores = rng.choice(reference, size=40)
    else:
        scores = rng.normal(1.0, 0.2, size=40)
    scalar_calc = PValueCalculator(reference, seed=9)
    batch_calc = PValueCalculator(reference, seed=9)
    scalar = [scalar_calc(float(s)) for s in scores]
    batched = batch_calc.batch(scores)
    assert batched.tolist() == scalar
    # both consumed the identical number of uniforms: streams still aligned
    assert batch_calc.rng_state() == scalar_calc.rng_state()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 40))
def test_knn_score_batch_matches_per_point(seed, n):
    rng = np.random.default_rng(seed)
    bag = rng.normal(0.0, 1.0, size=(60, DIM))
    points = rng.normal(0.0, 1.0, size=(n, DIM))
    measure = KNNDistance(5)
    batched = measure.score_batch(points, bag)
    scalar = [measure.score(point, bag) for point in points]
    assert batched.tolist() == scalar


@settings(max_examples=30, deadline=None)
@given(ps=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                   max_size=100))
def test_log_score_batch_matches_scalar(ps):
    score = LogScore(PowerBetting(0.1))
    batched = score.batch(np.asarray(ps))
    assert batched.tolist() == [score(p) for p in ps]


# ----------------------------------------------------------------------
# drift inspector
# ----------------------------------------------------------------------
@pytest.mark.parametrize("martingale,betting", [
    ("additive", "power"),
    ("additive", "mixture"),
    ("multiplicative", "power"),
])
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), split=st.integers(0, 60))
def test_observe_batch_matches_observe_loop(martingale, betting, seed, split):
    rng = np.random.default_rng(seed)
    reference = rng.normal(0.0, 1.0, size=(80, DIM))
    frames = np.vstack([rng.normal(0.0, 1.0, size=(30, DIM)),
                        rng.normal(3.0, 1.0, size=(30, DIM))])
    config = DriftInspectorConfig(seed=7, martingale=martingale,
                                  betting=betting)
    scalar = DriftInspector(reference, config=config)
    batched = DriftInspector(reference, config=config)
    loop = [scalar.observe(frame) for frame in frames]
    split = min(split, len(frames))
    block = [d for chunk in (frames[:split], frames[split:]) if len(chunk)
             for d in batched.observe_batch(chunk)]
    assert [(d.frame_index, d.nonconformity, d.p_value, d.martingale, d.drift)
            for d in block] == \
        [(d.frame_index, d.nonconformity, d.p_value, d.martingale, d.drift)
         for d in loop]
    assert batched.drift_frame == scalar.drift_frame
    assert batched.state_dict() == scalar.state_dict()


def test_observe_batch_interleaves_with_observe():
    """Sequential and batched observation share one inspector freely."""
    rng = np.random.default_rng(3)
    reference = rng.normal(0.0, 1.0, size=(80, DIM))
    frames = rng.normal(0.0, 1.0, size=(40, DIM))
    plain = DriftInspector(reference, config=DriftInspectorConfig(seed=1))
    mixed = DriftInspector(reference, config=DriftInspectorConfig(seed=1))
    expected = [plain.observe(frame) for frame in frames]
    got = list(mixed.observe_batch(frames[:15]))
    got.extend(mixed.observe(frame) for frame in frames[15:25])
    got.extend(mixed.observe_batch(frames[25:]))
    assert [(d.frame_index, d.p_value, d.martingale, d.drift) for d in got] \
        == [(d.frame_index, d.p_value, d.martingale, d.drift)
            for d in expected]
    assert mixed.state_dict() == plain.state_dict()


def test_reset_with_reference_matches_fresh_inspector():
    """An in-place reference swap is indistinguishable from a rebuild."""
    rng = np.random.default_rng(8)
    first = rng.normal(0.0, 1.0, size=(80, DIM))
    second = rng.normal(5.0, 1.0, size=(80, DIM))
    frames = rng.normal(5.0, 1.0, size=(30, DIM))
    config = DriftInspectorConfig(seed=11)
    swapped = DriftInspector(first, config=config)
    swapped.observe_batch(rng.normal(0.0, 1.0, size=(20, DIM)))
    swapped.reset(reference=second)
    fresh = DriftInspector(second, config=config)
    assert [(d.p_value, d.martingale, d.drift)
            for d in swapped.observe_batch(frames)] == \
        [(d.p_value, d.martingale, d.drift)
         for d in fresh.observe_batch(frames)]
    assert swapped.state_dict() == fresh.state_dict()


# ----------------------------------------------------------------------
# end-to-end pipeline and selection
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), batch_size=st.integers(1, 96))
def test_process_batched_matches_process(seed, batch_size):
    stream = gaussian_stream(seed, [(0.0, 90), (6.0, 90)])
    sequential = make_pipeline().process(stream)
    batched = make_pipeline().process_batched(stream, batch_size=batch_size)
    assert result_sig(batched) == result_sig(sequential)


def test_process_batched_chunk_boundaries_are_invisible():
    """Splitting one stream across step_batch calls changes nothing."""
    stream = gaussian_stream(99, [(0.0, 100), (6.0, 80)])
    whole = make_pipeline()
    whole.start()
    whole.step_batch(stream, batch_size=64)
    whole.flush()
    pieces = make_pipeline()
    pieces.start()
    bounds = [0, 37, 38, 121, len(stream)]
    for start, stop in zip(bounds[:-1], bounds[1:]):
        pieces.step_batch(stream[start:stop], batch_size=64)
    pieces.flush()
    assert result_sig(pieces.result()) == result_sig(whole.result())


def test_drift_in_final_partial_batch_resolves_on_flush():
    """Drift landing inside the trailing partial chunk must leave the
    pipeline buffering, and flush must resolve it exactly as the
    sequential path does (the reference-swap/flush interplay)."""
    # 100 null frames then a drift tail sized so detection fires but the
    # selection window cannot fill before the stream ends
    stream = gaussian_stream(21, [(0.0, 100), (6.0, 15)])
    sequential = make_pipeline()
    sequential.start()
    for frame in stream:
        sequential.step(frame)
    seq_pre_flush = len(sequential._records)
    sequential.flush()
    expected = sequential.result()
    assert expected.detections, "scenario must actually drift"
    batched = make_pipeline()
    batched.start()
    batched.step_batch(stream, batch_size=64)
    assert len(batched._records) == seq_pre_flush
    batched.flush()
    assert result_sig(batched.result()) == result_sig(expected)


@pytest.mark.parametrize("window_frames", [8, 24])
def test_msbi_batched_testing_matches_sequential(window_frames):
    registry = make_registry()
    rng = np.random.default_rng(5)
    frames = rng.normal(6.0, 1.0, size=(window_frames, DIM))
    results = {}
    for batched in (False, True):
        selector = MSBI(registry, MSBIConfig(
            window_size=window_frames, seed=0, batched_testing=batched))
        selected = selector.select(frames)
        results[batched] = (selected, selector.last_report.rounds,
                            selector.last_report.drift_flags)
    assert results[True] == results[False]


# ----------------------------------------------------------------------
# feature extractor
# ----------------------------------------------------------------------
class _ElementwiseEmbedder:
    """Batched == per-frame exactly (no matmul reassociation)."""

    def embed(self, frames):
        arr = np.asarray(frames, dtype=np.float64)
        return (arr * 2.0 + 1.0).reshape(arr.shape[0], -1)


class _SamplingEmbedder:
    """Adds posterior noise from the provided rng (stream-order test)."""

    def sample_embed(self, frames, rng=None):
        arr = np.asarray(frames, dtype=np.float64).reshape(
            np.asarray(frames).shape[0], -1)
        return arr + rng.standard_normal(arr.shape)


def test_extractor_batched_matches_per_frame_for_elementwise():
    frames = np.random.default_rng(0).normal(size=(50, DIM))
    extractor = BatchedFeatureExtractor(_ElementwiseEmbedder(), chunk_size=16)
    per_frame = np.vstack([_ElementwiseEmbedder().embed(frames[i:i + 1])
                           for i in range(len(frames))])
    assert np.array_equal(extractor.extract(frames), per_frame)


def test_extractor_exact_mode_consumes_rng_like_per_frame():
    frames = np.random.default_rng(1).normal(size=(30, DIM))
    exact = BatchedFeatureExtractor(_SamplingEmbedder(), exact=True, seed=5)
    manual_rng = np.random.default_rng(5)
    manual = np.vstack([_SamplingEmbedder().sample_embed(frames[i:i + 1],
                                                         rng=manual_rng)
                        for i in range(len(frames))])
    assert np.array_equal(exact.extract(frames), manual)


def test_extractor_batched_mode_keeps_rng_stream_aligned():
    """Chunked sampling consumes the same bit stream as per-frame draws
    (numpy fills arrays from one stream), so latents match exactly for a
    sampling embedder whose deterministic part is elementwise."""
    frames = np.random.default_rng(2).normal(size=(40, DIM))
    batched = BatchedFeatureExtractor(_SamplingEmbedder(), chunk_size=16,
                                      seed=6)
    manual_rng = np.random.default_rng(6)
    manual = np.vstack([_SamplingEmbedder().sample_embed(frames[i:i + 1],
                                                         rng=manual_rng)
                        for i in range(len(frames))])
    assert np.array_equal(batched.extract(frames), manual)


def test_extractor_rejects_bad_chunk_size():
    with pytest.raises(Exception):
        BatchedFeatureExtractor(_ElementwiseEmbedder(), chunk_size=0)
