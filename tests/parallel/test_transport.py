"""Frame-transport contract: bit-exact round-trips, handoff discipline.

The shared-memory ring is the fleet's data plane; if it ever corrupts a
byte, every determinism guarantee downstream is fiction.  The property
suite round-trips arbitrary frame batches -- dtypes, shapes, strides --
through the ring and requires bit-exact payloads, then equivalence-tests
the ring against the legacy pipe transport on identical inputs.  The
ownership-handoff rules (FIFO release, slot capacity, closed-channel
pushes) must fail loudly, never corrupt silently.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError, FleetError
from repro.parallel import (
    TRANSPORTS,
    FrameRing,
    PipeChannel,
    make_transport,
)
from repro.parallel.transport import drain_all

CTX = multiprocessing.get_context("fork")


def close(channel):
    channel.close_send()
    channel.unlink()


# a frame batch: any plain numeric dtype, any small shape
_DTYPES = st.one_of(
    hnp.integer_dtypes(endianness="="),
    hnp.unsigned_integer_dtypes(endianness="="),
    hnp.floating_dtypes(endianness="=", sizes=(32, 64)),
    st.just(np.dtype(bool)),
)
_BATCHES = _DTYPES.flatmap(
    lambda dtype: hnp.arrays(
        dtype=dtype,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=0,
                               max_side=6)))


@st.composite
def batch_lists(draw):
    return draw(st.lists(_BATCHES, min_size=1, max_size=5))


# ----------------------------------------------------------------------
# property: bit-exact round-trips, shm == pipe
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(batches=batch_lists())
    def test_shm_round_trip_is_bit_exact(self, batches):
        slot_bytes = max(b.nbytes for b in batches)
        ring = FrameRing(CTX, slots=len(batches), slot_bytes=slot_bytes)
        try:
            for i, batch in enumerate(batches):
                ring.push(f"b{i}", batch)
            ring.close_send()
            out = drain_all(ring)
        finally:
            ring.unlink()
        assert [key for key, _ in out] == [f"b{i}"
                                           for i in range(len(batches))]
        for batch, (_, got) in zip(batches, out):
            assert got.dtype == batch.dtype
            assert got.shape == batch.shape
            # bit-exact, not just value-equal (NaN payloads included)
            assert got.tobytes() == np.ascontiguousarray(batch).tobytes()

    @settings(max_examples=30, deadline=None)
    @given(batches=batch_lists())
    def test_shm_equivalent_to_pipe(self, batches):
        payloads = {}
        for kind in TRANSPORTS:
            channel = make_transport(
                kind, CTX, slots=len(batches),
                slot_bytes=max(b.nbytes for b in batches))
            try:
                for i, batch in enumerate(batches):
                    channel.push(f"b{i}", batch)
                channel.close_send()
                payloads[kind] = drain_all(channel)
            finally:
                channel.unlink()
        assert len(payloads["shm"]) == len(payloads["pipe"])
        for (k_shm, a), (k_pipe, b) in zip(payloads["shm"],
                                           payloads["pipe"]):
            assert k_shm == k_pipe
            assert a.dtype == b.dtype and a.shape == b.shape
            assert a.tobytes() == b.tobytes()

    def test_non_contiguous_input_is_compacted_not_corrupted(self):
        base = np.arange(48, dtype=np.float64).reshape(6, 8)
        for view in (base[::2], base[:, ::2], base[::-1], base.T):
            ring = FrameRing(CTX, slots=1, slot_bytes=view.nbytes)
            ring.push("v", view)
            meta, got = ring.pop()
            assert np.array_equal(got, view)
            assert got.flags.c_contiguous
            ring.release(meta)
            close(ring)

    def test_pop_returns_read_only_zero_copy_view(self):
        ring = FrameRing(CTX, slots=1, slot_bytes=64)
        ring.push("x", np.arange(8, dtype=np.float64))
        meta, view = ring.pop()
        assert not view.flags.writeable
        assert not view.flags.owndata  # a view into the segment, no copy
        with pytest.raises(ValueError):
            view[0] = 1.0
        ring.release(meta)
        close(ring)

    def test_slot_reuse_after_release(self):
        """More blocks than slots: releases recycle slots in order and
        payloads stay intact."""
        ring = FrameRing(CTX, slots=2, slot_bytes=32)
        out = []
        for i in range(6):
            ring.push(f"k{i}", np.full(4, i, dtype=np.float64))
            meta, view = ring.pop()
            out.append((meta.key, np.array(view, copy=True)))
            ring.release(meta)
        assert [k for k, _ in out] == [f"k{i}" for i in range(6)]
        for i, (_, payload) in enumerate(out):
            assert np.array_equal(payload, np.full(4, float(i)))
        close(ring)


# ----------------------------------------------------------------------
# handoff discipline: loud failures, never silent corruption
# ----------------------------------------------------------------------
class TestHandoff:
    def test_out_of_order_release_is_rejected(self):
        ring = FrameRing(CTX, slots=3, slot_bytes=32)
        ring.push("a", np.zeros(2))
        ring.push("b", np.ones(2))
        meta_a, _ = ring.pop()
        meta_b, _ = ring.pop()
        with pytest.raises(FleetError, match="FIFO order"):
            ring.release(meta_b)
        ring.release(meta_a)  # correct order still works
        ring.release(meta_b)
        close(ring)

    def test_oversized_block_is_rejected(self):
        ring = FrameRing(CTX, slots=1, slot_bytes=8)
        with pytest.raises(FleetError, match="bytes"):
            ring.push("big", np.zeros(100, dtype=np.float64))
        close(ring)

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_object_dtype_is_rejected(self, kind):
        channel = make_transport(kind, CTX, slots=1, slot_bytes=64)
        with pytest.raises(ConfigurationError, match="object-dtype"):
            channel.push("bad", np.array([object()], dtype=object))
        close(channel)

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_push_after_close_is_rejected(self, kind):
        channel = make_transport(kind, CTX, slots=1, slot_bytes=64)
        channel.close_send()
        with pytest.raises(FleetError, match="closed"):
            channel.push("late", np.zeros(2))
        channel.unlink()

    def test_end_of_stream_is_none(self):
        for kind in TRANSPORTS:
            channel = make_transport(kind, CTX, slots=1, slot_bytes=64)
            channel.close_send()
            assert channel.pop() is None
            channel.unlink()

    def test_zero_byte_blocks_round_trip(self):
        ring = FrameRing(CTX, slots=2, slot_bytes=0)
        ring.push("empty", np.zeros((0, 4), dtype=np.float64))
        meta, view = ring.pop()
        assert view.shape == (0, 4)
        ring.release(meta)
        close(ring)

    def test_unlink_is_idempotent(self):
        ring = FrameRing(CTX, slots=1, slot_bytes=8)
        ring.unlink()
        ring.unlink()

    @pytest.mark.parametrize("kwargs", [
        {"slots": 0, "slot_bytes": 8},
        {"slots": -1, "slot_bytes": 8},
        {"slots": 1, "slot_bytes": -1},
    ])
    def test_ring_configuration_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FrameRing(CTX, **kwargs)

    def test_unknown_transport_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            make_transport("carrier-pigeon", CTX, slots=1, slot_bytes=8)


# ----------------------------------------------------------------------
# liveness: a dead or wedged consumer can never hang the producer
# ----------------------------------------------------------------------
class TestLiveness:
    def test_abort_unblocks_a_push_waiting_for_slots(self):
        """A consumer that dies holding every slot leaves the semaphore
        permanently exhausted; abort() must bail the blocked push out
        with a loud FleetError, well before the full push timeout."""
        ring = FrameRing(CTX, slots=1, slot_bytes=64)
        ring.push("a", np.zeros(4))  # ring now full
        errors = []

        def blocked_push():
            try:
                ring.push("b", np.zeros(4))
            except FleetError as exc:
                errors.append(exc)

        thread = threading.Thread(target=blocked_push, daemon=True)
        thread.start()
        time.sleep(0.3)
        assert thread.is_alive()  # genuinely blocked on the semaphore
        ring.abort()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert errors and "aborted" in str(errors[0])
        ring.unlink()

    def test_push_after_abort_is_rejected(self):
        ring = FrameRing(CTX, slots=2, slot_bytes=64)
        ring.abort()
        with pytest.raises(FleetError, match="aborted"):
            ring.push("late", np.zeros(2))
        ring.unlink()

    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_push_breaks_loudly_when_the_consumer_dies(self, kind):
        """Once the parent has dropped its consumer-side end
        (close_consumer), a worker death breaks the pipe: push raises
        BrokenPipeError instead of blocking into the dead transport."""
        channel = make_transport(kind, CTX, slots=4, slot_bytes=64)
        proc = CTX.Process(target=_child_die_immediately, args=(channel,))
        proc.start()
        channel.close_consumer()
        proc.join()
        with pytest.raises(BrokenPipeError):
            channel.push("x", np.zeros(4))
        channel.unlink()


def _child_die_immediately(channel):
    channel.close_producer()
    os._exit(0)


# ----------------------------------------------------------------------
# cross-process: the contract holds across a real fork
# ----------------------------------------------------------------------
def _child_drain(channel, conn):
    out = [(key, payload.tobytes(), payload.dtype.str, payload.shape)
           for key, payload in drain_all(channel)]
    conn.send(out)
    conn.close()
    channel.close()


class TestCrossProcess:
    @pytest.mark.parametrize("kind", TRANSPORTS)
    def test_blocks_survive_a_fork(self, kind):
        batches = [np.arange(12, dtype=np.float64).reshape(3, 4),
                   np.arange(6, dtype=np.int32),
                   np.ones((2, 2, 2), dtype=np.float32)]
        channel = make_transport(
            kind, CTX, slots=len(batches),
            slot_bytes=max(b.nbytes for b in batches))
        parent, child = CTX.Pipe(duplex=False)
        proc = CTX.Process(target=_child_drain, args=(channel, child))
        proc.start()
        child.close()
        for i, batch in enumerate(batches):
            channel.push(f"b{i}", batch)
        channel.close_send()
        received = parent.recv()
        proc.join()
        channel.unlink()
        assert len(received) == len(batches)
        for batch, (key, raw, dtype, shape) in zip(batches, received):
            assert raw == batch.tobytes()
            assert np.dtype(dtype) == batch.dtype
            assert tuple(shape) == batch.shape
