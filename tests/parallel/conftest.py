"""Shared builders for the batched / fleet equivalence suites.

The builders themselves live in :mod:`repro.testing` (importable without
the test tree, so ``scripts/check.sh`` and the benchmark harnesses can use
them too); this conftest re-exports them for the existing suites plus the
local ``rng`` fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import (  # noqa: F401 - re-exported for the suites
    DIM,
    ConstantModel,
    gaussian_stream,
    make_bundle,
    make_pipeline,
    make_registry,
    result_sig,
)


@pytest.fixture
def rng():
    return np.random.default_rng(4242)
