"""Shared fixtures.

Heavy assets (trained bundles, experiment contexts) are session-scoped so
the suite stays fast; pure-function tests build their own tiny inputs.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext, fast_config
from repro.video.datasets import make_bdd

_GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json regression snapshots from the "
             "current run instead of comparing against them")


@pytest.fixture
def golden(request):
    """Compare ``payload`` against ``tests/golden/<name>.json`` exactly.

    Payloads are normalized through a JSON round-trip before comparing, so
    snapshots capture floats at full repr precision (Python's float repr
    round-trips bit-exactly) and any numeric drift -- however small --
    fails the test.  Run ``pytest --update-golden`` to rewrite snapshots
    after an *intentional* behaviour change.
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, payload):
        payload = json.loads(json.dumps(payload))
        path = os.path.join(_GOLDEN_DIR, f"{name}.json")
        if update:
            os.makedirs(_GOLDEN_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            return
        assert os.path.exists(path), (
            f"golden snapshot {name!r} is missing; generate it with "
            f"pytest --update-golden")
        with open(path, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        assert payload == expected, (
            f"golden snapshot {name!r} drifted; if the change is intended "
            f"rerun with --update-golden and review the diff")

    return check


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_reference(rng):
    """A 200x4 reference sample from a unit gaussian."""
    return rng.normal(0.0, 1.0, size=(200, 4))


@pytest.fixture(scope="session")
def tiny_config():
    """The smallest harness config that still detects drifts reliably."""
    return fast_config()


@pytest.fixture(scope="session")
def bdd_context(tiny_config):
    """A shared BDD context with cached bundles (built lazily on use)."""
    dataset = make_bdd(scale=tiny_config.scale,
                       frame_size=tiny_config.frame_size)
    return ExperimentContext(dataset, tiny_config)


@pytest.fixture(scope="session")
def bdd_registry(bdd_context):
    """Provisioned bundles (VAE + classifier + ensemble) for BDD."""
    return bdd_context.registry()
