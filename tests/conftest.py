"""Shared fixtures.

Heavy assets (trained bundles, experiment contexts) are session-scoped so
the suite stays fast; pure-function tests build their own tiny inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext, fast_config
from repro.video.datasets import make_bdd


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_reference(rng):
    """A 200x4 reference sample from a unit gaussian."""
    return rng.normal(0.0, 1.0, size=(200, 4))


@pytest.fixture(scope="session")
def tiny_config():
    """The smallest harness config that still detects drifts reliably."""
    return fast_config()


@pytest.fixture(scope="session")
def bdd_context(tiny_config):
    """A shared BDD context with cached bundles (built lazily on use)."""
    dataset = make_bdd(scale=tiny_config.scale,
                       frame_size=tiny_config.frame_size)
    return ExperimentContext(dataset, tiny_config)


@pytest.fixture(scope="session")
def bdd_registry(bdd_context):
    """Provisioned bundles (VAE + classifier + ensemble) for BDD."""
    return bdd_context.registry()
