"""SLO report maths and the SERVE_SCHEMA contract."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeReportError
from repro.serve import (
    DriftServer,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
    load_serve_report,
    upgrade_serve_report,
    validate_serve_report,
    write_serve_report,
)
from repro.serve.report import nearest_rank
from tests.serve.conftest import gaussian_stream, unconstrained

CAPACITY = capacity_fps()


def run_small(seed=6, n=24):
    frames = gaussian_stream(seed, [(0.0, n)])
    arrivals = generate_arrivals(
        frames, WorkloadConfig(rate_fps=CAPACITY * 0.8),
        stream_id="cam", deadline_ms=1e9, seed=seed)
    return DriftServer([unconstrained("cam", seed)]).run(arrivals)


def valid_document():
    result = run_small()
    return {
        "schema_version": 2,
        "benchmark": "serve_unit",
        "quick": True,
        "config": {"streams": 1, "frames_per_stream": 24,
                   "batch_size": 16, "queue_capacity": 64,
                   "deadline_ms": 100.0, "shed_policy": "drop-oldest",
                   "pattern": "poisson", "seed": 6},
        "capacity_fps": round(result.capacity_fps, 6),
        "frame_cost_ms": round(result.frame_cost_ms, 6),
        "degraded_cost_ms": round(result.degraded_cost_ms, 6),
        "sweep": [result.slo_entry(0.8, CAPACITY * 0.8)],
    }


class TestNearestRank:
    def test_empty_sample_is_zero(self):
        assert nearest_rank([], 50.0) == 0.0

    def test_median_of_odd_sample(self):
        assert nearest_rank([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_p99_is_max_for_small_samples(self):
        values = [float(v) for v in range(10)]
        assert nearest_rank(values, 99.0) == 9.0

    def test_percentile_must_be_in_range(self):
        with pytest.raises(ServeReportError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ServeReportError):
            nearest_rank([1.0], 101.0)

    def test_nearest_rank_is_an_element(self):
        values = [0.5, 9.25, 3.0, 7.125]
        for q in (1.0, 25.0, 50.0, 75.0, 99.0, 100.0):
            assert nearest_rank(values, q) in values


class TestServeResultAccounting:
    def test_totals_and_throughput(self):
        result = run_small(seed=6, n=24)
        assert result.processed == 24
        assert result.served == 24
        assert result.throughput_fps == pytest.approx(
            24 / (result.makespan_ms / 1000.0))
        assert result.goodput_fps == pytest.approx(
            (24 - result.deadline_misses)
            / (result.makespan_ms / 1000.0))
        assert set(result.latencies_ms()) == set(
            result.streams["cam"].latencies_ms)

    def test_slo_entry_is_schema_shaped(self):
        validate_serve_report(valid_document())

    def test_backend_ledger_accounts_for_makespan(self):
        """Every simulated millisecond is attributed to an operation."""
        result = run_small(seed=8, n=30)
        assert sum(result.backend_ledger.values()) == pytest.approx(
            result.makespan_ms)


class TestSchemaValidation:
    def test_missing_required_key_rejected(self):
        document = valid_document()
        del document["capacity_fps"]
        with pytest.raises(ServeReportError, match="capacity_fps"):
            validate_serve_report(document)

    def test_unknown_key_rejected(self):
        document = valid_document()
        document["sweep"][0]["totals"]["surprise"] = 1
        with pytest.raises(ServeReportError, match="surprise"):
            validate_serve_report(document)

    def test_wrong_type_rejected(self):
        document = valid_document()
        document["sweep"][0]["totals"]["processed"] = "many"
        with pytest.raises(ServeReportError):
            validate_serve_report(document)

    def test_bad_shed_policy_rejected(self):
        document = valid_document()
        document["config"]["shed_policy"] = "coin-flip"
        with pytest.raises(ServeReportError):
            validate_serve_report(document)

    def test_write_then_load_roundtrips(self, tmp_path):
        document = valid_document()
        path = str(tmp_path / "BENCH_serve.json")
        write_serve_report(path, document)
        assert load_serve_report(path) == document

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ServeReportError, match="not valid JSON"):
            load_serve_report(str(path))

    def test_write_refuses_invalid_document(self, tmp_path):
        document = valid_document()
        document["schema_version"] = 3
        with pytest.raises(ServeReportError):
            write_serve_report(str(tmp_path / "x.json"), document)


class TestV1UpgradeShim:
    def v1_document(self):
        """A legacy document: v2 minus the overload-era fields."""
        document = valid_document()
        document["schema_version"] = 1
        for entry in document["sweep"]:
            del entry["totals"]["rejected_infeasible"]
            del entry["totals"]["overload_transitions"]
            del entry["totals"]["goodput_fps"]
            for stream in entry["streams"].values():
                del stream["rejected_infeasible"]
                del stream["goodput_fps"]
        return document

    def test_upgrade_fills_overload_fields(self):
        upgraded = upgrade_serve_report(self.v1_document())
        validate_serve_report(upgraded)
        entry = upgraded["sweep"][0]
        assert upgraded["schema_version"] == 2
        assert entry["totals"]["rejected_infeasible"] == 0
        assert entry["totals"]["overload_transitions"] == 0
        for stream in entry["streams"].values():
            assert stream["rejected_infeasible"] == 0
            assert stream["goodput_fps"] >= 0

    def test_upgrade_recomputes_stream_goodput(self):
        upgraded = upgrade_serve_report(self.v1_document())
        entry = upgraded["sweep"][0]
        makespan = entry["totals"]["makespan_ms"]
        for scope in [entry["totals"], *entry["streams"].values()]:
            in_deadline = (scope["processed"] + scope["degraded"]
                           - scope["deadline_misses"])
            assert scope["goodput_fps"] == pytest.approx(
                in_deadline / (makespan / 1000.0), abs=1e-5)

    def test_upgrade_passes_v2_through_unchanged(self):
        document = valid_document()
        assert upgrade_serve_report(document) is document

    def test_upgrade_rejects_unknown_versions(self):
        document = valid_document()
        document["schema_version"] = 7
        with pytest.raises(ServeReportError, match="cannot upgrade"):
            upgrade_serve_report(document)

    def test_loader_accepts_v1_files(self, tmp_path):
        document = self.v1_document()
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(document))
        loaded = load_serve_report(str(path))
        assert loaded["schema_version"] == 2
        validate_serve_report(loaded)
