"""Bounded queue semantics: shed policies and backpressure hysteresis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import BoundedFrameQueue, FrameArrival
from repro.serve.queues import DEGRADE, ENQUEUED, SHED_NEWEST, SHED_OLDEST


def arrival(seq: int, t: float = 0.0) -> FrameArrival:
    return FrameArrival(stream_id="s", seq=seq, frame=np.zeros(4),
                        arrival_ms=t, deadline_ms=t + 100.0)


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(0)

    def test_policy_must_be_known(self):
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(4, policy="random-drop")

    def test_watermarks_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(4, high_watermark=2, low_watermark=2)
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(4, high_watermark=8)

    def test_pop_on_empty_raises(self):
        with pytest.raises(ConfigurationError):
            BoundedFrameQueue(4).pop()


class TestPolicies:
    def test_fifo_below_capacity(self):
        queue = BoundedFrameQueue(4)
        for seq in range(3):
            verdict = queue.offer(arrival(seq))
            assert verdict.status == ENQUEUED
            assert verdict.admitted.seq == seq
            assert verdict.shed is None and verdict.degraded is None
        assert [queue.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_drop_oldest_evicts_head_and_admits(self):
        queue = BoundedFrameQueue(2, policy="drop-oldest")
        queue.offer(arrival(0))
        queue.offer(arrival(1))
        verdict = queue.offer(arrival(2))
        assert verdict.status == SHED_OLDEST
        assert verdict.shed.seq == 0
        assert verdict.admitted.seq == 2
        assert [queue.pop().seq, queue.pop().seq] == [1, 2]

    def test_drop_newest_sheds_the_arrival(self):
        queue = BoundedFrameQueue(2, policy="drop-newest")
        queue.offer(arrival(0))
        queue.offer(arrival(1))
        verdict = queue.offer(arrival(2))
        assert verdict.status == SHED_NEWEST
        assert verdict.shed.seq == 2
        assert queue.depth == 2
        assert [queue.pop().seq, queue.pop().seq] == [0, 1]

    def test_degrade_diverts_the_arrival(self):
        queue = BoundedFrameQueue(2, policy="degrade")
        queue.offer(arrival(0))
        queue.offer(arrival(1))
        verdict = queue.offer(arrival(2))
        assert verdict.status == DEGRADE
        assert verdict.degraded.seq == 2
        assert verdict.admitted is None and verdict.shed is None
        assert queue.depth == 2


class TestBackpressure:
    def test_hysteresis_transitions_fire_once(self):
        queue = BoundedFrameQueue(8, high_watermark=4, low_watermark=1)
        signals = []
        for seq in range(5):
            queue.offer(arrival(seq))
            signals.append(queue.update_backpressure())
        # on exactly when depth first reaches 4, silent otherwise
        assert signals == [None, None, None, True, None]
        assert queue.under_backpressure
        drains = []
        for _ in range(4):
            queue.pop()
            drains.append(queue.update_backpressure())
        # off exactly when depth first falls to 1
        assert drains == [None, None, None, False]
        assert not queue.under_backpressure

    def test_defaults_are_capacity_and_half(self):
        queue = BoundedFrameQueue(10)
        assert queue.high_watermark == 10
        assert queue.low_watermark == 5
