"""Deadline scheduler: EDF order, priority weighting, aging, FIFO heads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    DeadlineScheduler,
    FrameArrival,
    SchedulerConfig,
    SessionConfig,
    SessionRegistry,
    StreamSession,
)
from repro.testing import make_pipeline


def arrival(stream_id: str, seq: int, t: float,
            deadline: float) -> FrameArrival:
    return FrameArrival(stream_id=stream_id, seq=seq, frame=np.zeros(4),
                        arrival_ms=t, deadline_ms=deadline)


def registry_of(*specs):
    """Sessions from ``(stream_id, priority, [queued arrivals])`` specs."""
    registry = SessionRegistry()
    for stream_id, priority, queued in specs:
        session = StreamSession(
            stream_id, make_pipeline(seed=0),
            SessionConfig(priority=priority, queue_capacity=64))
        for item in queued:
            session.queue.offer(item)
        registry.add(session)
    return registry


class TestConfig:
    def test_batch_size_positive(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(batch_size=0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(priority_weight_ms=-1.0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(aging_rate=-0.1)


class TestSelection:
    def test_earliest_deadline_first(self):
        registry = registry_of(
            ("late", 0, [arrival("late", 0, 0.0, 200.0)]),
            ("soon", 0, [arrival("soon", 0, 0.0, 50.0)]))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=2))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert [(s.stream_id, a.seq) for s, a in batch] == [
            ("soon", 0), ("late", 0)]

    def test_priority_shifts_deadline(self):
        # same absolute deadline: the premium stream must win
        registry = registry_of(
            ("basic", 0, [arrival("basic", 0, 0.0, 100.0)]),
            ("premium", 1, [arrival("premium", 0, 0.0, 100.0)]))
        scheduler = DeadlineScheduler(
            SchedulerConfig(batch_size=1, priority_weight_ms=50.0))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert batch[0][0].stream_id == "premium"

    def test_aging_prevents_starvation(self):
        # the low-priority frame has waited long enough that aging
        # outweighs the other stream's priority edge
        registry = registry_of(
            ("old", 0, [arrival("old", 0, 0.0, 100.0)]),
            ("vip", 2, [arrival("vip", 0, 990.0, 1090.0)]))
        scheduler = DeadlineScheduler(SchedulerConfig(
            batch_size=1, priority_weight_ms=50.0, aging_rate=1.0))
        batch = scheduler.next_batch(registry, now_ms=1000.0)
        assert batch[0][0].stream_id == "old"

    def test_exact_ties_break_by_registration_order(self):
        registry = registry_of(
            ("second", 0, [arrival("second", 0, 0.0, 100.0)]),
            ("first", 0, [arrival("first", 0, 0.0, 100.0)]))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=2))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        # "second" registered first, so it wins the exact tie
        assert [s.stream_id for s, _ in batch] == ["second", "first"]

    def test_batch_size_caps_selection(self):
        queued = [arrival("a", seq, 0.0, 100.0 + seq) for seq in range(5)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=3))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert len(batch) == 3
        assert registry.get("a").queue.depth == 2

    def test_per_stream_fifo_even_with_inverted_deadlines(self):
        # seq 1 has the *earlier* deadline, but only heads are eligible:
        # FIFO order within a stream must survive
        queued = [arrival("a", 0, 0.0, 500.0), arrival("a", 1, 1.0, 50.0)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=2))
        batch = scheduler.next_batch(registry, now_ms=10.0)
        assert [a.seq for _, a in batch] == [0, 1]

    def test_empty_queues_give_empty_batch(self):
        registry = registry_of(("a", 0, []))
        scheduler = DeadlineScheduler()
        assert scheduler.next_batch(registry, now_ms=0.0) == []

    def test_interleaves_streams_by_urgency(self):
        a_frames = [arrival("a", s, 0.0, 100.0 + 20 * s) for s in range(2)]
        b_frames = [arrival("b", s, 0.0, 110.0 + 20 * s) for s in range(2)]
        registry = registry_of(("a", 0, a_frames), ("b", 0, b_frames))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=4))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert [(s.stream_id, a.seq) for s, a in batch] == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1)]
