"""Deadline scheduler: EDF order, priority weighting, aging, FIFO heads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    DeadlineScheduler,
    FrameArrival,
    SchedulerConfig,
    SessionConfig,
    SessionRegistry,
    StreamSession,
)
from repro.testing import make_pipeline


def arrival(stream_id: str, seq: int, t: float,
            deadline: float) -> FrameArrival:
    return FrameArrival(stream_id=stream_id, seq=seq, frame=np.zeros(4),
                        arrival_ms=t, deadline_ms=deadline)


def registry_of(*specs, weights=None):
    """Sessions from ``(stream_id, priority, [queued arrivals])`` specs."""
    registry = SessionRegistry()
    for i, (stream_id, priority, queued) in enumerate(specs):
        weight = weights[i] if weights else 1.0
        session = StreamSession(
            stream_id, make_pipeline(seed=0),
            SessionConfig(priority=priority, queue_capacity=64,
                          weight=weight))
        for item in queued:
            session.queue.offer(item)
        registry.add(session)
    return registry


class TestConfig:
    def test_batch_size_positive(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(batch_size=0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(priority_weight_ms=-1.0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(aging_rate=-0.1)

    def test_unknown_fairness_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(fairness="lottery")


class TestSelection:
    def test_earliest_deadline_first(self):
        registry = registry_of(
            ("late", 0, [arrival("late", 0, 0.0, 200.0)]),
            ("soon", 0, [arrival("soon", 0, 0.0, 50.0)]))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=2))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert [(s.stream_id, a.seq) for s, a in batch] == [
            ("soon", 0), ("late", 0)]

    def test_priority_shifts_deadline(self):
        # same absolute deadline: the premium stream must win
        registry = registry_of(
            ("basic", 0, [arrival("basic", 0, 0.0, 100.0)]),
            ("premium", 1, [arrival("premium", 0, 0.0, 100.0)]))
        scheduler = DeadlineScheduler(
            SchedulerConfig(batch_size=1, priority_weight_ms=50.0))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert batch[0][0].stream_id == "premium"

    def test_aging_prevents_starvation(self):
        # the low-priority frame has waited long enough that aging
        # outweighs the other stream's priority edge
        registry = registry_of(
            ("old", 0, [arrival("old", 0, 0.0, 100.0)]),
            ("vip", 2, [arrival("vip", 0, 990.0, 1090.0)]))
        scheduler = DeadlineScheduler(SchedulerConfig(
            batch_size=1, priority_weight_ms=50.0, aging_rate=1.0))
        batch = scheduler.next_batch(registry, now_ms=1000.0)
        assert batch[0][0].stream_id == "old"

    def test_exact_ties_break_by_registration_order(self):
        registry = registry_of(
            ("second", 0, [arrival("second", 0, 0.0, 100.0)]),
            ("first", 0, [arrival("first", 0, 0.0, 100.0)]))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=2))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        # "second" registered first, so it wins the exact tie
        assert [s.stream_id for s, _ in batch] == ["second", "first"]

    def test_batch_size_caps_selection(self):
        queued = [arrival("a", seq, 0.0, 100.0 + seq) for seq in range(5)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=3))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert len(batch) == 3
        assert registry.get("a").queue.depth == 2

    def test_per_stream_fifo_even_with_inverted_deadlines(self):
        # seq 1 has the *earlier* deadline, but only heads are eligible:
        # FIFO order within a stream must survive
        queued = [arrival("a", 0, 0.0, 500.0), arrival("a", 1, 1.0, 50.0)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=2))
        batch = scheduler.next_batch(registry, now_ms=10.0)
        assert [a.seq for _, a in batch] == [0, 1]

    def test_empty_queues_give_empty_batch(self):
        registry = registry_of(("a", 0, []))
        scheduler = DeadlineScheduler()
        assert scheduler.next_batch(registry, now_ms=0.0) == []

    def test_interleaves_streams_by_urgency(self):
        a_frames = [arrival("a", s, 0.0, 100.0 + 20 * s) for s in range(2)]
        b_frames = [arrival("b", s, 0.0, 110.0 + 20 * s) for s in range(2)]
        registry = registry_of(("a", 0, a_frames), ("b", 0, b_frames))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=4))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert [(s.stream_id, a.seq) for s, a in batch] == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1)]


class TestFairness:
    def test_hot_stream_cannot_fill_whole_batch(self):
        # "hot" has 10 frames, every one more urgent than "cold"'s two.
        # Water-filling over equal weights with demands (10, 2) and 8
        # slots saturates "cold" at 2 and caps "hot" at 6.
        hot = [arrival("hot", s, 0.0, 50.0 + s) for s in range(10)]
        cold = [arrival("cold", s, 0.0, 400.0 + s) for s in range(2)]
        registry = registry_of(("hot", 0, hot), ("cold", 0, cold))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=8))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        counts = {"hot": 0, "cold": 0}
        for session, _ in batch:
            counts[session.stream_id] += 1
        assert counts == {"hot": 6, "cold": 2}

    def test_fairness_none_restores_pure_edf(self):
        hot = [arrival("hot", s, 0.0, 50.0 + s) for s in range(10)]
        cold = [arrival("cold", s, 0.0, 400.0 + s) for s in range(2)]
        registry = registry_of(("hot", 0, hot), ("cold", 0, cold))
        scheduler = DeadlineScheduler(
            SchedulerConfig(batch_size=8, fairness="none"))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert all(s.stream_id == "hot" for s, _ in batch)

    def test_caps_proportional_to_weights(self):
        # both streams have deep backlogs; a 3:1 weight split of 8
        # slots gives caps 6 and 2
        a = [arrival("a", s, 0.0, 100.0 + s) for s in range(20)]
        b = [arrival("b", s, 0.0, 100.0 + s) for s in range(20)]
        registry = registry_of(("a", 0, a), ("b", 0, b),
                               weights=[3.0, 1.0])
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=8))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        counts = {"a": 0, "b": 0}
        for session, _ in batch:
            counts[session.stream_id] += 1
        assert counts == {"a": 6, "b": 2}

    def test_every_backlogged_stream_gets_a_slot(self):
        # ceil-integerised caps: even a tiny-weight stream is eligible
        # for one slot per batch
        specs = [(f"s{i}", 0, [arrival(f"s{i}", s, 0.0, 100.0 + s)
                               for s in range(50)]) for i in range(4)]
        registry = registry_of(*specs, weights=[10.0, 1.0, 1.0, 1.0])
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=8))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        served = {s.stream_id for s, _ in batch}
        assert served == {"s0", "s1", "s2", "s3"}

    def test_single_stream_unaffected_by_fairness(self):
        queued = [arrival("a", s, 0.0, 100.0 + s) for s in range(10)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=8))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert len(batch) == 8


class TestDeadlineAwareCapping:
    def test_batch_stops_before_overrunning_deadline(self):
        # completion of frame n is now + overhead + cost * n; with
        # deadline 10, cost 3 and overhead 1 only 3 frames fit
        queued = [arrival("a", s, 0.0, 10.0) for s in range(8)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=8))
        batch = scheduler.next_batch(registry, now_ms=0.0,
                                     frame_cost_ms=3.0, overhead_ms=1.0)
        assert len(batch) == 3

    def test_first_frame_always_taken(self):
        # even a frame that can no longer make its deadline is selected
        # alone, so batch formation cannot stall
        queued = [arrival("a", s, 0.0, 1.0) for s in range(4)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=4))
        batch = scheduler.next_batch(registry, now_ms=0.0,
                                     frame_cost_ms=5.0, overhead_ms=1.0)
        assert len(batch) == 1

    def test_no_cost_model_means_no_capping(self):
        queued = [arrival("a", s, 0.0, 10.0) for s in range(8)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(SchedulerConfig(batch_size=8))
        batch = scheduler.next_batch(registry, now_ms=0.0)
        assert len(batch) == 8

    def test_deadline_aware_false_disables_capping(self):
        queued = [arrival("a", s, 0.0, 10.0) for s in range(8)]
        registry = registry_of(("a", 0, queued))
        scheduler = DeadlineScheduler(
            SchedulerConfig(batch_size=8, deadline_aware=False))
        batch = scheduler.next_batch(registry, now_ms=0.0,
                                     frame_cost_ms=3.0, overhead_ms=1.0)
        assert len(batch) == 8
