"""ShardedRegistry: a registry facade that must change nothing.

The whole point of the facade is that the serving stack cannot tell it
from the flat registry -- same iteration order, same indices, same
served results -- while shard placement stays a pure function of the
stream id.  The suite pins both halves: transparent equivalence through
a real DriftServer run, and deterministic CRC32 placement with usable
shard-local views.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ServeError
from repro.rng import stable_hash
from repro.serve import (
    DriftServer,
    ServeConfig,
    SessionRegistry,
    ShardedRegistry,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)

from tests.serve.conftest import gaussian_stream, make_session, result_sig

N_STREAMS = 9


def build_sessions():
    return [make_session(f"cam-{i:02d}", seed=10 + i)
            for i in range(N_STREAMS)]


def overload_arrivals():
    arrivals = []
    for i in range(N_STREAMS):
        frames = gaussian_stream(10 + i, [(0.0, 30)])
        arrivals.extend(generate_arrivals(
            frames,
            WorkloadConfig(rate_fps=2.0 * capacity_fps() / N_STREAMS,
                           pattern="poisson"),
            stream_id=f"cam-{i:02d}", deadline_ms=60.0, seed=20 + i))
    return arrivals


# ----------------------------------------------------------------------
# the facade is indistinguishable from the flat registry
# ----------------------------------------------------------------------
class TestTransparency:
    def test_is_a_session_registry(self):
        registry = ShardedRegistry(shards=4)
        assert isinstance(registry, SessionRegistry)

    @pytest.mark.parametrize("shards", [1, 4, 64])
    def test_order_ids_and_indices_match_flat(self, shards):
        flat = SessionRegistry(build_sessions())
        sharded = ShardedRegistry(shards=shards, sessions=build_sessions())
        assert sharded.ids() == flat.ids()
        assert len(sharded) == len(flat)
        assert [s.stream_id for s in sharded] == \
            [s.stream_id for s in flat]
        for stream_id in flat.ids():
            assert sharded.index_of(stream_id) == flat.index_of(stream_id)
            assert stream_id in sharded
            assert sharded.get(stream_id).stream_id == stream_id

    @pytest.mark.parametrize("shards", [1, 4])
    def test_served_results_identical_to_flat(self, shards):
        def run(registry):
            result = DriftServer(registry, ServeConfig()).run(
                overload_arrivals())
            outcomes = {
                sid: (slo.arrivals, slo.processed, slo.degraded,
                      slo.shed_total, slo.rejected)
                for sid, slo in result.streams.items()}
            pipelines = {sid: result_sig(r)
                         for sid, r in result.pipeline_results.items()}
            return outcomes, pipelines, result.makespan_ms

        flat = run(SessionRegistry(build_sessions()))
        sharded = run(ShardedRegistry(shards=shards,
                                      sessions=build_sessions()))
        assert sharded == flat

    def test_duplicate_rejected_atomically(self):
        registry = ShardedRegistry(shards=4, sessions=build_sessions())
        with pytest.raises(ServeError, match="duplicate"):
            registry.add(make_session("cam-00", seed=99))
        # the failed add must not have leaked into any shard
        assert sum(registry.shard_sizes()) == N_STREAMS
        assert len(registry) == N_STREAMS


# ----------------------------------------------------------------------
# placement and shard-local views
# ----------------------------------------------------------------------
class TestSharding:
    def test_placement_is_crc32_of_stream_id(self):
        registry = ShardedRegistry(shards=7, sessions=build_sessions())
        for stream_id in registry.ids():
            expected = stable_hash(stream_id) % 7
            assert registry.shard_index(stream_id) == expected
            assert stream_id in registry.shard(expected)

    def test_shards_partition_the_sessions(self):
        registry = ShardedRegistry(shards=5, sessions=build_sessions())
        seen = [sid for _, shard in registry.shard_items()
                for sid in shard.ids()]
        assert sorted(seen) == sorted(registry.ids())
        assert sum(registry.shard_sizes()) == len(registry)

    def test_shard_local_order_is_global_order_filtered(self):
        registry = ShardedRegistry(shards=3, sessions=build_sessions())
        for _, shard in registry.shard_items():
            indices = [registry.index_of(sid) for sid in shard.ids()]
            assert indices == sorted(indices)

    def test_shard_of_and_snapshot(self):
        registry = ShardedRegistry(shards=4, sessions=build_sessions())
        shard = registry.shard_of("cam-03")
        assert "cam-03" in shard
        for session in registry:
            session.begin()
        snaps = registry.snapshot_shard(registry.shard_index("cam-03"))
        assert any(s["stream_id"] == "cam-03" for s in snaps)
        assert len(snaps) == len(shard)

    def test_single_shard_holds_everything(self):
        registry = ShardedRegistry(shards=1, sessions=build_sessions())
        assert registry.shard_sizes() == [N_STREAMS]
        assert registry.shard(0).ids() == registry.ids()

    def test_errors(self):
        registry = ShardedRegistry(shards=2, sessions=build_sessions())
        with pytest.raises(ConfigurationError, match="shards"):
            ShardedRegistry(shards=0)
        with pytest.raises(ServeError, match="out of range"):
            registry.shard(2)
        with pytest.raises(ServeError, match="unknown"):
            registry.shard_of("ghost")
        with pytest.raises(ServeError, match="non-empty"):
            registry.shard_index("")


def test_flat_registry_index_of_is_constant_time():
    """The O(1) index map agrees with enumeration order at scale."""
    sessions = [make_session(f"s-{i:04d}", seed=i) for i in range(300)]
    registry = SessionRegistry(sessions)
    for expected, stream_id in enumerate(registry.ids()):
        assert registry.index_of(stream_id) == expected
    with pytest.raises(ServeError, match="unknown"):
        registry.index_of("missing")
