"""Golden SLO snapshot: a fixed-seed 2x-overload serving run.

The snapshot is a full ``SERVE_SCHEMA`` document (the same shape
``benchmarks/bench_serve.py`` emits), so it doubles as a pinned example
of the contract: ``scripts/check.sh`` re-validates the committed file
against the schema on every run.  Every number in it is simulated, so
the snapshot is bit-stable across machines; regenerate with
``pytest --update-golden`` only after an intentional behaviour change.
"""

from __future__ import annotations

from repro.serve import (
    DriftServer,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
    validate_serve_report,
)
from repro.testing import make_pipeline
from tests.serve.conftest import gaussian_stream

SEED = 20250807
FRAMES_PER_STREAM = 90
OFFERED_LOAD = 2.0
DEADLINE_MS = 60.0
QUEUE_CAPACITY = 8
BATCH_SIZE = 16


def overload_document():
    capacity = capacity_fps()
    per_stream = OFFERED_LOAD * capacity / 3.0
    specs = [("premium", 1, "drop-oldest", False),
             ("standard", 0, "drop-oldest", True),
             ("basic", 0, "degrade", True)]
    sessions, arrivals = [], []
    for i, (stream_id, priority, policy, degradable) in enumerate(specs):
        sessions.append(StreamSession(
            stream_id, make_pipeline(seed=SEED + i),
            SessionConfig(priority=priority, deadline_ms=DEADLINE_MS,
                          queue_capacity=QUEUE_CAPACITY,
                          shed_policy=policy,
                          degraded_allowed=degradable,
                          weight=2.0 if priority else 1.0)))
        frames = gaussian_stream(
            SEED + i, [(0.0, FRAMES_PER_STREAM // 2),
                       (6.0, FRAMES_PER_STREAM - FRAMES_PER_STREAM // 2)])
        arrivals.extend(generate_arrivals(
            frames, WorkloadConfig(rate_fps=per_stream, pattern="burst"),
            stream_id=stream_id, deadline_ms=DEADLINE_MS, seed=SEED + i))
    server = DriftServer(sessions, ServeConfig(
        scheduler=SchedulerConfig(batch_size=BATCH_SIZE)))
    result = server.run(arrivals)
    return {
        "schema_version": 2,
        "benchmark": "serve_slo_golden",
        "quick": True,
        "config": {"streams": 3,
                   "frames_per_stream": FRAMES_PER_STREAM,
                   "batch_size": BATCH_SIZE,
                   "queue_capacity": QUEUE_CAPACITY,
                   "deadline_ms": DEADLINE_MS,
                   "shed_policy": "mixed",
                   "pattern": "burst",
                   "seed": SEED},
        "capacity_fps": round(result.capacity_fps, 6),
        "frame_cost_ms": round(result.frame_cost_ms, 6),
        "degraded_cost_ms": round(result.degraded_cost_ms, 6),
        "sweep": [result.slo_entry(OFFERED_LOAD, OFFERED_LOAD * capacity)],
    }


def test_overload_slo_snapshot(golden):
    document = overload_document()
    validate_serve_report(document)
    totals = document["sweep"][0]["totals"]
    # sanity before pinning: the run genuinely overloads, the controller
    # reacts, and the excess degrades gracefully rather than collapsing
    assert totals["degraded"] > 0
    assert totals["rejected_infeasible"] > 0
    assert totals["overload_transitions"] > 0
    assert totals["processed"] > 0
    golden("serve_slo", document)
