"""Drift-coupled workloads: scenario scripts driving the arrival process.

The contract pinned here is the ISSUE-10 seam between the scenario
compiler and the serving layer: a compiled
:class:`~repro.scenarios.CompiledWorkload` plugs into
``generate_arrivals(..., modulation=...)`` as a plain callable, so the
same script that drifts the frame distribution also surges the offered
load -- and the surge is what pushes the overload controller out of
NORMAL.  Passing no modulation must stay bit-identical to the
pre-existing generator.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import WorkloadCoupling, compile_workload, get_script
from repro.serve import (
    DriftServer,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.serve.overload import NORMAL
from tests.serve.conftest import gaussian_stream, make_session

CAPACITY = capacity_fps()


class TestModulationHook:
    def test_no_modulation_is_bit_identical(self):
        frames = gaussian_stream(5, [(0.0, 80)])
        config = WorkloadConfig(rate_fps=20.0, pattern="burst")
        legacy = generate_arrivals(frames, config, stream_id="cam", seed=5)
        hooked = generate_arrivals(frames, config, stream_id="cam", seed=5,
                                   modulation=None)
        assert [a.arrival_ms for a in legacy] == \
            [a.arrival_ms for a in hooked]

    def test_identity_modulation_is_bit_identical(self):
        frames = gaussian_stream(6, [(0.0, 80)])
        config = WorkloadConfig(rate_fps=20.0)
        legacy = generate_arrivals(frames, config, stream_id="cam", seed=6)
        hooked = generate_arrivals(frames, config, stream_id="cam", seed=6,
                                   modulation=lambda t_ms: 1.0)
        assert [a.arrival_ms for a in legacy] == \
            [a.arrival_ms for a in hooked]

    def test_nonpositive_modulation_rejected(self):
        frames = gaussian_stream(7, [(0.0, 10)])
        with pytest.raises(ConfigurationError):
            generate_arrivals(frames, WorkloadConfig(rate_fps=20.0),
                              modulation=lambda t_ms: 0.0)

    def test_surge_compresses_post_onset_arrivals(self):
        """A surging profile makes post-onset inter-arrival gaps shrink
        by the surge factor (in expectation; pinned via the mean)."""
        script = get_script("abrupt")
        coupling = WorkloadCoupling(fps=30.0, surge=3.0)
        profile = compile_workload(script, coupling)
        onset_ms = script.onset * 1000.0 / coupling.fps
        frames = gaussian_stream(8, [(0.0, 400)])
        config = WorkloadConfig(rate_fps=30.0)
        flat = generate_arrivals(frames, config, stream_id="cam", seed=8)
        coupled = generate_arrivals(frames, config, stream_id="cam", seed=8,
                                    modulation=profile)
        def post_count(arrivals):
            return sum(1 for a in arrivals
                       if onset_ms <= a.arrival_ms < onset_ms + 2000.0)
        assert post_count(coupled) > 1.8 * post_count(flat)


class TestDriftCoupledOverload:
    def run_server(self, modulation):
        """One single-stream serving run at half capacity baseline; the
        coupled variant surges to 1.5x capacity at the script's onset."""
        rate = 0.5 * CAPACITY
        script = get_script("abrupt")
        frames = gaussian_stream(21, [(0.0, 240)])
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=rate), stream_id="cam",
            deadline_ms=60.0, seed=21, modulation=modulation)
        session = make_session("cam", 21, queue_capacity=8,
                               deadline_ms=60.0)
        server = DriftServer([session])
        result = server.run(arrivals)
        return server, result

    def coupled_profile(self):
        # frame f of the script maps to the time the stream reaches f at
        # its baseline rate, so the workload surge lands exactly when
        # the pixel/feature backends would be emitting drifted frames
        script = get_script("abrupt")
        return compile_workload(
            script, WorkloadCoupling(fps=0.5 * CAPACITY, surge=3.0))

    def test_flat_baseline_stays_normal(self):
        server, result = self.run_server(None)
        assert server.controller.state == NORMAL
        assert result.overload_transitions == 0

    def test_drift_surge_flips_overload_controller(self):
        """The acceptance demo: identical stream, identical seeds -- the
        only difference is drift-coupled arrivals, and the overload
        controller transitions because of it."""
        _, flat = self.run_server(None)
        _, coupled = self.run_server(self.coupled_profile())
        assert flat.overload_transitions == 0
        assert coupled.overload_transitions > 0
        assert coupled.degraded > 0 or coupled.shed_total > 0
