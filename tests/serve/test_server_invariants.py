"""DriftServer properties: conservation, order, bit-identity, determinism.

These are the contracts the serving layer is allowed to promise:

- **conservation** -- every arrival ends in exactly one of processed /
  degraded / shed / rejected, per stream and in total;
- **order** -- cross-stream micro-batching never reorders one stream's
  frames relative to each other;
- **bit-identity** -- one unconstrained stream served through the full
  admission/scheduling machinery produces *exactly* the result of
  :meth:`DriftAwareAnalytics.process_batched` on the same frames;
- **determinism** -- a run is a pure function of (sessions, arrivals,
  config): repeating it, or attaching a recorder, changes nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.obs.recorder import Recorder
from repro.serve import (
    DriftServer,
    FrameArrival,
    OverloadConfig,
    SchedulerConfig,
    ServeConfig,
    SessionConfig,
    SessionRegistry,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.testing import make_pipeline
from tests.serve.conftest import (
    gaussian_stream,
    make_session,
    result_sig,
    unconstrained,
)

CAPACITY = capacity_fps()


def overload_arrivals(seed, n_frames=60, load=2.0, pattern="poisson",
                      streams=("a", "b"), deadline_ms=60.0):
    """Per-stream traces at ``load`` x capacity split across streams."""
    per_stream_rate = load * CAPACITY / len(streams)
    arrivals = []
    for i, stream_id in enumerate(streams):
        frames = gaussian_stream(seed + i, [(0.0, n_frames)])
        arrivals.extend(generate_arrivals(
            frames, WorkloadConfig(rate_fps=per_stream_rate,
                                   pattern=pattern),
            stream_id=stream_id, deadline_ms=deadline_ms, seed=seed + i))
    return arrivals


def outcome_counts(slo):
    return (slo.arrivals, slo.processed, slo.degraded, slo.shed_total,
            slo.rejected)


class TestConservation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**4),
           load=st.floats(min_value=0.5, max_value=3.0),
           policy=st.sampled_from(["drop-oldest", "drop-newest",
                                   "degrade"]),
           capacity=st.integers(2, 12),
           pattern=st.sampled_from(["poisson", "burst", "diurnal"]))
    def test_every_arrival_has_exactly_one_outcome(self, seed, load,
                                                   policy, capacity,
                                                   pattern):
        arrivals = overload_arrivals(seed, n_frames=40, load=load,
                                     pattern=pattern)
        sessions = [
            make_session("a", seed, queue_capacity=capacity,
                         shed_policy=policy),
            make_session("b", seed + 1, queue_capacity=capacity,
                         shed_policy=policy, priority=1),
        ]
        result = DriftServer(sessions).run(arrivals)
        for slo in result.streams.values():
            assert slo.arrivals == (slo.processed + slo.degraded
                                    + slo.shed_total + slo.rejected)
            # frames admitted to the queue either complete the full path
            # or are evicted by drop-oldest / expiry
            evicted = (slo.shed.get("drop-oldest", 0)
                       + slo.shed.get("expired", 0))
            assert slo.admitted == slo.processed + evicted
        assert result.arrivals == sum(
            slo.arrivals for slo in result.streams.values())

    def test_malformed_frames_are_rejected_not_served(self):
        frames = gaussian_stream(2, [(0.0, 30)])
        frames[7, 0] = np.nan
        frames[19, 2] = np.inf
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=CAPACITY * 0.5),
            stream_id="cam", deadline_ms=1e9, seed=5)
        session = unconstrained("cam", 2)
        result = DriftServer([session]).run(arrivals)
        slo = result.streams["cam"]
        assert slo.rejected == 2
        assert slo.processed == 28
        assert slo.arrivals == 30
        # quarantined frames never reach the pipeline
        assert len(result.pipeline_results["cam"].records) == 28


class TestOrderPreservation:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**4),
           batch_size=st.sampled_from([1, 3, 8, 16]),
           load=st.floats(min_value=0.8, max_value=2.5))
    def test_per_stream_seq_strictly_increases(self, seed, batch_size,
                                               load):
        arrivals = overload_arrivals(seed, n_frames=40, load=load,
                                     streams=("a", "b", "c"))
        sessions = [make_session(sid, seed + i, queue_capacity=8,
                                 priority=i % 2)
                    for i, sid in enumerate(("a", "b", "c"))]
        server = DriftServer(sessions, ServeConfig(
            scheduler=SchedulerConfig(batch_size=batch_size)))
        served = []
        original = server.scheduler.next_batch

        def spy(registry, now_ms, **kwargs):
            batch = original(registry, now_ms, **kwargs)
            served.extend((s.stream_id, a.seq) for s, a in batch)
            return batch

        server.scheduler.next_batch = spy
        server.run(arrivals)
        assert served, "nothing was served"
        last = {}
        for stream_id, seq in served:
            assert seq > last.get(stream_id, -1), (
                f"stream {stream_id} reordered: seq {seq} after "
                f"{last.get(stream_id)}")
            last[stream_id] = seq


class TestBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100),
           batch_size=st.sampled_from([1, 4, 16, 64]),
           rate_mult=st.floats(min_value=0.3, max_value=1.5),
           pattern=st.sampled_from(["poisson", "burst", "diurnal"]))
    def test_unconstrained_serve_equals_process_batched(
            self, seed, batch_size, rate_mult, pattern):
        frames = gaussian_stream(seed, [(0.0, 30), (6.0, 30)])
        reference = make_pipeline(seed=seed).process_batched(
            frames, batch_size=batch_size)
        session = unconstrained("cam", seed)
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=rate_mult * CAPACITY,
                                   pattern=pattern),
            stream_id="cam", deadline_ms=1e12, seed=seed + 1)
        server = DriftServer([session], ServeConfig(
            scheduler=SchedulerConfig(batch_size=batch_size)))
        result = server.run(arrivals)
        assert result_sig(result.pipeline_results["cam"]) == result_sig(
            reference)
        slo = result.streams["cam"]
        assert slo.processed == 60
        assert slo.shed_total == slo.rejected == slo.degraded == 0

    def test_unconstrained_serve_bit_identical_with_odin_monitor(self):
        """Bit-identity holds at the monitor-protocol seam, not just for
        the default Drift Inspector: a session whose kernel is backed by
        ODIN-Detect (scalar-fallback batching -- no ``observe_batch``, no
        snapshots) still serves exactly what offline processing emits."""
        from repro.baselines.odin.detect import OdinConfig, OdinDetect

        def odin_monitor(bundle):
            detect = OdinDetect(config=OdinConfig())
            detect.seed_cluster(bundle.name, bundle.sigma,
                                model_name=bundle.name)
            return detect

        frames = gaussian_stream(23, [(0.0, 30), (6.0, 40)])
        reference = make_pipeline(
            seed=23, monitor_factory=odin_monitor).process_batched(
                frames, batch_size=16)
        session = StreamSession(
            "cam", make_pipeline(seed=23, monitor_factory=odin_monitor),
            SessionConfig(queue_capacity=1 << 20, deadline_ms=1e12))
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=CAPACITY),
            stream_id="cam", deadline_ms=1e12, seed=24)
        server = DriftServer([session], ServeConfig(
            scheduler=SchedulerConfig(batch_size=16)))
        result = server.run(arrivals)
        assert result_sig(result.pipeline_results["cam"]) == result_sig(
            reference)
        assert result.pipeline_results["cam"].detections

    def test_scheduler_batch_size_cannot_change_pipeline_results(self):
        """Chunking invariance survives the serving layer: an
        unconstrained stream's drift decisions are identical whatever
        micro-batch size the scheduler uses."""
        frames = gaussian_stream(11, [(0.0, 30), (6.0, 30)])
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=2.0 * CAPACITY),
            stream_id="cam", deadline_ms=1e12, seed=13)
        signatures = []
        for batch_size in (1, 5, 32):
            session = unconstrained("cam", 11)
            server = DriftServer([session], ServeConfig(
                scheduler=SchedulerConfig(batch_size=batch_size)))
            result = server.run(arrivals)
            signatures.append(result_sig(result.pipeline_results["cam"]))
        assert signatures[0] == signatures[1] == signatures[2]


class TestDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10**4),
           policy=st.sampled_from(["drop-oldest", "drop-newest",
                                   "degrade"]))
    def test_identical_runs_produce_identical_reports(self, seed, policy):
        arrivals = overload_arrivals(seed, n_frames=40, load=2.0)

        def run_once():
            sessions = [
                make_session("a", seed, queue_capacity=6,
                             shed_policy=policy, priority=1),
                make_session("b", seed + 1, queue_capacity=6,
                             shed_policy=policy),
            ]
            result = DriftServer(sessions).run(arrivals)
            return (result.slo_entry(2.0, 2 * CAPACITY),
                    {sid: result_sig(r)
                     for sid, r in result.pipeline_results.items()},
                    result.backend_ledger)

        assert run_once() == run_once()

    def test_recorder_attachment_is_a_noop(self):
        """Observability is passive: recording every serving decision
        must not change a single one of them."""
        arrivals = overload_arrivals(77, n_frames=50, load=2.0)

        def run_once(recorder):
            sessions = [make_session("a", 77, queue_capacity=6),
                        make_session("b", 78, queue_capacity=6)]
            result = DriftServer(sessions, recorder=recorder).run(arrivals)
            return (result.slo_entry(2.0, 2 * CAPACITY),
                    result.backend_ledger)

        recorder = Recorder()
        assert run_once(None) == run_once(recorder)
        summary = recorder.snapshot()["summary"]
        assert summary["counters"]["serve.arrivals"] == 100.0

    def test_telemetry_counters_match_slo_totals(self):
        arrivals = overload_arrivals(31, n_frames=40, load=2.0)
        sessions = [make_session("a", 31, queue_capacity=6,
                                 shed_policy="degrade"),
                    make_session("b", 32, queue_capacity=6)]
        recorder = Recorder()
        result = DriftServer(sessions, recorder=recorder).run(arrivals)
        counters = recorder.snapshot()["summary"]["counters"]
        assert counters["serve.arrivals"] == result.arrivals
        assert counters["serve.processed"] == result.processed
        assert counters["serve.degraded"] == result.degraded
        assert counters["serve.shed"] == result.shed_total
        assert counters["serve.rejected"] == result.rejected
        assert counters.get("serve.rejected_infeasible", 0) == (
            result.rejected_infeasible)
        assert counters["serve.deadline_misses"] == result.deadline_misses


class TestServingPolicies:
    def test_overload_degrades_instead_of_collapsing(self):
        arrivals = overload_arrivals(5, n_frames=80, load=2.0)
        sessions = [make_session("a", 5, queue_capacity=8),
                    make_session("b", 6, queue_capacity=8)]
        result = DriftServer(sessions).run(arrivals)
        # the controller turns the 2x excess into degraded answers and
        # infeasibility rejections instead of queueing doomed frames
        assert result.degraded > 0
        assert result.shed_total + result.rejected_infeasible > 0
        # ... so goodput holds near capacity instead of collapsing
        assert result.goodput_fps >= 0.8 * result.capacity_fps
        assert result.throughput_fps >= 0.7 * result.capacity_fps

    def test_degrade_policy_serves_overflow_on_cheap_path(self):
        arrivals = overload_arrivals(9, n_frames=80, load=2.0)
        sessions = [make_session("a", 9, queue_capacity=8,
                                 shed_policy="degrade"),
                    make_session("b", 10, queue_capacity=8,
                                 shed_policy="degrade")]
        result = DriftServer(sessions).run(arrivals)
        assert result.degraded > 0
        assert result.shed_total == 0
        # every degraded frame still got an answer: served = arrivals
        assert result.served == result.arrivals
        # degraded frames bypass the inspector: the pipelines only saw
        # the fully-processed frames
        for sid, slo in result.streams.items():
            assert len(result.pipeline_results[sid].records) == (
                slo.processed)

    def test_expired_frames_shed_when_enabled(self):
        arrivals = overload_arrivals(21, n_frames=80, load=2.0,
                                     deadline_ms=15.0)
        # overload control would reject these doomed frames at arrival;
        # disable it so queue-resident expiry is what gets exercised
        sessions = [make_session("a", 21, queue_capacity=64),
                    make_session("b", 22, queue_capacity=64)]
        result = DriftServer(sessions, ServeConfig(
            shed_expired=True,
            overload=OverloadConfig(enabled=False))).run(arrivals)
        expired = sum(slo.shed.get("expired", 0)
                      for slo in result.streams.values())
        assert expired > 0
        # a frame shed for expiry never completes, so it cannot miss
        for slo in result.streams.values():
            assert slo.deadline_misses <= slo.processed + slo.degraded

    def test_breaker_fast_fails_after_consecutive_sheds(self):
        arrivals = overload_arrivals(41, n_frames=120, load=3.0,
                                     streams=("a",))
        session = make_session("a", 41, queue_capacity=4,
                               breaker_threshold=3)
        recorder = Recorder()
        result = DriftServer([session], recorder=recorder).run(arrivals)
        slo = result.streams["a"]
        assert slo.shed.get("breaker", 0) > 0
        by_kind = recorder.snapshot()["summary"]["events"]["by_kind"]
        assert by_kind.get("breaker_open", 0) >= 1


class TestServeErrors:
    def test_unknown_stream_rejected(self):
        session = make_session("a", 1)
        arrival = FrameArrival("ghost", 0, np.zeros(6), 0.0, 100.0)
        with pytest.raises(ServeError, match="unregistered"):
            DriftServer([session]).run([arrival])

    def test_out_of_order_seq_rejected(self):
        session = make_session("a", 1)
        arrivals = [FrameArrival("a", 1, np.zeros(6), 0.0, 100.0),
                    FrameArrival("a", 0, np.zeros(6), 1.0, 101.0)]
        with pytest.raises(ServeError, match="out of\\s+order"):
            DriftServer([session]).run(arrivals)

    def test_negative_arrival_time_rejected(self):
        session = make_session("a", 1)
        arrival = FrameArrival("a", 0, np.zeros(6), -1.0, 100.0)
        with pytest.raises(ServeError, match="non-negative"):
            DriftServer([session]).run([arrival])

    def test_duplicate_stream_ids_rejected(self):
        with pytest.raises(ServeError, match="duplicate"):
            SessionRegistry([make_session("a", 1), make_session("a", 2)])

    def test_finish_before_begin_rejected(self):
        with pytest.raises(ServeError, match="before begin"):
            make_session("a", 1).finish()

    def test_empty_registry_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            DriftServer([])

    def test_session_snapshot_exposes_tenant_state(self):
        frames = gaussian_stream(3, [(0.0, 20)])
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=CAPACITY * 0.5),
            stream_id="cam", deadline_ms=1e9, seed=2)
        session = unconstrained("cam", 3)
        DriftServer([session]).run(arrivals)
        snapshot = session.snapshot()
        assert snapshot["stream_id"] == "cam"
        assert snapshot["processed"] == 20
        assert snapshot["queue_depth"] == 0
        assert "inspector" in snapshot
