"""Builders for the serving suite, on top of :mod:`repro.testing`."""

from __future__ import annotations

from repro.serve import SessionConfig, StreamSession
from repro.testing import (  # noqa: F401 - re-exported for the suite
    DIM,
    gaussian_stream,
    make_pipeline,
    result_sig,
)


def make_session(stream_id: str, seed: int, **overrides) -> StreamSession:
    """One serving session around a fresh deterministic pipeline."""
    return StreamSession(stream_id, make_pipeline(seed=seed),
                         SessionConfig(**overrides))


def unconstrained(stream_id: str, seed: int, **overrides) -> StreamSession:
    """A session that can never shed or miss: effectively infinite queue
    and deadline, so the serve path must reproduce offline processing."""
    overrides.setdefault("queue_capacity", 1 << 20)
    overrides.setdefault("deadline_ms", 1e12)
    return make_session(stream_id, seed, **overrides)
