"""Overload control: state machine, conservation, isolation, snapshots.

The contracts pinned here:

- the :class:`OverloadController` is a deterministic hysteresis machine
  (one step per update, escalation always passes through DEGRADED) and a
  bit-exact :class:`~repro.runtime.protocols.Snapshotable` participant;
- conservation holds in every controller state: each arrival ends in
  exactly one of processed / degraded / shed / rejected, with
  ``rejected_infeasible`` a subset of ``rejected`` and every completion
  counted exactly once (the double-count pin);
- per-tenant isolation: a premium tenant's in-deadline completions never
  degrade as a lower-priority tenant's offered load grows;
- the default configuration actually exercises the degraded path under
  a 1.5x sweep (the path was dead before the controller existed).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder
from repro.runtime.protocols import Snapshotable
from repro.serve import (
    DriftServer,
    OverloadConfig,
    OverloadController,
    ServeConfig,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.serve.overload import DEGRADED, NORMAL, SHEDDING
from tests.serve.conftest import gaussian_stream, make_session

CAPACITY = capacity_fps()


def fleet_arrivals(seed, load, streams, n_frames=60, deadline_ms=60.0):
    per_stream_rate = load * CAPACITY / len(streams)
    arrivals = []
    for i, stream_id in enumerate(streams):
        frames = gaussian_stream(seed + i, [(0.0, n_frames)])
        arrivals.extend(generate_arrivals(
            frames, WorkloadConfig(rate_fps=per_stream_rate),
            stream_id=stream_id, deadline_ms=deadline_ms, seed=seed + i))
    return arrivals


class TestControllerConfig:
    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            OverloadConfig(degrade_high=0.4, degrade_low=0.5)
        with pytest.raises(ConfigurationError):
            OverloadConfig(shed_high=0.05, shed_low=0.10)

    def test_nonpositive_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            OverloadConfig(degrade_low=0.0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(degrade_tau_ms=0.0)


class TestControllerMachine:
    def test_starts_normal(self):
        assert OverloadController().state == NORMAL

    def test_escalates_on_high_pressure(self):
        controller = OverloadController()
        assert controller.update(0.0, 0.9) == (NORMAL, DEGRADED)
        assert controller.state == DEGRADED

    def test_hysteresis_band_holds_state(self):
        controller = OverloadController()
        controller.update(0.0, 0.9)
        # between degrade_low and degrade_high: no transition either way
        assert controller.update(1.0, 0.6) is None
        assert controller.state == DEGRADED
        assert controller.update(2.0, 0.3) == (DEGRADED, NORMAL)

    def test_sheds_when_degraded_pass_saturates(self):
        config = OverloadConfig(degrade_tau_ms=100.0)
        controller = OverloadController(config)
        controller.update(0.0, 0.9)
        # enough cheap-pass work to push the decayed share over shed_high
        for i in range(150):
            controller.note_degraded(0.45, float(i))
        assert controller.degrade_share() >= config.shed_high
        assert controller.update(150.0, 0.9) == (DEGRADED, SHEDDING)

    def test_recovers_from_shedding_as_ema_decays(self):
        controller = OverloadController(OverloadConfig(degrade_tau_ms=50.0))
        controller.update(0.0, 0.9)
        for i in range(60):
            controller.note_degraded(0.45, float(i))
        controller.update(60.0, 0.9)
        assert controller.state == SHEDDING
        # long quiet stretch: the EMA decays below shed_low
        assert controller.update(1000.0, 0.9) == (SHEDDING, DEGRADED)

    def test_one_step_per_update(self):
        """Even under instant saturation, SHEDDING is reached via
        DEGRADED -- every escalation is observable."""
        controller = OverloadController(OverloadConfig(degrade_tau_ms=10.0))
        controller.note_degraded(100.0, 0.0)  # share >> shed_high already
        assert controller.update(0.0, 5.0) == (NORMAL, DEGRADED)
        assert controller.update(0.0, 5.0) == (DEGRADED, SHEDDING)
        assert controller.transitions == 2


class TestControllerSnapshot:
    def drive(self, controller, steps):
        for now, pressure, degraded in steps:
            if degraded:
                controller.note_degraded(degraded, now)
            controller.update(now, pressure)

    def test_satisfies_snapshotable(self):
        assert isinstance(OverloadController(), Snapshotable)

    def test_roundtrip_is_bit_exact_mid_run(self):
        steps = [(float(i), 0.9 if i % 7 else 0.2,
                  0.45 if i % 3 == 0 else 0.0) for i in range(40)]
        original = OverloadController(OverloadConfig(degrade_tau_ms=20.0))
        self.drive(original, steps[:25])
        restored = OverloadController(OverloadConfig(degrade_tau_ms=20.0))
        restored.load_state_dict(original.state_dict())
        assert restored.state_dict() == original.state_dict()
        self.drive(original, steps[25:])
        self.drive(restored, steps[25:])
        assert restored.state_dict() == original.state_dict()
        assert restored.state == original.state
        assert restored.transitions == original.transitions

    def test_rejects_unknown_state(self):
        controller = OverloadController()
        state = controller.state_dict()
        state["state"] = "panicking"
        with pytest.raises(ConfigurationError):
            controller.load_state_dict(state)


class TestOverloadServing:
    def test_degraded_path_fires_under_default_config_at_1_5x(self):
        """Regression for the dead degrade path: before the controller,
        the default bench/server config could never produce degraded > 0."""
        streams = ("a", "b")
        arrivals = fleet_arrivals(11, 1.5, streams, n_frames=80)
        sessions = [make_session(sid, 11 + i, queue_capacity=8,
                                 deadline_ms=60.0)
                    for i, sid in enumerate(streams)]
        result = DriftServer(sessions).run(arrivals)
        assert result.degraded > 0
        assert result.goodput_fps >= 0.8 * result.capacity_fps

    def test_non_degradable_tenant_rejects_infeasible(self):
        streams = ("full", "cheap")
        arrivals = fleet_arrivals(13, 2.0, streams, n_frames=80)
        sessions = [
            make_session("full", 13, queue_capacity=8, deadline_ms=60.0,
                         degraded_allowed=False),
            make_session("cheap", 14, queue_capacity=8, deadline_ms=60.0),
        ]
        result = DriftServer(sessions).run(arrivals)
        assert result.streams["full"].rejected_infeasible > 0
        assert result.streams["full"].degraded == 0
        assert result.streams["cheap"].degraded > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**4),
           load=st.floats(min_value=0.5, max_value=3.0),
           degradable=st.booleans(),
           capacity=st.integers(2, 12))
    def test_conservation_across_controller_states(self, seed, load,
                                                   degradable, capacity):
        streams = ("a", "b")
        arrivals = fleet_arrivals(seed, load, streams, n_frames=40)
        sessions = [
            make_session("a", seed, queue_capacity=capacity,
                         deadline_ms=60.0, degraded_allowed=degradable),
            make_session("b", seed + 1, queue_capacity=capacity,
                         deadline_ms=60.0, priority=1, weight=2.0),
        ]
        result = DriftServer(sessions).run(arrivals)
        for slo in result.streams.values():
            assert slo.arrivals == (slo.processed + slo.degraded
                                    + slo.shed_total + slo.rejected)
            assert slo.rejected_infeasible <= slo.rejected
            # the double-count pin: every completion recorded exactly
            # once, whether it took the full or the degraded pass
            assert len(slo.latencies_ms) == slo.processed + slo.degraded
            # degraded frames bypass the pipeline entirely
            assert slo.deadline_misses <= slo.processed + slo.degraded

    def test_controller_is_seed_deterministic(self):
        streams = ("a", "b", "c")

        def run_once():
            arrivals = fleet_arrivals(29, 2.0, streams, n_frames=60)
            sessions = [make_session(sid, 29 + i, queue_capacity=8,
                                 deadline_ms=60.0)
                        for i, sid in enumerate(streams)]
            recorder = Recorder()
            server = DriftServer(sessions, recorder=recorder)
            result = server.run(arrivals)
            transitions = [
                (event["previous"], event["state"])
                for event in recorder.events
                if event["kind"] == "overload_transition"]
            return (transitions, server.controller.state_dict(),
                    result.slo_entry(2.0, 2.0 * CAPACITY))

        first, second = run_once(), run_once()
        assert first[0] == second[0]
        assert first[0], "controller never transitioned at 2x load"
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_premium_goodput_monotone_as_low_priority_load_grows(self):
        """Per-tenant isolation: the premium tenant's in-deadline
        completions must not decrease when a best-effort tenant floods
        the backend."""
        def premium_completions(hot_load):
            arrivals = []
            frames = gaussian_stream(31, [(0.0, 60)])
            arrivals.extend(generate_arrivals(
                frames, WorkloadConfig(rate_fps=0.3 * CAPACITY),
                stream_id="vip", deadline_ms=120.0, seed=31))
            frames = gaussian_stream(32, [(0.0, 120)])
            arrivals.extend(generate_arrivals(
                frames, WorkloadConfig(rate_fps=hot_load * CAPACITY),
                stream_id="hot", deadline_ms=60.0, seed=32))
            sessions = [
                make_session("vip", 31, queue_capacity=16, priority=1,
                             weight=3.0, deadline_ms=120.0,
                             degraded_allowed=False),
                make_session("hot", 32, queue_capacity=8, deadline_ms=60.0),
            ]
            result = DriftServer(sessions).run(arrivals)
            slo = result.streams["vip"]
            return slo.served - slo.deadline_misses

        completions = [premium_completions(load)
                       for load in (0.5, 1.0, 2.0, 3.0)]
        assert completions[0] > 0
        for before, after in zip(completions, completions[1:]):
            assert after >= before, (
                f"premium goodput regressed under background load: "
                f"{completions}")

    def test_unconstrained_run_never_leaves_normal(self):
        frames = gaussian_stream(37, [(0.0, 60)])
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=1.5 * CAPACITY),
            stream_id="cam", deadline_ms=1e12, seed=37)
        session = make_session("cam", 37, queue_capacity=1 << 20,
                               deadline_ms=1e12)
        server = DriftServer([session])
        result = server.run(arrivals)
        assert server.controller.state == NORMAL
        assert server.controller.transitions == 0
        assert result.rejected_infeasible == 0
        assert result.overload_transitions == 0

    def test_telemetry_matches_overload_accounting(self):
        streams = ("a", "b")
        arrivals = fleet_arrivals(41, 2.0, streams, n_frames=80)
        sessions = [
            make_session("a", 41, queue_capacity=8, deadline_ms=60.0,
                         degraded_allowed=False),
            make_session("b", 42, queue_capacity=8, deadline_ms=60.0),
        ]
        recorder = Recorder()
        server = DriftServer(sessions, recorder=recorder)
        result = server.run(arrivals)
        assert recorder.counter("serve.rejected_infeasible").value == (
            result.rejected_infeasible)
        assert recorder.counter("serve.overload_transitions").value == (
            result.overload_transitions)
        assert result.overload_transitions == server.controller.transitions
        for stream_id, slo in result.streams.items():
            gauge = recorder.gauge(f"serve.goodput_fps.{stream_id}")
            assert gauge.value == pytest.approx(
                slo.goodput_fps(result.makespan_ms))

    def test_disabled_overload_restores_legacy_admission(self):
        streams = ("a", "b", "c", "d")

        def run(enabled):
            arrivals = fleet_arrivals(47, 2.0, streams, n_frames=80)
            sessions = [make_session(sid, 47 + i, queue_capacity=8,
                                     deadline_ms=60.0)
                        for i, sid in enumerate(streams)]
            config = ServeConfig(overload=OverloadConfig(enabled=enabled))
            return DriftServer(sessions, config).run(arrivals)

        legacy = run(False)
        assert legacy.rejected_infeasible == 0
        assert legacy.overload_transitions == 0
        assert legacy.shed_total > 0  # queue overflow is back
        # sustained backlog: admitted frames complete late and goodput
        # collapses, which is exactly what the controller prevents
        assert legacy.goodput_fps < 0.8 * legacy.capacity_fps
        adaptive = run(True)
        assert adaptive.goodput_fps >= 0.8 * adaptive.capacity_fps
        assert adaptive.goodput_fps > legacy.goodput_fps
