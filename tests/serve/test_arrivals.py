"""Workload generation: determinism, pattern shape, validation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serve import (
    DEGRADED_FRAME_OPS,
    MONITOR_FRAME_OPS,
    WorkloadConfig,
    capacity_fps,
    frame_cost_ms,
    generate_arrivals,
)
from repro.sim.costs import PAPER_COSTS
from tests.serve.conftest import gaussian_stream


class TestCostMaths:
    def test_monitor_cost_matches_paper_profile(self):
        expected = sum(PAPER_COSTS.cost(op) for op in
                       ("vae_encode", "knn_nonconformity",
                        "martingale_update", "classifier_infer"))
        assert frame_cost_ms() == pytest.approx(expected)

    def test_capacity_is_inverse_cost(self):
        assert capacity_fps() == pytest.approx(1000.0 / frame_cost_ms())

    def test_degraded_path_is_cheaper(self):
        assert (frame_cost_ms(PAPER_COSTS, DEGRADED_FRAME_OPS)
                < frame_cost_ms(PAPER_COSTS, MONITOR_FRAME_OPS))

    def test_zero_cost_operations_rejected(self):
        with pytest.raises(ConfigurationError):
            capacity_fps(PAPER_COSTS, ())


class TestWorkloadConfig:
    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(rate_fps=0.0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(rate_fps=10.0, pattern="sawtooth")

    def test_burst_duty_times_factor_must_stay_below_one(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(rate_fps=10.0, pattern="burst",
                           burst_factor=4.0, burst_duty=0.25)

    def test_diurnal_amplitude_bounded(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(rate_fps=10.0, pattern="diurnal",
                           diurnal_amplitude=1.0)

    def test_poisson_rate_is_constant(self):
        config = WorkloadConfig(rate_fps=30.0)
        assert config.rate_at(0.0) == config.rate_at(12345.6) == 30.0

    def test_burst_preserves_long_run_mean(self):
        config = WorkloadConfig(rate_fps=30.0, pattern="burst",
                                burst_factor=3.0, burst_duty=0.25)
        on = config.rate_at(0.0)
        off = config.rate_at(0.9 * config.burst_period_s * 1000.0)
        duty = config.burst_duty
        assert on == pytest.approx(90.0)
        assert duty * on + (1 - duty) * off == pytest.approx(30.0)

    def test_diurnal_oscillates_around_mean(self):
        config = WorkloadConfig(rate_fps=30.0, pattern="diurnal",
                                diurnal_amplitude=0.5,
                                diurnal_period_s=10.0)
        peak = config.rate_at(2500.0)     # quarter period: sin = 1
        trough = config.rate_at(7500.0)   # three quarters: sin = -1
        assert peak == pytest.approx(45.0)
        assert trough == pytest.approx(15.0)
        assert config.rate_at(0.0) == pytest.approx(30.0)


class TestGenerateArrivals:
    def test_deterministic_for_seed(self):
        frames = gaussian_stream(5, [(0.0, 50)])
        config = WorkloadConfig(rate_fps=40.0, pattern="burst")
        first = generate_arrivals(frames, config, seed=9)
        second = generate_arrivals(frames, config, seed=9)
        assert [a.arrival_ms for a in first] == [
            a.arrival_ms for a in second]
        assert [a.seq for a in first] == list(range(50))

    def test_different_streams_are_independent(self):
        frames = gaussian_stream(5, [(0.0, 30)])
        config = WorkloadConfig(rate_fps=40.0)
        a = generate_arrivals(frames, config, stream_id="a", seed=9)
        b = generate_arrivals(frames, config, stream_id="b", seed=9)
        assert [x.arrival_ms for x in a] != [x.arrival_ms for x in b]

    def test_timestamps_strictly_increase(self):
        frames = gaussian_stream(1, [(0.0, 200)])
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=100.0, pattern="diurnal"),
            seed=3)
        times = [a.arrival_ms for a in arrivals]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_deadline_is_arrival_plus_budget(self):
        frames = gaussian_stream(1, [(0.0, 10)])
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=10.0), deadline_ms=42.0,
            seed=1)
        for a in arrivals:
            assert a.deadline_ms == pytest.approx(a.arrival_ms + 42.0)
            assert a.budget_ms == pytest.approx(42.0)

    def test_nonpositive_deadline_rejected(self):
        frames = gaussian_stream(1, [(0.0, 4)])
        with pytest.raises(ConfigurationError):
            generate_arrivals(frames, WorkloadConfig(rate_fps=10.0),
                              deadline_ms=0.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6),
           rate=st.floats(min_value=30.0, max_value=500.0),
           pattern=st.sampled_from(["poisson", "burst", "diurnal"]))
    def test_mean_rate_tracks_config(self, seed, rate, pattern):
        """The empirical rate lands near the configured long-run mean.

        The pattern's mean is only defined over whole periods, so the
        period is scaled to the sampled rate (about 50 arrivals per
        period, 8 periods per trace) and the count is taken up to the
        last complete period boundary -- the dense regime the O(n)
        instantaneous-rate approximation promises the mean in.
        """
        n = 400
        period_s = 50.0 / rate
        frames = np.zeros((n, 4))
        arrivals = generate_arrivals(
            frames, WorkloadConfig(rate_fps=rate, pattern=pattern,
                                   burst_period_s=period_s,
                                   diurnal_period_s=period_s),
            seed=seed)
        period_ms = period_s * 1000.0
        whole = math.floor(arrivals[-1].arrival_ms / period_ms)
        assert whole >= 4, "trace too short to cover whole periods"
        count = sum(1 for a in arrivals
                    if a.arrival_ms < whole * period_ms)
        empirical = count / (whole * period_s)
        assert empirical == pytest.approx(rate, rel=0.35)
