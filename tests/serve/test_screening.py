"""Tier-0 screening of degraded frames at the serving edge.

When overload diverts frames to the cheap pass, a session backed by a
cascade (or the bare pixel-stat screen) still watches them for drift
through the stateless ``peek_suspicion`` -- observability only: no clock
charge, no monitor state touched, so attaching the screen cannot change
any serving decision or the full path's bit-identity.
"""

from __future__ import annotations

from repro.cascade import CascadeMonitor
from repro.detectors import zoo
from repro.detectors.tier0 import PixelStatMonitor
from repro.obs.recorder import Recorder
from repro.serve import (
    DriftServer,
    SessionConfig,
    StreamSession,
    WorkloadConfig,
    capacity_fps,
    generate_arrivals,
)
from repro.testing import make_pipeline
from tests.serve.conftest import gaussian_stream

CAPACITY = capacity_fps()


def cascade_factory(bundle):
    return CascadeMonitor(PixelStatMonitor(bundle.sigma),
                          zoo.build("inspector", bundle))


def screened_session(stream_id: str, seed: int,
                     monitor_factory=cascade_factory) -> StreamSession:
    pipeline = make_pipeline(seed=seed, monitor_factory=monitor_factory)
    return StreamSession(stream_id, pipeline,
                         SessionConfig(queue_capacity=8, deadline_ms=60.0))


def overload_arrivals(seed: int, streams=("a", "b"), n_frames: int = 80,
                      load: float = 1.5):
    """The 1.5x two-stream sweep the overload suite certifies actually
    exercises the degraded path."""
    per_stream_rate = load * CAPACITY / len(streams)
    arrivals = []
    for i, stream_id in enumerate(streams):
        frames = gaussian_stream(seed + i, [(0.0, n_frames)])
        arrivals.extend(generate_arrivals(
            frames, WorkloadConfig(rate_fps=per_stream_rate),
            stream_id=stream_id, deadline_ms=60.0, seed=seed + i))
    return arrivals


def sessions(seed: int, monitor_factory=cascade_factory):
    return [screened_session(sid, seed + i, monitor_factory)
            for i, sid in enumerate(("a", "b"))]


class TestDegradedScreening:
    def test_every_degraded_frame_is_screened(self):
        recorder = Recorder()
        server = DriftServer(sessions(11), recorder=recorder)
        result = server.run(overload_arrivals(11))
        assert result.degraded > 0
        assert recorder.counter("serve.degraded_screened").value == \
            result.degraded
        assert recorder.histogram("serve.screen_suspicion").total == \
            result.degraded

    def test_sessions_without_a_screen_are_untouched(self):
        """The default Drift Inspector offers no ``peek_suspicion``:
        degraded frames flow exactly as before the screen existed."""
        recorder = Recorder()
        server = DriftServer(sessions(11, monitor_factory=None),
                             recorder=recorder)
        result = server.run(overload_arrivals(11))
        assert result.degraded > 0
        assert recorder.counter("serve.degraded_screened").value == 0

    def test_screening_changes_no_serving_outcome(self):
        """Screened and unscreened backends make identical decisions:
        the peek is pure observability."""
        def outcome(monitor_factory):
            server = DriftServer(sessions(7, monitor_factory))
            result = server.run(overload_arrivals(7))
            return [(slo.arrivals, slo.processed, slo.degraded,
                     slo.shed_total, slo.rejected)
                    for slo in result.streams.values()]

        # same tier-1 monitor both times; only the screen differs
        screened = outcome(cascade_factory)
        bare = outcome(lambda bundle: zoo.build("inspector", bundle))
        assert screened == bare

    def test_screening_is_deterministic(self):
        def counters():
            recorder = Recorder()
            server = DriftServer(sessions(23), recorder=recorder)
            server.run(overload_arrivals(23))
            return (recorder.counter("serve.degraded_screened").value,
                    recorder.histogram("serve.screen_suspicion").total,
                    recorder.histogram("serve.screen_suspicion").sum)

        assert counters() == counters()
