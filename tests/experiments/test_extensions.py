"""Extension experiments (ablations, statistical baselines) and the CLI."""

from __future__ import annotations

import pytest

from repro.experiments import ablations, statistical_baselines
from repro.experiments.runner import (
    ALL_EXPERIMENTS,
    EXTENSIONS,
    build_contexts,
    run_experiment,
)


class TestAblations:
    def test_betting_ablation_rows(self, bdd_context):
        result = ablations.betting_ablation(bdd_context)
        variants = [r["variant"] for r in result.rows]
        assert "power eps=0.1 (default)" in variants
        assert "one-sided" in variants
        for row in result.rows:
            assert row["missed"] >= 0 and row["false_alarms"] >= 0

    def test_sensitivity_covers_w_r_k(self, bdd_context):
        result = ablations.sensitivity_ablation(bdd_context)
        parameters = {r["parameter"] for r in result.rows}
        assert parameters == {"W", "r", "K"}

    def test_embedding_ablation_flags_latent_only_weakness(self, bdd_context):
        result = ablations.embedding_ablation(bdd_context)
        rows = {r["variant"]: r for r in result.rows}
        assert set(rows) == {"latent only", "latent + recon",
                             "latent + profile", "full (default)",
                             "full, LOO scoring"}
        # toggling the flags must not leave the shared VAEs mutated
        bundle = bdd_context.registry().get("day")
        assert bundle.vae.config.augment_recon
        assert bundle.vae.config.augment_profile

    def test_ensemble_size_ablation(self, bdd_context):
        result = ablations.ensemble_size_ablation(bdd_context, sizes=(2, 3))
        assert [r["ensemble_size"] for r in result.rows] == [2, 3]
        for row in result.rows:
            assert row["correct_selections"] + row["novel_flags"] <= row[
                "drifts"]


class TestStatisticalBaselines:
    def test_all_detectors_reported(self, bdd_context):
        result = statistical_baselines.run(bdd_context)
        detectors = [r["detector"] for r in result.rows]
        assert detectors == ["DriftInspector", "KS", "CUSUM", "Moment"]

    def test_di_detects_most_drifts(self, bdd_context):
        result = statistical_baselines.run(bdd_context)
        di = next(r for r in result.rows if r["detector"] == "DriftInspector")
        total = len(bdd_context.dataset.drift_frames)
        assert di["detected"] + di["missed"] + di["false_alarms"] >= total
        assert di["detected"] >= total - 1


class TestRunner:
    def test_experiment_ids_are_consistent(self):
        assert "fig3" in ALL_EXPERIMENTS
        assert set(EXTENSIONS) == {"stat-baselines", "ablations"}

    def test_unknown_experiment_exits(self, tiny_config):
        contexts = {}
        with pytest.raises(SystemExit):
            run_experiment("fig99", contexts, tiny_config)

    def test_table5_runs_without_contexts(self, tiny_config):
        results = run_experiment("table5", {}, tiny_config)
        assert results[0].experiment == "table5"

    def test_per_dataset_experiment_uses_given_contexts(self, bdd_context,
                                                        tiny_config):
        results = run_experiment("fig5", {"BDD": bdd_context}, tiny_config)
        assert results[0].experiment == "fig5"

    def test_build_contexts_subset(self, tiny_config):
        contexts = build_contexts(tiny_config, datasets=["BDD"])
        assert list(contexts) == ["BDD"]
        assert contexts["BDD"].dataset.name == "BDD"
