"""Tests for the experiment harness and CLI."""
