"""Experiment harness: each module produces a sane table at the fast budget.

These are integration-level smoke tests: they verify the experiment wiring
(rows, columns, headline invariants), not the paper-scale numbers -- those
are produced by the benchmark harness at the default profile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig3_detection,
    fig4_slow_drift,
    fig5_brier,
    fig6_invocations,
    fig7_count_accuracy,
    fig8_spatial_accuracy,
    table5_datasets,
    table6_detect_time,
    table7_per_frame,
    table8_selection_time,
    table9_end_to_end,
)
from repro.experiments.common import ExperimentResult


class TestExperimentResult:
    def test_format_table_renders_rows_and_notes(self):
        result = ExperimentResult("exp", "demo")
        result.add_row(a=1, b=2.5)
        result.add_row(a=3, b=4.0, c="x")
        result.notes.append("a note")
        text = result.format_table()
        assert "exp" in text and "2.500" in text and "note: a note" in text

    def test_column_access(self):
        result = ExperimentResult("exp", "demo")
        result.add_row(a=1)
        result.add_row(a=2)
        assert result.column("a") == [1, 2]
        assert result.column("missing") == [None, None]

    def test_empty_result_formats(self):
        assert "(no rows)" in ExperimentResult("e", "d").format_table()


class TestTable5:
    def test_rows_for_all_datasets(self, tiny_config):
        result = table5_datasets.run(tiny_config, sample=40)
        assert {r["dataset"] for r in result.rows} == {"BDD", "Detrac",
                                                       "Tokyo"}
        for row in result.rows:
            assert row["obj_per_frame"] == pytest.approx(
                row["paper_obj_per_frame"], abs=2.5)


class TestFig3:
    def test_di_beats_odin_on_bdd(self, bdd_context):
        result = fig3_detection.run(bdd_context, warmup=20, limit=100)
        assert len(result.rows) == 3  # three drifts in BDD
        di = [r["di_delay"] for r in result.rows]
        odin = [r["odin_delay"] for r in result.rows]
        assert all(d is not None for d in di)
        detected_pairs = [(d, o) for d, o in zip(di, odin) if o is not None]
        assert detected_pairs, "ODIN detected nothing"
        assert all(d <= o for d, o in detected_pairs)
        assert not any(r["di_false_positive"] for r in result.rows)


class TestTable6:
    def test_di_cheaper_than_odin(self, bdd_context):
        result = table6_detect_time.run(bdd_context)
        row = result.rows[0]
        assert row["di_ms_per_frame"] == pytest.approx(3.0, abs=0.2)
        assert row["odin_ms_per_frame"] > row["di_ms_per_frame"]
        assert row["di_paper_scale_s"] < row["odin_paper_scale_s"]


class TestFig4:
    def test_slow_drift_detected_by_both(self, tiny_config):
        result = fig4_slow_drift.run(config=tiny_config)
        row = result.rows[0]
        assert row["di_delay"] is not None
        assert not row["di_false_positive"]
        if row["odin_delay"] is not None:
            assert row["di_delay"] <= row["odin_delay"]


class TestFig6:
    def test_ms_is_one_invocation_per_frame(self, bdd_context):
        result = fig6_invocations.run(bdd_context)
        for row in result.rows:
            assert row["msbo_invocations_per_frame"] == 1.0
            assert row["msbi_invocations_per_frame"] == 1.0
            assert row["odin_invocations_per_frame"] >= 1.0


class TestTable7:
    def test_selection_cost_structure(self, bdd_context):
        result = table7_per_frame.run(bdd_context)
        row = result.rows[0]
        # ODIN per-frame cost: embed + one op per cluster (4 on BDD)
        assert row["odin_ms_per_frame"] == pytest.approx(1.8 + 4 * 3.2)
        # MSBO / MSBI per-frame costs dwarf ODIN's (paper Table 7 shape)
        assert row["msbo_ms_per_frame"] > 10 * row["odin_ms_per_frame"]
        assert row["msbi_ms_per_frame"] > 10 * row["odin_ms_per_frame"]


class TestTable8:
    def test_odin_stream_selection_dominates_at_paper_scale(self, bdd_context):
        result = table8_selection_time.run(bdd_context)
        row = result.rows[0]
        assert row["msbo_s_per_drift"] < row["odin_s_paper_scale"]
        assert row["msbi_s_per_drift"] < row["odin_s_paper_scale"]


class TestFig5:
    def test_matched_model_has_lowest_brier(self, bdd_context):
        result = fig5_brier.run(bdd_context, eval_frames=40)
        matched_best = sum(
            1 for row in result.rows if row["best_by_brier"] == row["sequence"])
        assert matched_best >= 3  # at least 3 of 4 sequences


class TestEndToEnd:
    def test_table9_orderings(self, bdd_context):
        result = table9_end_to_end.run(bdd_context)
        seconds = {r["system"]: r["paper_scale_s"] for r in result.rows}
        assert seconds["(DI, MSBO)"] < seconds["ODIN"]
        assert seconds["(DI, MSBI)"] < seconds["ODIN"]
        assert seconds["MaskRCNN"] > seconds["YOLO"]
        invocations = {r["system"]: r["invocations_per_frame"]
                       for r in result.rows}
        assert invocations["(DI, MSBO)"] == 1.0
        assert invocations["ODIN"] >= 1.0

    def test_fig7_accuracy_orderings(self, bdd_context):
        result = fig7_count_accuracy.run(bdd_context)
        overall = next(r for r in result.rows if r["sequence"] == "OVERALL")
        assert overall["A_q[MaskRCNN]"] == pytest.approx(1.0)
        assert overall["A_q[(DI, MSBO)]"] > overall["A_q[YOLO]"]
        assert overall["A_q[(DI, MSBI)]"] > overall["A_q[YOLO]"]

    def test_fig8_spatial_accuracy(self, bdd_context):
        result = fig8_spatial_accuracy.run(bdd_context)
        overall = next(r for r in result.rows if r["sequence"] == "OVERALL")
        assert overall["A_q[MaskRCNN]"] == pytest.approx(1.0)
        assert overall["A_q[(DI, MSBO)]"] > 0.5

    def test_runs_are_cached_on_context(self, bdd_context):
        from repro.experiments.endtoend import run_systems
        first = run_systems(bdd_context, spatial=False)
        second = run_systems(bdd_context, spatial=False)
        assert first is second
