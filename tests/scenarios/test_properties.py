"""Property suite: the three backends must tell one consistent story.

The load-bearing invariant of the scenario subsystem is that a script's
ground truth is *backend-independent*: the feature-space compilation
(declarative events), the pixel compilation (events derived by scanning
the factor trajectory) and the script itself must agree on when drift
happens and which factors moved -- for every script hypothesis can
dream up, not just the built-ins.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    FACTORS,
    DriftScript,
    FactorTrack,
    compile_features,
    compile_video,
    compile_workload,
    compound,
    observed_events,
    script_document,
    validate_scenario_document,
)

#: Bounded magnitudes keep every factor inside the pixel axes' range.
magnitudes = st.floats(min_value=0.5, max_value=6.0,
                       allow_nan=False, allow_infinity=False)


@st.composite
def quantized_tracks(draw):
    """One pixel-compilable track (quantized or constant-piece kinds)."""
    factor = draw(st.sampled_from(FACTORS))
    kind = draw(st.sampled_from(
        ("abrupt", "gradual", "recurring", "adversarial_slow",
         "camera_displacement", "occlusion")))
    onset = draw(st.integers(min_value=1, max_value=60))
    magnitude = draw(magnitudes)
    if kind in ("gradual", "adversarial_slow"):
        steps = draw(st.integers(min_value=1, max_value=4))
        duration = steps * draw(st.integers(min_value=2, max_value=10))
        return FactorTrack(factor, kind, onset, magnitude,
                           duration=duration, steps=steps)
    if kind == "recurring":
        duration = draw(st.integers(min_value=2, max_value=10))
        period = duration + draw(st.integers(min_value=2, max_value=10))
        recurrences = draw(st.integers(min_value=1, max_value=3))
        return FactorTrack(factor, kind, onset, magnitude,
                           duration=duration, period=period,
                           recurrences=recurrences)
    if kind == "camera_displacement":
        return FactorTrack(factor, kind, onset, magnitude,
                           recovery=draw(st.integers(min_value=2,
                                                     max_value=40)))
    if kind == "occlusion":
        return FactorTrack(factor, kind, onset, magnitude,
                           duration=draw(st.integers(min_value=2,
                                                     max_value=40)))
    return FactorTrack(factor, kind, onset, magnitude)


@st.composite
def scripts(draw):
    track = draw(quantized_tracks())
    frames = draw(st.integers(min_value=track.onset + 1, max_value=200))
    return DriftScript("prop", frames, (track,))


@settings(max_examples=40, deadline=None)
@given(script=scripts())
def test_feature_and_pixel_backends_agree_on_ground_truth(script):
    """Onset frames and factor labels agree between the declarative
    events the feature backend carries and the scanned events the pixel
    backend derives."""
    feature = compile_features(script, seed=0)
    pixel_events = observed_events(script)  # what compile_video attaches
    assert {e.frame for e in feature.events} == \
        {e.frame for e in pixel_events}
    declared = {(e.frame, e.factors) for e in feature.events}
    scanned = {(e.frame, e.factors) for e in pixel_events}
    assert declared == scanned
    assert len(feature.frames) == script.frames


@settings(max_examples=20, deadline=None)
@given(script=scripts())
def test_pixel_lowering_preserves_horizon_and_onset(script):
    compiled = compile_video(script, seed=0)
    assert sum(s.length for s in compiled.segments) == script.frames
    if script.onset is not None:
        assert script.onset in compiled.onsets()


@settings(max_examples=40, deadline=None)
@given(onset=st.integers(min_value=1, max_value=50),
       duration=st.integers(min_value=2, max_value=10),
       gap=st.integers(min_value=1, max_value=10),
       recurrences=st.integers(min_value=1, max_value=5),
       magnitude=magnitudes)
def test_recurring_scripts_emit_one_event_per_recurrence(
        onset, duration, gap, recurrences, magnitude):
    period = duration + gap
    frames = onset + period * recurrences + 1
    script = compound("rec", frames, "recurring", onset, magnitude,
                      duration=duration, period=period,
                      recurrences=recurrences)
    events = script.events()
    assert len(events) == recurrences
    assert [e.frame for e in events] == \
        [onset + i * period for i in range(recurrences)]
    assert all(e.kind == "recurring" for e in events)
    # and the scanning derivation sees the same episodes
    assert [e.frame for e in observed_events(script)] == \
        [e.frame for e in events]


@settings(max_examples=20, deadline=None)
@given(script=scripts())
def test_every_generated_script_serializes_and_validates(script):
    validate_scenario_document(script_document(script))


@settings(max_examples=20, deadline=None)
@given(script=scripts())
def test_workload_profile_brackets_coupling(script):
    profile = compile_workload(script)
    multipliers = [m for _, m in profile.pieces]
    assert all(profile.coupling.baseline <= m <= profile.coupling.surge
               for m in multipliers)
    assert profile.pieces[0][0] == 0.0
