"""Pixel backend: lowering strategies, factor axes, dataset identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    DriftScript,
    FactorTrack,
    VideoProfile,
    compile_video,
    get_script,
    slow_drift_script,
)
from repro.video.scenes import DAY, DISPLACED, FRONT, NIGHT, FactorAxes


class TestFactorAxes:
    def test_lighting_endpoints_are_canonical_conditions(self):
        axes = FactorAxes()
        assert axes.condition_at(lighting=0.0) is DAY
        assert axes.condition_at(lighting=1.0) is NIGHT

    def test_geometry_endpoints_are_canonical_angles(self):
        axes = FactorAxes()
        assert axes.angle_at(0.0) is FRONT
        assert axes.angle_at(1.0) is DISPLACED

    def test_intermediate_lighting_blends(self):
        condition = FactorAxes().condition_at(lighting=0.5)
        assert DAY.background > condition.background > NIGHT.background

    def test_occlusion_axis_raises_condition_occlusion(self):
        axes = FactorAxes()
        assert axes.condition_at(occlusion=1.0).occlusion == \
            pytest.approx(axes.occlusion_span)

    def test_density_axis_is_signed(self):
        axes = FactorAxes()
        assert axes.density_shift(-1.0) == -axes.density_span
        assert axes.density_shift(0.5) == 0.5 * axes.density_span


class TestLowering:
    def test_piecewise_segments_partition_horizon(self):
        for name in ("abrupt", "recurring", "camera_displacement",
                     "occlusion"):
            compiled = compile_video(get_script(name), seed=0)
            total = sum(s.length for s in compiled.segments)
            assert total == get_script(name).frames, name

    def test_recurring_script_alternates_segments(self):
        compiled = compile_video(get_script("recurring"), seed=0)
        # baseline, then 3 x (drifted, baseline)
        assert len(compiled.segments) == 7
        assert compiled.onsets() == (120, 200, 280)

    def test_out_of_range_magnitude_rejected(self):
        script = DriftScript("hot", 100, (
            FactorTrack("lighting", "abrupt", 50, 9.0),), feature_scale=6.0)
        with pytest.raises(ScenarioError):
            compile_video(script, seed=0)

    def test_smooth_non_lighting_ramp_rejected(self):
        script = DriftScript("pan", 100, (
            FactorTrack("geometry", "gradual", 50, 6.0, duration=30),))
        with pytest.raises(ScenarioError):
            compile_video(script, seed=0)

    def test_smooth_ramp_at_frame_zero_rejected(self):
        with pytest.raises(ScenarioError):
            compile_video(DriftScript("x", 100, (
                FactorTrack("lighting", "gradual", 0, 6.0, duration=30),)),
                seed=0)

    def test_transition_lowering_uses_native_blending(self):
        script = slow_drift_script(frames=120, transition=30)
        compiled = compile_video(script, seed=3)
        assert [s.name for s in compiled.segments] == ["day", "night"]
        assert compiled.segments[1].transition == 30
        assert compiled.segments[1].condition is NIGHT

    def test_profile_controls_object_statistics(self):
        profile = VideoProfile(objects_mean=5.0, objects_std=1.0,
                               bus_fraction=0.4)
        compiled = compile_video(get_script("stationary"), seed=0,
                                 profile=profile)
        segment = compiled.segments[0]
        assert segment.objects_mean == 5.0
        assert segment.bus_fraction == 0.4


class TestCompiledStream:
    def test_same_seed_same_pixels(self):
        a = compile_video(get_script("occlusion"), seed=7)
        b = compile_video(get_script("occlusion"), seed=7)
        fa = np.stack([f.pixels for f in a.stream.materialize()])
        fb = np.stack([f.pixels for f in b.stream.materialize()])
        assert np.array_equal(fa, fb)

    def test_occluder_darkens_frames(self):
        compiled = compile_video(get_script("occlusion"), seed=7)
        frames = compiled.stream.materialize()
        pre = np.mean([f.pixels.mean() for f in frames[80:120]])
        during = np.mean([f.pixels.mean() for f in frames[120:200]])
        assert during < pre

    def test_displacement_moves_pixels_then_recalibrates(self):
        compiled = compile_video(get_script("camera_displacement"), seed=7)
        frames = compiled.stream.materialize()

        def mean_frame(lo, hi):
            return np.mean([f.pixels for f in frames[lo:hi]], axis=0)

        baseline, displaced = mean_frame(60, 120), mean_frame(120, 240)
        recovered = mean_frame(240, 320)
        moved = np.abs(baseline - displaced).mean()
        returned = np.abs(baseline - recovered).mean()
        assert moved > 3 * returned
