"""Slow virtual-time soak: a million scripted frames through the kernel.

Two guarantees a long-lived deployment needs from the runtime, checked
against a scenario-scripted stream rather than a hand-rolled one:

* **Bounded state** -- with the emission logs drained by a streaming
  consumer, the pickled ``state_dict`` payload plateaus instead of
  growing with the frame count.  A leak anywhere in the snapshot
  (monitor, admission ledger, invocation counters, clock) fails here.
* **Bit-exact checkpoint / resume** -- a ``state_dict`` captured mid-soak
  and loaded into a fresh pipeline replays the back half of the stream
  identically: same records, same detections, same final state.

Excluded from the default run (``-m 'not slow'``); opt in with
``pytest -m slow``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.detectors import zoo
from repro.scenarios import DriftScript, FactorTrack, compile_features
from repro.testing import make_pipeline

pytestmark = pytest.mark.slow

SEED = 5
FRAMES = 1_000_000
CHUNK = 20_000
#: Drift episodes every 20k frames keep the detect -> select -> swap
#: machinery hot for the whole soak instead of only at one onset.
SOAK_SCRIPT = DriftScript("soak_recurring", FRAMES, (
    FactorTrack("lighting", "recurring", 10_000, 6.0,
                duration=2_000, period=20_000, recurrences=49),))


def build_pipeline():
    return make_pipeline(seed=SEED, monitor_factory=zoo.factory("cusum"))


def drain(pipeline):
    """Streaming consumer: harvest and clear the emission logs."""
    emission = pipeline.kernel.emission
    records = [(r.frame_index, r.prediction, r.model)
               for r in emission.records]
    detections = [(d.frame_index, d.previous_model, d.selected_model,
                   d.novel, d.selection_frames)
                  for d in emission.detections]
    emission.records.clear()
    emission.detections.clear()
    return records, detections


def assert_states_equal(a, b, path="state"):
    """Bit-exact snapshot equality, tolerant of numpy leaves.

    ``load_state_dict`` normalizes numerics (``float(...)`` / ``int(...)``),
    so non-bool numbers compare by exact value rather than type.
    """
    numeric = (int, float)
    if (isinstance(a, numeric) and isinstance(b, numeric)
            and not isinstance(a, bool) and not isinstance(b, bool)):
        assert a == b, f"{path}: {a!r} != {b!r}"
        return
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: key mismatch"
        for key in a:
            assert_states_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length mismatch"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_states_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and np.array_equal(a, b), f"{path}: arrays"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def test_million_frame_soak_bounded_state_and_bitexact_resume():
    stream = compile_features(SOAK_SCRIPT, seed=SEED).frames
    assert len(stream) == FRAMES

    pipeline = build_pipeline()
    pipeline.start()

    chunks = [stream[start:start + CHUNK]
              for start in range(0, FRAMES, CHUNK)]
    midpoint = len(chunks) // 2

    payload_sizes = []
    total_records = total_detections = 0
    checkpoint = None
    back_half = []  # (records, detections) per chunk after the checkpoint

    for i, chunk in enumerate(chunks):
        pipeline.step_batch(chunk)
        records, detections = drain(pipeline)
        assert len(records) == len(chunk)
        total_records += len(records)
        total_detections += len(detections)
        payload_sizes.append(len(pickle.dumps(pipeline.state_dict())))
        if i == midpoint - 1:
            checkpoint = pickle.dumps(pipeline.state_dict())
        elif i >= midpoint:
            back_half.append((records, detections))

    # The full horizon went through, drift episodes kept firing, and
    # simulated (virtual) time advanced throughout.
    assert total_records == FRAMES
    assert total_detections >= 10
    assert pipeline.kernel.emission.index == FRAMES
    assert pipeline.kernel.clock.elapsed_ms > 0

    # Bounded state: once warm, the drained snapshot stops growing.
    # Allow a tiny slack for transient buffer contents (a checkpoint can
    # land mid-selection-window) and integer widths.
    warm = payload_sizes[2:]
    assert max(warm) - min(warm) <= 4096, payload_sizes
    assert max(warm) <= payload_sizes[1] + 4096, payload_sizes

    # Bit-exact resume: a fresh pipeline loaded from the midpoint
    # checkpoint replays the back half identically.
    resumed = build_pipeline()
    resumed.load_state_dict(pickle.loads(checkpoint))
    assert resumed.kernel.emission.index == midpoint * CHUNK

    for chunk, (want_records, want_detections) in zip(
            chunks[midpoint:], back_half):
        resumed.step_batch(chunk)
        records, detections = drain(resumed)
        assert records == want_records
        assert detections == want_detections

    assert_states_equal(resumed.state_dict(), pipeline.state_dict())
