"""SCENARIO_SCHEMA: round-trips plus one negative test per keyword.

The schema is the first consumer of the walker's ``minItems`` keyword
(added in PR 10); each mutation below violates exactly one schema
keyword, so a walker regression on any of them fails loudly here.
"""

from __future__ import annotations

import copy

import pytest

from repro.errors import ScenarioError
from repro.obs.schema import walk_schema
from repro.scenarios import (
    SCENARIO_SCHEMA,
    builtin_scripts,
    get_script,
    load_scenario_document,
    script_document,
    validate_scenario_document,
    write_scenario_document,
)


@pytest.fixture
def document():
    return script_document(get_script("camera_displacement"))


class TestPositive:
    @pytest.mark.parametrize("name", sorted(builtin_scripts()))
    def test_every_builtin_script_validates(self, name):
        validate_scenario_document(script_document(get_script(name)))

    def test_roundtrip_through_disk(self, tmp_path, document):
        path = str(tmp_path / "scenario.json")
        write_scenario_document(path, document)
        assert load_scenario_document(path) == document

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError):
            load_scenario_document(str(path))


class TestNegativePerKeyword:
    """One mutation per JSON-Schema keyword SCENARIO_SCHEMA uses."""

    def reject(self, document):
        with pytest.raises(ScenarioError):
            validate_scenario_document(document)

    def test_type(self, document):
        document["frames"] = "240"
        self.reject(document)

    def test_enum(self, document):
        document["tracks"][0]["kind"] = "sideways"
        self.reject(document)

    def test_minimum(self, document):
        document["tracks"][0]["onset"] = -1
        self.reject(document)

    def test_exclusive_minimum(self, document):
        document["feature_scale"] = 0.0
        self.reject(document)

    def test_required(self, document):
        del document["events"]
        self.reject(document)

    def test_additional_properties(self, document):
        document["surprise"] = True
        self.reject(document)

    def test_items(self, document):
        document["events"][0]["factors"] = ["geometry", 7]
        self.reject(document)

    def test_min_items(self, document):
        # an event must name at least one moved factor
        document["events"][0]["factors"] = []
        self.reject(document)


class TestMinItemsKeyword:
    """Walker-level pin for the new keyword (independent of the
    scenario contract)."""

    def errors_for(self, value, schema):
        errors = []
        walk_schema(value, schema, "$", errors)
        return errors

    def test_short_array_reported(self):
        errors = self.errors_for([1], {"type": "array", "minItems": 2})
        assert errors and "minItems" in errors[0]

    def test_exact_length_accepted(self):
        assert not self.errors_for([1, 2], {"type": "array", "minItems": 2})

    def test_non_array_not_length_checked(self):
        # a type violation is reported once, not doubled by minItems
        errors = self.errors_for("xy", {"type": "array", "minItems": 5})
        assert len(errors) == 1
        assert "expected" in errors[0]

    def test_empty_event_log_is_schema_valid(self):
        # the schema allows an empty event log (stationary scripts have
        # one); the drifting-but-eventless case is caught upstream by
        # script_document, not by the schema
        document = script_document(get_script("abrupt"))
        document["events"] = []
        validate_scenario_document(document)
