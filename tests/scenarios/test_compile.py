"""Feature-space backend: legacy bit-identity, plans, attribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    FACTOR_DIMS,
    FACTORS,
    FEATURE_DIM,
    attribute_factors,
    compile_features,
    core_scripts,
    feature_plan,
    generate_plan,
    get_script,
    observed_events,
)
from repro.testing import DIM, gaussian_stream

#: The hand-rolled segment lists the detector benchmark used before the
#: scenario compiler existed -- the bit-identity contract.
LEGACY_SEGMENTS = {
    "abrupt": ((0.0, 120), (6.0, 120)),
    "subtle": ((0.0, 120), (2.5, 120)),
    "gradual": ((0.0, 120), (1.5, 40), (3.0, 40), (4.5, 40), (6.0, 80)),
    "slow": ((0.0, 120), (0.75, 60), (1.5, 60), (2.25, 60), (3.0, 100)),
    "stationary": ((0.0, 240),),
}


class TestLegacyBitIdentity:
    def test_feature_dim_matches_testing_dim(self):
        assert FEATURE_DIM == DIM

    @pytest.mark.parametrize("name", sorted(LEGACY_SEGMENTS))
    def test_core_plan_equals_legacy_segments(self, name):
        assert feature_plan(core_scripts()[name]) == LEGACY_SEGMENTS[name]

    @pytest.mark.parametrize("name", sorted(LEGACY_SEGMENTS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_compiled_stream_equals_gaussian_stream(self, name, seed):
        compiled = compile_features(core_scripts()[name], seed)
        legacy = gaussian_stream(seed, list(LEGACY_SEGMENTS[name]))
        assert np.array_equal(compiled.frames, legacy)

    def test_quick_scaling_matches_legacy_halving(self):
        for name, segments in LEGACY_SEGMENTS.items():
            halved = tuple((centre, max(length // 2, 1))
                           for centre, length in segments)
            script = core_scripts()[name].scaled(0.5)
            assert feature_plan(script) == halved, name

    def test_gaussian_stream_is_a_generate_plan_shim(self):
        segments = [(0.0, 50), (4.0, 30)]
        assert np.array_equal(gaussian_stream(9, segments),
                              generate_plan(9, segments, dim=DIM))


class TestPlans:
    def test_factor_dims_cover_latent_space(self):
        covered = {d for dims in FACTOR_DIMS.values() for d in dims}
        assert covered == set(range(FEATURE_DIM))
        assert set(FACTOR_DIMS) == set(FACTORS)

    def test_occlusion_dims_overlap_lighting_and_density(self):
        occ = set(FACTOR_DIMS["occlusion"])
        assert occ & set(FACTOR_DIMS["lighting"])
        assert occ & set(FACTOR_DIMS["density"])

    def test_single_factor_plan_is_anisotropic(self):
        plan = feature_plan(get_script("lighting_only"))
        assert plan[0] == (0.0, 120)
        loc, length = plan[1]
        assert length == 120
        assert loc == (6.0, 6.0, 0.0, 0.0, 0.0, 0.0)

    def test_uniform_locs_collapse_to_scalars(self):
        plan = feature_plan(get_script("abrupt"))
        assert all(isinstance(loc, float) for loc, _ in plan)

    def test_plan_lengths_cover_horizon(self):
        for name, script in core_scripts().items():
            plan = feature_plan(script)
            assert sum(length for _, length in plan) == script.frames, name

    def test_empty_plan_rejected(self):
        with pytest.raises(ScenarioError):
            generate_plan(0, [])


class TestAttribution:
    def test_single_factor_drift_attributed_to_its_dims(self):
        compiled = compile_features(get_script("lighting_only"), seed=0)
        scores = attribute_factors(compiled.frames, 120)
        assert scores["lighting"] > 5.0
        for factor in ("geometry", "density", "noise"):
            assert scores[factor] < 1.0
        # entanglement is reported, not hidden: the occluder shares a
        # lighting dim, so it scores halfway
        assert 2.0 < scores["occlusion"] < 4.0

    def test_occlusion_entangles_lighting_and_density(self):
        compiled = compile_features(get_script("occlusion"), seed=0)
        scores = attribute_factors(compiled.frames, 120)
        assert scores["occlusion"] > 5.0
        assert scores["density"] > 5.0
        assert scores["geometry"] < 1.0

    def test_out_of_stream_frame_rejected(self):
        frames = np.zeros((10, FEATURE_DIM))
        with pytest.raises(ScenarioError):
            attribute_factors(frames, 0)
        with pytest.raises(ScenarioError):
            attribute_factors(frames, 10)

    def test_non_2d_stream_rejected(self):
        with pytest.raises(ScenarioError):
            attribute_factors(np.zeros(10), 5)


class TestObservedEvents:
    @pytest.mark.parametrize("name", [
        "abrupt", "gradual", "recurring", "camera_displacement",
        "occlusion", "stationary"])
    def test_scanned_onsets_match_declared_events(self, name):
        script = get_script(name)
        declared = {(e.frame, e.kind, e.factors) for e in script.events()}
        observed = {(e.frame, e.kind, e.factors)
                    for e in observed_events(script)}
        assert declared == observed
