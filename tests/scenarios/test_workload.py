"""Workload backend: piecewise profiles, coupling validation."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    WorkloadCoupling,
    compile_workload,
    drive_at,
    get_script,
)


class TestCouplingValidation:
    def test_nonpositive_fps_rejected(self):
        with pytest.raises(ScenarioError):
            WorkloadCoupling(fps=0.0)

    def test_surge_below_baseline_rejected(self):
        with pytest.raises(ScenarioError):
            WorkloadCoupling(surge=0.5, baseline=1.0)

    def test_nonpositive_baseline_rejected(self):
        with pytest.raises(ScenarioError):
            WorkloadCoupling(baseline=0.0)


class TestProfiles:
    def test_abrupt_profile_is_two_pieces(self):
        coupling = WorkloadCoupling(fps=30.0, surge=2.5)
        profile = compile_workload(get_script("abrupt"), coupling)
        onset_ms = 120 * (1000.0 / 30.0)
        assert profile.pieces == ((0.0, 1.0), (onset_ms, 2.5))
        assert profile.multiplier_at(onset_ms - 1.0) == 1.0
        assert profile.multiplier_at(onset_ms) == 2.5
        assert profile.peak == 2.5

    def test_profile_holds_beyond_horizon(self):
        profile = compile_workload(get_script("abrupt"))
        assert profile.multiplier_at(1e9) == profile.peak

    def test_negative_time_is_baseline(self):
        profile = compile_workload(get_script("abrupt"))
        assert profile.multiplier_at(-5.0) == 1.0

    def test_profile_is_callable_modulation(self):
        profile = compile_workload(get_script("abrupt"))
        assert profile(0.0) == profile.multiplier_at(0.0)

    def test_recurring_profile_pulses(self):
        coupling = WorkloadCoupling(fps=1000.0, surge=3.0)
        profile = compile_workload(get_script("recurring"), coupling)
        # frame == ms at 1000 fps; episodes at 120/200/280, 40 on
        assert profile.multiplier_at(119.0) == 1.0
        assert profile.multiplier_at(121.0) == 3.0
        assert profile.multiplier_at(161.0) == 1.0
        assert profile.multiplier_at(281.0) == 3.0
        assert profile.multiplier_at(400.0) == 1.0

    def test_partial_drive_interpolates(self):
        # subtle drift: 2.5 sigma of a 6-sigma scale -> 2.5/6 of the span
        coupling = WorkloadCoupling(fps=30.0, surge=3.4, baseline=1.0)
        profile = compile_workload(get_script("subtle"), coupling)
        assert profile.peak == pytest.approx(1.0 + 2.4 * 2.5 / 6.0)

    def test_stationary_profile_is_flat(self):
        profile = compile_workload(get_script("stationary"))
        assert profile.pieces == ((0.0, 1.0),)
        assert profile.events == ()

    def test_drive_is_normalized_and_clamped(self):
        script = get_script("abrupt")
        assert drive_at(script, 0) == 0.0
        assert drive_at(script, 200) == 1.0

    def test_equal_multiplier_pieces_merge(self):
        # gradual staircase reaches full drive at the last riser; pieces
        # must be strictly increasing in multiplier up to the plateau
        profile = compile_workload(get_script("gradual"))
        multipliers = [m for _, m in profile.pieces]
        assert multipliers == sorted(set(multipliers))
