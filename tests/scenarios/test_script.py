"""DriftScript / FactorTrack: validation, trajectories, ground truth."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    FACTORS,
    DriftScript,
    FactorTrack,
    compound,
    get_script,
)


class TestFactorTrackValidation:
    def test_unknown_factor_rejected(self):
        with pytest.raises(ScenarioError):
            FactorTrack("weather", "abrupt", 10, 6.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            FactorTrack("lighting", "sideways", 10, 6.0)

    def test_zero_magnitude_rejected(self):
        with pytest.raises(ScenarioError):
            FactorTrack("lighting", "abrupt", 10, 0.0)

    def test_gradual_needs_duration(self):
        with pytest.raises(ScenarioError):
            FactorTrack("lighting", "gradual", 10, 6.0)

    def test_adversarial_slow_must_be_quantized(self):
        with pytest.raises(ScenarioError):
            FactorTrack("lighting", "adversarial_slow", 10, 3.0,
                        duration=100, steps=0)

    def test_steps_must_divide_duration(self):
        with pytest.raises(ScenarioError):
            FactorTrack("lighting", "gradual", 10, 6.0,
                        duration=100, steps=3)

    def test_recurring_needs_duration_below_period(self):
        with pytest.raises(ScenarioError):
            FactorTrack("lighting", "recurring", 10, 6.0,
                        duration=50, period=50, recurrences=2)

    def test_camera_displacement_needs_recovery(self):
        with pytest.raises(ScenarioError):
            FactorTrack("geometry", "camera_displacement", 10, 6.0)


class TestTrajectories:
    def test_abrupt_steps_and_holds(self):
        track = FactorTrack("lighting", "abrupt", 100, 6.0)
        assert track.value_at(99) == 0.0
        assert track.value_at(100) == 6.0
        assert track.value_at(500) == 6.0

    def test_quantized_gradual_staircase(self):
        track = FactorTrack("lighting", "gradual", 100, 6.0,
                            duration=160, steps=4)
        values = {track.value_at(f) for f in range(100, 260)}
        assert values == {1.5, 3.0, 4.5, 6.0}
        assert track.value_at(99) == 0.0
        assert track.value_at(260) == 6.0

    def test_adversarial_slow_eases_quadratically(self):
        track = FactorTrack("lighting", "adversarial_slow", 0, 8.0,
                            duration=240, steps=8)
        # first riser: (1/8)^2 of the magnitude -- far below any
        # detection threshold, by design
        assert track.value_at(0) == 8.0 / 64
        assert track.value_at(239) == 8.0
        diffs = [track.value_at(f + 30) - track.value_at(f)
                 for f in range(0, 210, 30)]
        assert all(b > a for a, b in zip(diffs, diffs[1:]))

    def test_recurring_square_wave(self):
        track = FactorTrack("density", "recurring", 100, 6.0,
                            duration=40, period=80, recurrences=3)
        assert track.value_at(99) == 0.0
        for episode in range(3):
            start = 100 + episode * 80
            assert track.value_at(start) == 6.0
            assert track.value_at(start + 39) == 6.0
            assert track.value_at(start + 40) == 0.0
        assert track.value_at(100 + 3 * 80) == 0.0

    def test_camera_displacement_recovers(self):
        track = FactorTrack("geometry", "camera_displacement", 100, 6.0,
                            recovery=120)
        assert track.value_at(100) == 6.0
        assert track.value_at(219) == 6.0
        assert track.value_at(220) == 0.0


class TestDriftScript:
    def test_track_onset_must_fit_horizon(self):
        with pytest.raises(ScenarioError):
            DriftScript("x", 100, (FactorTrack("lighting", "abrupt",
                                               100, 6.0),))

    def test_factor_values_covers_every_factor(self):
        script = get_script("lighting_only")
        values = script.factor_values(200)
        assert set(values) == set(FACTORS)
        assert values["lighting"] == 6.0
        assert all(values[f] == 0.0 for f in FACTORS if f != "lighting")

    def test_compound_merges_into_one_event(self):
        script = compound("x", 240, "abrupt", 120, 6.0)
        events = script.events()
        assert len(events) == 1
        assert events[0].frame == 120
        assert events[0].factors == ("density", "geometry", "lighting",
                                     "noise")

    def test_recurring_one_event_per_recurrence(self):
        script = get_script("recurring")
        events = script.events()
        assert [e.frame for e in events] == [120, 200, 280]
        assert {e.kind for e in events} == {"recurring"}

    def test_camera_displacement_emits_recalibration(self):
        script = get_script("camera_displacement")
        kinds = [(e.frame, e.kind) for e in script.events()]
        assert kinds == [(120, "camera_displacement"),
                         (240, "recalibration")]
        assert script.events()[1].magnitude == 0.0

    def test_stationary_has_no_onset(self):
        script = get_script("stationary")
        assert script.stationary
        assert script.onset is None
        assert script.events() == ()

    def test_scaled_halves_temporal_parameters_only(self):
        script = get_script("gradual").scaled(0.5)
        assert script.frames == 160
        assert script.onset == 60
        values = {script.factor_values(f)["lighting"]
                  for f in range(60, 160)}
        # staircase riser values are preserved exactly under scaling
        assert values == {1.5, 3.0, 4.5, 6.0}

    def test_unknown_builtin_rejected(self):
        with pytest.raises(ScenarioError):
            get_script("nope")
