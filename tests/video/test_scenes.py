"""Scene conditions, camera angles and segment specs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.video.scenes import (
    CONDITIONS,
    DAY,
    NIGHT,
    RAIN,
    SNOW,
    CameraAngle,
    SceneCondition,
    SegmentSpec,
    make_angle,
)


class TestSceneCondition:
    def test_predefined_vocabulary(self):
        assert set(CONDITIONS) == {"day", "night", "rain", "snow"}

    def test_night_is_darker_than_day(self):
        assert NIGHT.background < DAY.background
        assert NIGHT.object_gain < DAY.object_gain
        assert NIGHT.headlights and not DAY.headlights

    def test_weather_conditions_have_their_effects(self):
        assert RAIN.rain_streaks > 0 and RAIN.snow_speckle == 0
        assert SNOW.snow_speckle > 0 and SNOW.rain_streaks == 0

    def test_blend_endpoints(self):
        start = DAY.blend(NIGHT, 0.0)
        end = DAY.blend(NIGHT, 1.0)
        assert start.background == pytest.approx(DAY.background)
        assert end.background == pytest.approx(NIGHT.background)

    def test_blend_is_monotone_in_t(self):
        mid = DAY.blend(NIGHT, 0.5)
        assert NIGHT.background < mid.background < DAY.background

    def test_blend_switches_headlights_past_half(self):
        assert not DAY.blend(NIGHT, 0.4).headlights
        assert DAY.blend(NIGHT, 0.6).headlights

    def test_blend_invalid_t_rejected(self):
        with pytest.raises(ConfigurationError):
            DAY.blend(NIGHT, 1.5)

    def test_invalid_background_rejected(self):
        with pytest.raises(ConfigurationError):
            SceneCondition(name="x", background=2.0)


class TestCameraAngle:
    def test_identity_transform(self):
        angle = CameraAngle(name="id")
        assert angle.transform(0.3, 0.7) == pytest.approx((0.3, 0.7))

    def test_zoom_scales_around_centre(self):
        angle = CameraAngle(name="z", zoom=2.0)
        cx, cy = angle.transform(0.75, 0.75)
        assert cx == pytest.approx(1.0)
        assert cy == pytest.approx(1.0)
        # centre is a fixed point
        assert angle.transform(0.5, 0.5) == pytest.approx((0.5, 0.5))

    def test_shear_depends_on_y(self):
        angle = CameraAngle(name="s", shear=0.2)
        top_x, _ = angle.transform(0.5, 0.0)
        bottom_x, _ = angle.transform(0.5, 1.0)
        assert bottom_x - top_x == pytest.approx(0.2)

    def test_offsets_translate(self):
        angle = CameraAngle(name="o", offset_x=0.1, offset_y=-0.2)
        assert angle.transform(0.5, 0.5) == pytest.approx((0.6, 0.3))

    def test_invalid_zoom_rejected(self):
        with pytest.raises(ConfigurationError):
            CameraAngle(name="bad", zoom=0.0)


class TestMakeAngle:
    def test_distinct_indices_give_distinct_geometry(self):
        angles = [make_angle(i) for i in range(1, 6)]
        transforms = {a.transform(0.3, 0.3) for a in angles}
        assert len(transforms) == 5

    def test_overlapping_angle_is_close_to_base(self):
        base = make_angle(1)
        overlap = make_angle(3, overlap_with=1)
        distinct = make_angle(4)
        bx, by = base.transform(0.5, 0.5)
        ox, oy = overlap.transform(0.5, 0.5)
        dx, dy = distinct.transform(0.5, 0.5)
        overlap_dist = ((bx - ox) ** 2 + (by - oy) ** 2) ** 0.5
        distinct_dist = ((bx - dx) ** 2 + (by - dy) ** 2) ** 0.5
        assert overlap_dist < distinct_dist

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            make_angle(-1)


class TestSegmentSpec:
    def test_defaults(self):
        spec = SegmentSpec(name="s")
        assert spec.condition is DAY
        assert spec.transition == 0

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentSpec(name="s", length=0)

    def test_transition_longer_than_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentSpec(name="s", length=10, transition=11)
