"""Unit tests for :mod:`repro.video.frames` (the shared coercion helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video.frames import pixels_of, with_pixels
from repro.video.stream import Frame


def make_frame(pixels) -> Frame:
    return Frame(index=3, pixels=np.asarray(pixels, dtype=np.float64),
                 objects=(), segment="day", condition="day", angle="front")


class TestPixelsOf:
    def test_ndarray_passthrough(self):
        arr = np.arange(6.0).reshape(2, 3)
        out = pixels_of(arr)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, arr)

    def test_integer_array_is_coerced_to_float64(self):
        out = pixels_of(np.arange(4, dtype=np.int32))
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [0.0, 1.0, 2.0, 3.0])

    def test_nested_tuple_input(self):
        out = pixels_of(((1, 2), (3, 4)))
        assert out.shape == (2, 2)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [[1.0, 2.0], [3.0, 4.0]])

    def test_frame_carrier_uses_pixels_attribute(self):
        frame = make_frame([[0.5, 1.5]])
        out = pixels_of(frame)
        np.testing.assert_array_equal(out, [[0.5, 1.5]])

    def test_float64_input_is_not_copied(self):
        arr = np.zeros((2, 2), dtype=np.float64)
        assert pixels_of(arr) is arr


class TestWithPixels:
    def test_frame_carrier_keeps_metadata(self):
        frame = make_frame([[1.0, np.nan]])
        repaired = np.asarray([[1.0, 0.0]])
        out = with_pixels(frame, repaired)
        assert isinstance(out, Frame)
        assert out is not frame
        assert (out.index, out.segment, out.condition, out.angle) == (
            3, "day", "day", "front")
        np.testing.assert_array_equal(out.pixels, repaired)
        # the original carrier is untouched
        assert np.isnan(frame.pixels[0, 1])

    @pytest.mark.parametrize("item", [
        np.zeros((2, 2)),
        ((1.0, 2.0), (3.0, 4.0)),
    ])
    def test_non_dataclass_items_become_bare_arrays(self, item):
        repaired = np.ones((2, 2))
        assert with_pixels(item, repaired) is repaired
