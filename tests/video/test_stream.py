"""VideoStream: segments, drift points, ground truth, labels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamExhaustedError
from repro.video.renderer import Renderer
from repro.video.scenes import DAY, NIGHT, SegmentSpec, make_angle
from repro.video.stream import (
    VideoStream,
    count_label,
    frames_to_count_labels,
    frames_to_pixels,
)


def two_segment_stream(len_a=20, len_b=15, transition=0, seed=0):
    segments = [
        SegmentSpec(name="a", condition=DAY, length=len_a,
                    objects_mean=5.0, objects_std=2.0),
        SegmentSpec(name="b", condition=NIGHT, length=len_b,
                    objects_mean=5.0, objects_std=2.0,
                    transition=transition),
    ]
    return VideoStream(segments, renderer=Renderer(16, 16), seed=seed)


class TestStructure:
    def test_length_and_drift_frames(self):
        stream = two_segment_stream()
        assert stream.length == 35
        assert stream.drift_frames == [20]

    def test_single_segment_has_no_drifts(self):
        stream = VideoStream([SegmentSpec(name="only", length=10)],
                             renderer=Renderer(16, 16), seed=0)
        assert stream.drift_frames == []

    def test_segment_of(self):
        stream = two_segment_stream()
        assert stream.segment_of(0).name == "a"
        assert stream.segment_of(19).name == "a"
        assert stream.segment_of(20).name == "b"
        assert stream.segment_of(34).name == "b"

    def test_segment_of_out_of_range(self):
        stream = two_segment_stream()
        with pytest.raises(ConfigurationError):
            stream.segment_of(35)

    def test_duplicate_segment_names_rejected(self):
        with pytest.raises(ConfigurationError):
            VideoStream([SegmentSpec(name="x", length=5),
                         SegmentSpec(name="x", length=5)])

    def test_empty_segment_list_rejected(self):
        with pytest.raises(ConfigurationError):
            VideoStream([])


class TestFrames:
    def test_materialize_yields_full_stream(self):
        stream = two_segment_stream()
        frames = stream.materialize()
        assert len(frames) == 35
        assert [f.index for f in frames] == list(range(35))

    def test_materialize_limit(self):
        frames = two_segment_stream().materialize(limit=7)
        assert len(frames) == 7

    def test_segment_labels_change_at_drift(self):
        frames = two_segment_stream().materialize()
        assert frames[19].segment == "a"
        assert frames[20].segment == "b"

    def test_ground_truth_counts_match_objects(self):
        frames = two_segment_stream().materialize(limit=10)
        for frame in frames:
            cars = sum(1 for o in frame.objects if o.kind == "car")
            buses = sum(1 for o in frame.objects if o.kind == "bus")
            assert frame.car_count == cars
            assert frame.bus_count == buses
            assert frame.object_count == cars + buses

    def test_streams_are_reproducible_by_seed(self):
        a = two_segment_stream(seed=3).materialize(limit=5)
        b = two_segment_stream(seed=3).materialize(limit=5)
        for fa, fb in zip(a, b):
            np.testing.assert_allclose(fa.pixels, fb.pixels)

    def test_different_seeds_differ(self):
        a = two_segment_stream(seed=3).materialize(limit=3)
        b = two_segment_stream(seed=4).materialize(limit=3)
        assert not np.allclose(a[0].pixels, b[0].pixels)

    def test_abrupt_drift_changes_brightness_immediately(self):
        frames = two_segment_stream().materialize()
        day_mean = np.mean([f.pixels.mean() for f in frames[10:20]])
        night_mean = np.mean([f.pixels.mean() for f in frames[20:30]])
        assert night_mean < day_mean - 0.15


class TestGradualDrift:
    def test_transition_blends_conditions(self):
        stream = two_segment_stream(len_b=20, transition=10)
        frames = stream.materialize()
        # the first post-drift frame is nearly day, the 10th nearly night
        first = frames[20].pixels.mean()
        late = frames[29].pixels.mean()
        day_level = np.mean([f.pixels.mean() for f in frames[10:20]])
        assert abs(first - day_level) < abs(late - day_level)

    def test_transition_condition_names_are_blends(self):
        stream = two_segment_stream(len_b=20, transition=10)
        frames = stream.materialize()
        assert "->" in frames[20].condition
        assert frames[34].condition == "night"


class TestSegmentFrames:
    def test_fresh_training_frames_come_from_right_segment(self):
        stream = two_segment_stream()
        frames = stream.segment_frames("b", 12, seed=1)
        assert len(frames) == 12
        assert all(f.segment == "b" for f in frames)

    def test_training_frames_differ_from_stream(self):
        stream = two_segment_stream()
        training = stream.segment_frames("a", 5, seed=123)
        stream_frames = stream.materialize(limit=5)
        assert not np.allclose(training[0].pixels, stream_frames[0].pixels)

    def test_unknown_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            two_segment_stream().segment_frames("zzz", 5)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            two_segment_stream().segment_frames("a", 0)


class TestCountLabels:
    def test_count_label_buckets(self):
        assert count_label(0, 6, 4) == 0
        assert count_label(3, 6, 4) == 0
        assert count_label(4, 6, 4) == 1
        assert count_label(19, 6, 4) == 4
        assert count_label(100, 6, 4) == 5  # clipped

    def test_count_label_validation(self):
        with pytest.raises(ConfigurationError):
            count_label(5, 1, 1)
        with pytest.raises(ConfigurationError):
            count_label(5, 4, 0)
        with pytest.raises(ConfigurationError):
            count_label(-1, 4, 1)

    def test_frames_to_pixels_and_labels(self):
        frames = two_segment_stream().materialize(limit=6)
        pixels = frames_to_pixels(frames)
        labels = frames_to_count_labels(frames, 6, 2)
        assert pixels.shape == (6, 16, 16)
        assert labels.shape == (6,)
        assert labels.max() < 6

    def test_frames_to_pixels_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            frames_to_pixels([])


class TestExactMaterialize:
    def test_exact_limit_satisfied_returns_frames(self):
        frames = two_segment_stream().materialize(limit=10, exact=True)
        assert len(frames) == 10

    def test_exact_limit_unmet_raises(self):
        with pytest.raises(StreamExhaustedError, match="12 of the 50"):
            two_segment_stream(len_a=8, len_b=4).materialize(
                limit=50, exact=True)

    def test_default_still_truncates(self):
        frames = two_segment_stream(len_a=8, len_b=4).materialize(limit=50)
        assert len(frames) == 12

    def test_segment_frames_always_meets_budget(self):
        # a solo stream is rendered at exactly ``count`` frames, so the
        # exact-materialize guard inside segment_frames never fires
        stream = two_segment_stream(len_a=3)
        assert len(stream.segment_frames("a", 5)) == 5
