"""Feature helpers: downsampling and flattening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.video.features import downsample, downsample_batch, flatten


class TestDownsample:
    def test_block_mean(self):
        frame = np.array([[1.0, 3.0], [5.0, 7.0]])
        out = downsample(frame, 2)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(4.0)

    def test_factor_one_is_identity(self, rng):
        frame = rng.uniform(size=(8, 8))
        np.testing.assert_allclose(downsample(frame, 1), frame)

    def test_preserves_mean(self, rng):
        frame = rng.uniform(size=(16, 16))
        assert downsample(frame, 4).mean() == pytest.approx(frame.mean())

    def test_indivisible_shape_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            downsample(rng.uniform(size=(9, 9)), 2)

    def test_invalid_factor_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            downsample(rng.uniform(size=(8, 8)), 0)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            downsample(rng.uniform(size=(2, 8, 8)), 2)


class TestDownsampleBatch:
    def test_batch_matches_per_frame(self, rng):
        frames = rng.uniform(size=(5, 8, 8))
        batch = downsample_batch(frames, 2)
        for i in range(5):
            np.testing.assert_allclose(batch[i], downsample(frames[i], 2))

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            downsample_batch(rng.uniform(size=(8, 8)), 2)


class TestFlatten:
    def test_single_frame_flattens_to_vector(self, rng):
        assert flatten(rng.uniform(size=(4, 4))).shape == (16,)

    def test_batch_flattens_to_matrix(self, rng):
        assert flatten(rng.uniform(size=(3, 4, 4))).shape == (3, 16)

    def test_vector_passthrough(self, rng):
        v = rng.uniform(size=7)
        np.testing.assert_allclose(flatten(v), v)
