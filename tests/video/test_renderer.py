"""Renderer: output invariants and visual effects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.objects import SceneObject
from repro.video.renderer import Renderer
from repro.video.scenes import DAY, NIGHT, RAIN, SNOW, CameraAngle, make_angle


@pytest.fixture
def renderer():
    return Renderer(32, 32)


def car(x=0.5, y=0.55, intensity=0.1):
    return SceneObject(kind="car", x=x, y=y, width=0.12, height=0.1,
                       intensity=intensity)


class TestInvariants:
    def test_output_shape_and_range(self, renderer, rng):
        frame = renderer.render([car()], DAY, make_angle(1), rng=rng)
        assert frame.shape == (32, 32)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_seeded_rendering_is_deterministic(self, renderer):
        a = renderer.render([car()], RAIN, make_angle(1), seed=5)
        b = renderer.render([car()], RAIN, make_angle(1), seed=5)
        np.testing.assert_allclose(a, b)

    def test_rectangular_renderer(self):
        renderer = Renderer(16, 24)
        frame = renderer.render([], DAY, make_angle(1), seed=0)
        assert frame.shape == (16, 24)

    def test_too_small_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            Renderer(4, 4)


class TestObjects:
    def test_object_darkens_its_pixels_in_day(self, renderer):
        empty = renderer.render([], DAY, CameraAngle(name="id"), seed=0)
        with_car = renderer.render([car(intensity=0.1)], DAY,
                                   CameraAngle(name="id"), seed=0)
        region = (slice(15, 20), slice(14, 19))
        assert with_car[region].mean() < empty[region].mean()

    def test_offscreen_object_changes_nothing(self, renderer):
        empty = renderer.render([], DAY, CameraAngle(name="id"), seed=0)
        offscreen = renderer.render([car(x=5.0)], DAY,
                                    CameraAngle(name="id"), seed=0)
        np.testing.assert_allclose(empty, offscreen)

    def test_more_objects_more_dark_mass(self, renderer):
        angle = CameraAngle(name="id")
        few = renderer.render([car(0.3)], DAY, angle, seed=0)
        many = renderer.render([car(0.2), car(0.5), car(0.8)], DAY, angle,
                               seed=0)
        assert many.sum() < few.sum()

    def test_headlights_at_night(self, renderer):
        frame = renderer.render([car()], NIGHT, CameraAngle(name="id"),
                                seed=0)
        # a near-white pixel exists despite the dark scene
        assert frame.max() > 0.95
        assert frame.mean() < 0.3


class TestConditionsAndAngles:
    def test_night_darker_than_day(self, renderer):
        day = renderer.render([], DAY, make_angle(1), seed=0)
        night = renderer.render([], NIGHT, make_angle(1), seed=0)
        assert night.mean() < day.mean() - 0.2

    def test_snow_adds_bright_speckles(self, renderer):
        clean = renderer.render([], DAY, make_angle(1), seed=0)
        snowy = renderer.render([], SNOW, make_angle(1), seed=0)
        assert (snowy > 0.94).sum() > (clean > 0.94).sum()

    def test_rain_adds_noise(self, renderer):
        day = renderer.render([], DAY, make_angle(1), seed=0)
        rain = renderer.render([], RAIN, make_angle(1), seed=0)
        assert rain.std() != pytest.approx(day.std(), abs=1e-6)

    def test_different_angles_render_different_backgrounds(self, renderer):
        frames = [renderer.render([], DAY, make_angle(i), seed=0)
                  for i in range(1, 6)]
        for i in range(len(frames)):
            for j in range(i + 1, len(frames)):
                diff = np.abs(frames[i] - frames[j]).mean()
                assert diff > 0.01, (i + 1, j + 1)

    def test_same_angle_backgrounds_differ_only_by_noise(self, renderer):
        a = renderer.render([], DAY, make_angle(1), seed=0)
        b = renderer.render([], DAY, make_angle(1), seed=99)
        assert np.abs(a - b).mean() < 0.05

    def test_zoom_enlarges_objects(self, renderer):
        wide = CameraAngle(name="w", zoom=1.0)
        tight = CameraAngle(name="t", zoom=1.5)
        base = renderer.render([], DAY, wide, seed=0)
        obj_wide = renderer.render([car(intensity=0.05)], DAY, wide, seed=0)
        base_t = renderer.render([], DAY, tight, seed=0)
        obj_tight = renderer.render([car(intensity=0.05)], DAY, tight, seed=0)
        dark_wide = (base - obj_wide > 0.1).sum()
        dark_tight = (base_t - obj_tight > 0.1).sum()
        assert dark_tight > dark_wide
