"""Dataset builders (Table 5 parameters, scaling)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.video.datasets import (
    all_datasets,
    make_bdd,
    make_detrac,
    make_slow_drift,
    make_tokyo,
)


class TestBuilders:
    def test_bdd_structure(self):
        ds = make_bdd(scale=400)
        assert ds.segment_names == ["day", "night", "rain", "snow"]
        assert len(ds.drift_frames) == 3
        assert ds.paper_stream_size == 80_000
        assert ds.num_count_classes == 6

    def test_detrac_structure(self):
        ds = make_detrac(scale=400)
        assert ds.segment_names == [f"angle_{i}" for i in range(1, 6)]
        assert len(ds.drift_frames) == 4
        assert ds.paper_stream_size == 30_000

    def test_tokyo_structure(self):
        ds = make_tokyo(scale=400)
        assert ds.segment_names == ["angle_1", "angle_2", "angle_3"]
        assert len(ds.drift_frames) == 2

    def test_tokyo_angles_1_and_3_overlap(self):
        """Section 6.1.1: angles 1 and 3 share part of their field of view."""
        ds = make_tokyo(scale=400)
        a1, a2, a3 = [s.angle for s in ds.stream.segments]
        p1 = a1.transform(0.5, 0.5)
        p2 = a2.transform(0.5, 0.5)
        p3 = a3.transform(0.5, 0.5)
        d13 = ((p1[0] - p3[0]) ** 2 + (p1[1] - p3[1]) ** 2) ** 0.5
        d12 = ((p1[0] - p2[0]) ** 2 + (p1[1] - p2[1]) ** 2) ** 0.5
        assert d13 < d12

    def test_slow_drift_has_transition(self):
        ds = make_slow_drift(scale=400)
        assert ds.stream.segments[1].transition > 0
        assert ds.metadata["transition_frames"] > 0

    def test_scale_controls_length(self):
        small = make_bdd(scale=400)
        large = make_bdd(scale=100)
        assert large.stream.length > small.stream.length

    def test_minimum_segment_length_enforced(self):
        tiny = make_bdd(scale=1e9)
        assert all(s.length >= 60 for s in tiny.stream.segments)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bdd(scale=0)

    def test_all_datasets_keys(self):
        datasets = all_datasets(scale=400)
        assert set(datasets) == {"BDD", "Detrac", "Tokyo"}


class TestStatistics:
    @pytest.mark.parametrize("maker,mean,std", [
        (make_bdd, 9.2, 6.4),
        (make_detrac, 17.2, 7.1),
        (make_tokyo, 19.2, 4.7),
    ])
    def test_table5_objects_per_frame(self, maker, mean, std):
        ds = maker(scale=400)
        stats = ds.table5_stats(sample=150)
        assert stats["obj_per_frame"] == pytest.approx(mean, abs=1.5)
        assert stats["obj_per_frame_std"] == pytest.approx(std, abs=2.0)

    def test_table5_reports_paper_sizes(self):
        stats = make_bdd(scale=400).table5_stats(sample=30)
        assert stats["paper_stream_size"] == 80_000
        assert stats["sequences"] == 4

    def test_invalid_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bdd(scale=400).table5_stats(sample=0)


class TestTrainingFrames:
    def test_training_frames_match_segment(self):
        ds = make_bdd(scale=400)
        frames = ds.training_frames("night", 10, seed=1)
        assert len(frames) == 10
        assert all(f.condition == "night" for f in frames)
