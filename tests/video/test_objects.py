"""Scene objects and the birth-death population."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.video.objects import (
    BUS,
    CAR,
    ObjectPopulation,
    SceneObject,
    random_object,
)


class TestSceneObject:
    def test_step_moves_by_velocity(self):
        obj = SceneObject(kind=CAR, x=0.5, y=0.5, width=0.1, height=0.1,
                          intensity=0.5, vx=0.02, vy=-0.01)
        moved = obj.step()
        assert moved.x == pytest.approx(0.52)
        assert moved.y == pytest.approx(0.49)
        # original is immutable
        assert obj.x == 0.5

    def test_step_with_dt(self):
        obj = SceneObject(kind=CAR, x=0.0, y=0.0, width=0.1, height=0.1,
                          intensity=0.5, vx=0.1)
        assert obj.step(dt=3.0).x == pytest.approx(0.3)

    def test_in_view_boundaries(self):
        inside = SceneObject(kind=CAR, x=0.5, y=0.5, width=0.1, height=0.1,
                             intensity=0.5)
        outside = SceneObject(kind=CAR, x=2.0, y=0.5, width=0.1, height=0.1,
                              intensity=0.5)
        edge = SceneObject(kind=CAR, x=1.04, y=0.5, width=0.1, height=0.1,
                           intensity=0.5)
        assert inside.in_view
        assert not outside.in_view
        assert edge.in_view  # half the width still overlaps the frame

    def test_bbox(self):
        obj = SceneObject(kind=BUS, x=0.5, y=0.4, width=0.2, height=0.1,
                          intensity=0.5)
        assert obj.bbox == pytest.approx((0.4, 0.35, 0.6, 0.45))

    @pytest.mark.parametrize("kwargs", [
        {"kind": "plane"}, {"width": 0.0}, {"intensity": 1.5}])
    def test_invalid_object_rejected(self, kwargs):
        defaults = dict(kind=CAR, x=0.5, y=0.5, width=0.1, height=0.1,
                        intensity=0.5)
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            SceneObject(**defaults)


class TestRandomObject:
    def test_bus_fraction_zero_spawns_only_cars(self, rng):
        for _ in range(50):
            assert random_object(rng, bus_fraction=0.0).kind == CAR

    def test_bus_fraction_one_spawns_only_buses(self, rng):
        for _ in range(50):
            assert random_object(rng, bus_fraction=1.0).kind == BUS

    def test_buses_are_larger_than_cars(self, rng):
        car = random_object(rng, bus_fraction=0.0)
        bus = random_object(rng, bus_fraction=1.0)
        assert bus.width * bus.height > car.width * car.height

    def test_spawns_move_rightward(self, rng):
        for _ in range(20):
            assert random_object(rng).vx > 0

    def test_invalid_bus_fraction_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_object(rng, bus_fraction=1.5)


class TestObjectPopulation:
    def test_counts_track_target_statistics(self):
        population = ObjectPopulation(target_mean=10.0, target_std=3.0,
                                      seed=0)
        counts = [len(population.step()) for _ in range(300)]
        assert abs(np.mean(counts) - 10.0) < 1.0
        assert 1.5 < np.std(counts) < 4.5

    def test_objects_persist_between_frames(self):
        population = ObjectPopulation(target_mean=8.0, target_std=0.5, seed=1)
        population.step()
        first = set(id(o) for o in population.objects)
        population.step()
        moved_from_first = sum(
            1 for o in population.objects
            if any(abs(o.x - p.x) < 0.05 for p in [])) if False else None
        # at stable counts, most objects survive (list overlap by position)
        second_xs = sorted(o.x for o in population.objects)
        assert len(second_xs) > 0
        assert first  # population was non-empty

    def test_zero_mean_population_is_empty_often(self):
        population = ObjectPopulation(target_mean=0.0, target_std=0.1, seed=2)
        counts = [len(population.step()) for _ in range(50)]
        assert max(counts) <= 1

    @given(mean=st.floats(1.0, 25.0), std=st.floats(0.0, 8.0))
    @settings(max_examples=10, deadline=None)
    def test_counts_never_negative(self, mean, std):
        population = ObjectPopulation(target_mean=mean, target_std=std,
                                      seed=3)
        for _ in range(20):
            assert len(population.step()) >= 0

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectPopulation(target_mean=-1.0, target_std=1.0)

    def test_position_marginal_is_stationary(self):
        """Uniform spawning keeps the x-distribution stable over a segment
        (the property protecting the drift ground truth)."""
        population = ObjectPopulation(target_mean=15.0, target_std=2.0,
                                      seed=4)
        for _ in range(5):
            population.step()
        early = [o.x for _ in range(20) for o in population.step()]
        for _ in range(60):
            population.step()
        late = [o.x for _ in range(20) for o in population.step()]
        assert abs(np.mean(early) - np.mean(late)) < 0.12
