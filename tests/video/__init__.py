"""Tests for :mod:`repro.video` (datasets, drift composition)."""
