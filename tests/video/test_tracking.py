"""IoU tracker and track-based queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import Detection, DetectionResult
from repro.detectors.oracle import ReferenceDetector
from repro.errors import ConfigurationError
from repro.queries.tracks import TrackQuery
from repro.video.datasets import make_bdd
from repro.video.tracking import (
    IoUTracker,
    Track,
    TrackPoint,
    ground_truth_tracks,
    track_detections,
)


def moving_object(xs, kind="car", y=0.5):
    """Detection results for one object moving through positions xs."""
    return [DetectionResult([Detection(kind, x, y)]) for x in xs]


class TestIoUTracker:
    def test_single_object_forms_single_track(self):
        results = moving_object([0.10, 0.12, 0.14, 0.16])
        tracks = track_detections(results)
        assert len(tracks) == 1
        assert tracks[0].length == 4
        assert tracks[0].kind == "car"
        assert tracks[0].start == 0 and tracks[0].end == 3

    def test_two_separated_objects_stay_separate(self):
        results = [
            DetectionResult([Detection("car", 0.1 + 0.01 * i, 0.2),
                             Detection("car", 0.8 - 0.01 * i, 0.8)])
            for i in range(5)
        ]
        tracks = track_detections(results)
        assert len(tracks) == 2
        assert all(t.length == 5 for t in tracks)

    def test_kinds_never_mix(self):
        results = [
            DetectionResult([Detection("car", 0.5, 0.5)]),
            DetectionResult([Detection("bus", 0.5, 0.5)]),
        ]
        tracks = track_detections(results)
        assert len(tracks) == 2
        assert {t.kind for t in tracks} == {"car", "bus"}

    def test_gap_shorter_than_max_age_keeps_the_track(self):
        results = (moving_object([0.10, 0.12])
                   + [DetectionResult([])]          # one missed frame
                   + moving_object([0.16, 0.18]))
        tracks = track_detections(results, max_age=3)
        assert len(tracks) == 1
        assert tracks[0].length == 4

    def test_long_gap_splits_the_track(self):
        results = (moving_object([0.10, 0.12])
                   + [DetectionResult([])] * 5
                   + moving_object([0.20, 0.22]))
        tracks = track_detections(results, max_age=2)
        assert len(tracks) == 2

    def test_teleporting_detection_opens_new_track(self):
        results = moving_object([0.1, 0.9])
        tracks = track_detections(results)
        assert len(tracks) == 2

    def test_displacement_and_position(self):
        track = Track(0, "car", [TrackPoint(0, 0.0, 0.0),
                                 TrackPoint(1, 0.3, 0.4)])
        assert track.displacement == pytest.approx(0.5)
        assert track.position_at(1) == (0.3, 0.4)
        assert track.position_at(9) is None

    @pytest.mark.parametrize("kwargs", [
        {"iou_threshold": 0.0}, {"box_size": 0.0}, {"max_age": 0}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            IoUTracker(**kwargs)


class TestGroundTruthTracks:
    def test_oracle_tracks_on_a_real_stream(self):
        frames = make_bdd(scale=1e9).training_frames("day", 40, seed=0)
        tracks = ground_truth_tracks(frames)
        # at 9.2 objects/frame over 40 frames there are many tracks, and
        # persistent objects yield tracks longer than one frame
        assert len(tracks) >= 5
        assert max(t.length for t in tracks) >= 5

    def test_kind_filter(self):
        frames = make_bdd(scale=1e9).training_frames("day", 20, seed=0)
        car_tracks = ground_truth_tracks(frames, kind="car")
        assert all(t.kind == "car" for t in car_tracks)

    def test_noisy_detector_shortens_tracks(self):
        """Recall loss fragments physical objects into shorter tracks --
        the failure mode drift causes for track queries.  (The raw track
        *count* can go either direction: misses both split long tracks and
        drop objects entirely, so the robust signature is dwell time.)"""
        frames = make_bdd(scale=1e9).training_frames("day", 50, seed=0)
        oracle = ground_truth_tracks(frames)
        noisy_detector = ReferenceDetector(miss_rate=0.5, seed=1)
        noisy = track_detections([noisy_detector.detect(f) for f in frames],
                                 max_age=1)
        query = TrackQuery(min_length=1)
        oracle_dwell = np.mean(query.dwell_times(oracle))
        noisy_dwell = np.mean(query.dwell_times(noisy))
        assert noisy_dwell < 0.7 * oracle_dwell


class TestTrackQuery:
    @pytest.fixture
    def tracks(self):
        return [
            Track(0, "car", [TrackPoint(i, 0.1 + 0.1 * i, 0.5)
                             for i in range(6)]),       # crosses x=0.45
            Track(1, "car", [TrackPoint(i, 0.8, 0.5) for i in range(3)]),
            Track(2, "bus", [TrackPoint(i + 4, 0.2 + 0.2 * i, 0.5)
                             for i in range(4)]),       # crosses x=0.45
            Track(3, "car", [TrackPoint(0, 0.5, 0.5)]),  # single point
        ]

    def test_distinct_count_filters_short_tracks(self, tracks):
        query = TrackQuery(min_length=2)
        assert query.distinct_count(tracks) == 3
        assert query.distinct_count(tracks, kind="car") == 2
        assert TrackQuery(min_length=1).distinct_count(tracks) == 4

    def test_crossings(self, tracks):
        query = TrackQuery(min_length=2)
        assert query.crossings(tracks, 0.45) == 2
        assert query.crossings(tracks, 0.45, kind="bus") == 1
        assert query.crossings(tracks, 0.95) == 0

    def test_dwell_times(self, tracks):
        query = TrackQuery(min_length=2)
        assert sorted(query.dwell_times(tracks, kind="car")) == [3, 6]

    def test_busiest_interval(self, tracks):
        query = TrackQuery(min_length=2)
        start, count = query.busiest_interval(tracks, window=3)
        assert count >= 2
        assert start >= 0

    def test_fragmentation_ratio(self, tracks):
        query = TrackQuery(min_length=1)
        doubled = tracks + [Track(9, "car", [TrackPoint(0, 0.9, 0.9)])]
        assert query.fragmentation(doubled, tracks) > 1.0
        assert query.fragmentation(tracks, tracks) == pytest.approx(1.0)
        assert query.fragmentation(tracks, []) == 0.0

    def test_invalid_parameters(self, tracks):
        with pytest.raises(ConfigurationError):
            TrackQuery(min_length=0)
        with pytest.raises(ConfigurationError):
            TrackQuery().crossings(tracks, 1.5)
        with pytest.raises(ConfigurationError):
            TrackQuery().busiest_interval(tracks, window=0)
