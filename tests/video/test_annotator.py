"""OracleAnnotator (Mask R-CNN substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.queries.spatial import bus_left_of_car
from repro.sim.clock import SimulatedClock
from repro.video.annotator import OracleAnnotator, positions_of
from repro.video.datasets import make_bdd


@pytest.fixture(scope="module")
def frames():
    return make_bdd(scale=1e9).training_frames("day", 30, seed=0)


class TestCountLabels:
    def test_labels_match_ground_truth(self, frames):
        annotator = OracleAnnotator(num_classes=6, bucket_width=4)
        labels = annotator.count_labels(frames)
        expected = [f.count_label(6, 4) for f in frames]
        assert labels.tolist() == expected

    def test_callable_interface(self, frames):
        annotator = OracleAnnotator(num_classes=6, bucket_width=4)
        np.testing.assert_array_equal(annotator(frames),
                                      annotator.count_labels(frames))

    def test_noise_perturbs_some_labels(self, frames):
        clean = OracleAnnotator(num_classes=6, bucket_width=4, seed=1)
        noisy = OracleAnnotator(num_classes=6, bucket_width=4, noise=0.5,
                                seed=1)
        clean_labels = clean.count_labels(frames)
        noisy_labels = noisy.count_labels(frames)
        assert (clean_labels != noisy_labels).any()
        # perturbations stay within one class and in range
        assert (np.abs(clean_labels - noisy_labels) <= 1).all()
        assert noisy_labels.min() >= 0 and noisy_labels.max() < 6

    def test_clock_charged_per_frame(self, frames):
        clock = SimulatedClock()
        annotator = OracleAnnotator(num_classes=6, clock=clock)
        annotator.count_labels(frames)
        assert clock.operation_counts()["annotate_frame"] == len(frames)

    def test_empty_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            OracleAnnotator().count_labels([])

    @pytest.mark.parametrize("kwargs", [
        {"num_classes": 1}, {"noise": 1.5}, {"bucket_width": 0}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            OracleAnnotator(**kwargs)


class TestSpatialLabels:
    def test_labels_match_predicate(self, frames):
        annotator = OracleAnnotator()
        labels = annotator.spatial_labels(frames, bus_left_of_car)
        expected = [int(bus_left_of_car(f)) for f in frames]
        assert labels.tolist() == expected

    def test_noise_flips_binary_labels(self, frames):
        clean = OracleAnnotator(seed=2)
        noisy = OracleAnnotator(noise=0.5, seed=2)
        a = clean.spatial_labels(frames, bus_left_of_car)
        b = noisy.spatial_labels(frames, bus_left_of_car)
        assert (a != b).any()
        assert set(np.unique(b)) <= {0, 1}


class TestPositions:
    def test_positions_of_filters_by_kind(self, frames):
        frame = frames[0]
        cars = positions_of(frame, "car")
        buses = positions_of(frame, "bus")
        assert len(cars) == frame.car_count
        assert len(buses) == frame.bus_count
