"""Registry semantics of the detector zoo."""

from __future__ import annotations

import pytest

from repro.detectors import zoo
from repro.errors import DetectorZooError
from repro.runtime import MonitorStage
from repro.testing import make_registry

EXPECTED_BUILTINS = {"inspector", "odin", "cusum", "ks", "moment",
                     "ddm", "eddm", "adwin", "kswin", "page-hinkley",
                     "pixelstat", "cascade-di"}


@pytest.fixture(scope="module")
def bundle():
    return make_registry().get("low")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert EXPECTED_BUILTINS <= set(zoo.names())
        assert len(zoo.names()) >= 6

    def test_names_are_sorted_and_stable(self):
        assert list(zoo.names()) == sorted(zoo.names())
        assert zoo.names() == zoo.names()

    def test_specs_align_with_names(self):
        assert [spec.name for spec in zoo.specs()] == list(zoo.names())

    def test_duplicate_registration_raises(self):
        with pytest.raises(DetectorZooError, match="already registered"):
            zoo.register("inspector", family="x", description="dup",
                         factory=lambda bundle: None)

    def test_unknown_name_raises_and_lists_alternatives(self):
        with pytest.raises(DetectorZooError, match="inspector"):
            zoo.get_spec("nope")
        with pytest.raises(DetectorZooError):
            zoo.factory("nope")
        with pytest.raises(DetectorZooError):
            zoo.unregister("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(DetectorZooError, match="non-empty"):
            zoo.register("", family="x", description="bad",
                         factory=lambda bundle: None)

    def test_register_unregister_round_trip(self, bundle):
        def factory(b):
            return zoo.get_spec("cusum").factory(b)

        zoo.register("tmp-detector", family="test", description="temp",
                     factory=factory)
        try:
            assert "tmp-detector" in zoo.names()
            monitor = zoo.build("tmp-detector", bundle)
            assert monitor.drift_frame is None
        finally:
            zoo.unregister("tmp-detector")
        assert "tmp-detector" not in zoo.names()

    def test_decorator_form(self):
        @zoo.register("tmp-decorated", family="test", description="temp")
        def factory(bundle):
            return zoo.get_spec("cusum").factory(bundle)

        try:
            assert zoo.get_spec("tmp-decorated").factory is factory
        finally:
            zoo.unregister("tmp-decorated")

    def test_build_rejects_non_monitor(self, bundle):
        zoo.register("tmp-broken", family="test", description="temp",
                     factory=lambda b: object())
        try:
            with pytest.raises(DetectorZooError, match="DriftMonitor"):
                zoo.build("tmp-broken", bundle)
        finally:
            zoo.unregister("tmp-broken")


class TestSpecAdvertisement:
    def test_rollback_flag_matches_kernel_view(self, bundle):
        """What the spec advertises is what the kernel dispatches on."""
        for spec in zoo.specs():
            monitor = spec.build(bundle)
            assert MonitorStage(monitor).supports_rollback == spec.rollback, \
                spec.name

    def test_only_odin_takes_the_scalar_fallback(self, bundle):
        fallback = {spec.name for spec in zoo.specs() if not spec.rollback}
        assert fallback == {"odin"}
