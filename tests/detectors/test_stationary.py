"""Specificity: no false alarms on stationary reference streams.

Every detector in the zoo -- except the sliding-window KS baseline,
whose per-dimension Bonferroni test is known to trip on long stationary
streams (seeds 0 and 7 of the scan that fixed this list) -- must stay
silent on 300 in-distribution frames.  Seeds are fixed: these are exact
regression pins, not statistical claims.
"""

from __future__ import annotations

import pytest

from repro.detectors import zoo
from repro.testing import gaussian_stream, make_registry

#: ks excluded: see module docstring.
QUIET_DETECTORS = tuple(name for name in zoo.names() if name != "ks")
SEEDS = (0, 1, 2, 3, 4)

_BUNDLE = make_registry().get("low")


@pytest.mark.parametrize("name", QUIET_DETECTORS)
@pytest.mark.parametrize("seed", SEEDS)
def test_no_false_alarm_on_stationary_stream(name, seed):
    monitor = zoo.build(name, _BUNDLE)
    frames = gaussian_stream(seed, [(0.0, 300)])
    for frame in frames:
        monitor.observe(frame)
    assert not monitor.drift_detected, \
        f"{name} false-alarmed at frame {monitor.drift_frame} (seed {seed})"
    assert monitor.drift_frame is None


@pytest.mark.parametrize("name", QUIET_DETECTORS)
def test_quiet_after_reset_on_stationary_stream(name):
    """Resetting mid-stream must not make a detector trigger-happy: the
    remainder of the stationary stream stays alarm-free."""
    monitor = zoo.build(name, _BUNDLE)
    frames = gaussian_stream(0, [(0.0, 300)])
    for frame in frames[:150]:
        monitor.observe(frame)
    monitor.reset()
    for frame in frames[150:]:
        monitor.observe(frame)
    assert not monitor.drift_detected
