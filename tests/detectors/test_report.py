"""DETECTORS_SCHEMA round trips and rejects malformed documents."""

from __future__ import annotations

import copy
import json

import pytest

from repro.detectors.report import (
    DETECTORS_SCHEMA,
    load_detectors_report,
    validate_detectors_report,
    write_detectors_report,
)
from repro.errors import DetectorReportError


def minimal_report() -> dict:
    return {
        "schema_version": 1,
        "benchmark": "drift-detector accuracy: scenario matrix",
        "quick": True,
        "scenarios": {
            "abrupt": {"frames": 120, "onset": 60, "seeds": [0]},
            "stationary": {"frames": 120, "onset": None, "seeds": [0]},
        },
        "detectors": {
            "cusum": {
                "family": "statistical",
                "rollback": True,
                "scenarios": {
                    "abrupt": {"detection_delay": 1.0, "detected_runs": 1,
                               "runs": 1, "false_alarms": 0.0,
                               "mtbfa": None},
                    "stationary": {"detection_delay": None,
                                   "detected_runs": 0, "runs": 1,
                                   "false_alarms": 1.0, "mtbfa": 120.0},
                },
            },
        },
    }


class TestValidDocuments:
    def test_minimal_report_validates(self):
        validate_detectors_report(minimal_report())

    def test_nullable_metrics(self):
        """Both ``detection_delay`` and ``mtbfa`` are null exactly when
        their denominator never materialised."""
        report = minimal_report()
        cell = report["detectors"]["cusum"]["scenarios"]["abrupt"]
        cell["detection_delay"] = None
        cell["mtbfa"] = 60.0
        validate_detectors_report(report)

    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_detectors.json")
        report = minimal_report()
        write_detectors_report(path, report)
        assert load_detectors_report(path) == report


class TestRejectedDocuments:
    def test_extra_top_level_key_rejected(self):
        report = minimal_report()
        report["surprise"] = 1
        with pytest.raises(DetectorReportError, match="surprise"):
            validate_detectors_report(report)

    def test_extra_metrics_key_rejected(self):
        """additionalProperties is strict all the way down: an unknown
        key inside a metrics cell fails, not just at the top level."""
        report = minimal_report()
        report["detectors"]["cusum"]["scenarios"]["abrupt"]["extra"] = 1
        with pytest.raises(DetectorReportError, match="extra"):
            validate_detectors_report(report)

    def test_extra_detector_entry_key_rejected(self):
        report = minimal_report()
        report["detectors"]["cusum"]["nickname"] = "chart"
        with pytest.raises(DetectorReportError, match="nickname"):
            validate_detectors_report(report)

    @pytest.mark.parametrize("key", ["schema_version", "benchmark",
                                     "quick", "scenarios", "detectors"])
    def test_missing_required_key_rejected(self, key):
        report = minimal_report()
        del report[key]
        with pytest.raises(DetectorReportError, match=key):
            validate_detectors_report(report)

    def test_missing_metric_rejected(self):
        report = minimal_report()
        del report["detectors"]["cusum"]["scenarios"]["abrupt"]["mtbfa"]
        with pytest.raises(DetectorReportError, match="mtbfa"):
            validate_detectors_report(report)

    def test_wrong_schema_version_rejected(self):
        report = minimal_report()
        report["schema_version"] = 2
        with pytest.raises(DetectorReportError, match="schema_version"):
            validate_detectors_report(report)

    def test_negative_delay_rejected(self):
        report = minimal_report()
        report["detectors"]["cusum"]["scenarios"]["abrupt"][
            "detection_delay"] = -1.0
        with pytest.raises(DetectorReportError, match="detection_delay"):
            validate_detectors_report(report)

    def test_zero_mtbfa_rejected(self):
        """mtbfa is null or strictly positive, never zero."""
        report = minimal_report()
        report["detectors"]["cusum"]["scenarios"]["stationary"][
            "mtbfa"] = 0.0
        with pytest.raises(DetectorReportError, match="mtbfa"):
            validate_detectors_report(report)

    def test_boolean_not_accepted_as_integer(self):
        report = minimal_report()
        report["detectors"]["cusum"]["scenarios"]["abrupt"][
            "detected_runs"] = True
        with pytest.raises(DetectorReportError, match="detected_runs"):
            validate_detectors_report(report)

    def test_write_refuses_invalid_report(self, tmp_path):
        path = str(tmp_path / "bad.json")
        report = minimal_report()
        report["extra"] = True
        with pytest.raises(DetectorReportError):
            write_detectors_report(path, report)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DetectorReportError, match="not valid JSON"):
            load_detectors_report(str(path))

    def test_load_rejects_schema_violation(self, tmp_path):
        path = tmp_path / "bad.json"
        report = minimal_report()
        del report["detectors"]
        path.write_text(json.dumps(report), encoding="utf-8")
        with pytest.raises(DetectorReportError, match="detectors"):
            load_detectors_report(str(path))

    def test_schema_itself_is_strict_everywhere(self):
        """Every object schema in the contract pins
        additionalProperties (False or a map sub-schema): no silently
        accepted free-form objects."""
        def assert_strict(schema, path):
            if schema.get("type") == "object" or "properties" in schema:
                assert "additionalProperties" in schema, path
            for key, sub in schema.get("properties", {}).items():
                if isinstance(sub, dict):
                    assert_strict(sub, f"{path}.{key}")
            additional = schema.get("additionalProperties")
            if isinstance(additional, dict):
                assert_strict(additional, f"{path}.*")
            if isinstance(schema.get("items"), dict):
                assert_strict(schema["items"], f"{path}[]")

        assert_strict(copy.deepcopy(DETECTORS_SCHEMA), "$")
