"""Detector substitutes: oracle, fast, and query-model wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import Detection, DetectionResult
from repro.detectors.classifier_filters import CountClassifier, SpatialFilter
from repro.detectors.fast import FastDetector
from repro.detectors.oracle import ReferenceDetector
from repro.errors import ConfigurationError
from repro.nn.classifier import ClassifierConfig
from repro.queries.spatial import bus_left_of_car
from repro.sim.clock import SimulatedClock
from repro.video.datasets import make_bdd


@pytest.fixture(scope="module")
def day_frames():
    return make_bdd(scale=1e9).training_frames("day", 40, seed=0)


@pytest.fixture(scope="module")
def night_frames():
    return make_bdd(scale=1e9).training_frames("night", 40, seed=0)


class TestDetectionResult:
    def test_count_by_kind(self):
        result = DetectionResult([Detection("car", 0.1, 0.2),
                                  Detection("car", 0.5, 0.5),
                                  Detection("bus", 0.9, 0.9)])
        assert result.count() == 3
        assert result.count("car") == 2
        assert result.count("bus") == 1

    def test_positions(self):
        result = DetectionResult([Detection("car", 0.1, 0.2)])
        assert result.positions("car") == [(0.1, 0.2)]
        assert result.positions("bus") == []

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            Detection("car", 0.5, 0.5, confidence=1.5)


class TestReferenceDetector:
    def test_perfect_detection_without_noise(self, day_frames):
        detector = ReferenceDetector(seed=0)
        for frame in day_frames[:10]:
            result = detector.detect(frame)
            assert result.count("car") == frame.car_count
            assert result.count("bus") == frame.bus_count

    def test_miss_rate_drops_detections(self, day_frames):
        detector = ReferenceDetector(miss_rate=0.5, seed=0)
        total_true = sum(f.object_count for f in day_frames)
        total_detected = sum(detector.detect(f).count() for f in day_frames)
        assert total_detected < total_true * 0.75

    def test_charges_expensive_inference(self, day_frames):
        clock = SimulatedClock()
        detector = ReferenceDetector(clock=clock, seed=0)
        detector.detect(day_frames[0])
        assert clock.elapsed_ms == pytest.approx(133.5)

    def test_invalid_miss_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ReferenceDetector(miss_rate=1.0)


class TestFastDetector:
    def test_degrades_at_night(self, day_frames, night_frames):
        detector = FastDetector(seed=0)
        day_recall = sum(detector.detect(f).count() for f in day_frames) / max(
            sum(f.object_count for f in day_frames), 1)
        night_recall = sum(
            detector.detect(f).count() for f in night_frames) / max(
            sum(f.object_count for f in night_frames), 1)
        assert night_recall < day_recall

    def test_unknown_condition_uses_angle_miss(self, day_frames):
        from repro.detectors.fast import DEFAULT_ANGLE_MISS
        detector = FastDetector(seed=0)
        frame = day_frames[0]
        # fabricate a frame-like object with an unknown condition name
        class Fake:
            objects = frame.objects
            condition = "dusk-blend"
        assert detector._miss_rate(Fake()) == DEFAULT_ANGLE_MISS

    def test_charges_yolo_cost(self, day_frames):
        clock = SimulatedClock()
        detector = FastDetector(clock=clock, seed=0)
        detector.detect(day_frames[0])
        assert clock.elapsed_ms == pytest.approx(15.4)

    def test_custom_miss_rates_merge(self):
        detector = FastDetector(miss_rates={"day": 0.0}, seed=0)
        assert detector.miss_rates["day"] == 0.0
        assert detector.miss_rates["night"] > 0.0

    @pytest.mark.parametrize("kwargs", [
        {"miss_rates": {"day": 1.0}}, {"hallucination_rate": -0.1}])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            FastDetector(**kwargs)


def small_config(num_classes=6):
    return ClassifierConfig(input_shape=(1, 32, 32), num_classes=num_classes,
                            hidden=32, epochs=6, seed=0)


class TestCountClassifier:
    def test_fit_frames_and_predict(self, day_frames):
        model = CountClassifier(small_config())
        model.fit_frames(day_frames)
        pixels = np.stack([f.pixels for f in day_frames[:5]])
        preds = model.predict(pixels)
        assert preds.shape == (5,)
        assert model.is_fitted

    def test_accuracy_on_reports_fraction(self, day_frames):
        model = CountClassifier(small_config())
        model.fit_frames(day_frames)
        accuracy = model.accuracy_on(day_frames)
        assert 0.0 <= accuracy <= 1.0

    def test_clock_charges_per_frame(self, day_frames):
        clock = SimulatedClock()
        model = CountClassifier(small_config(), clock=clock)
        model.fit_frames(day_frames)
        model.predict(np.stack([f.pixels for f in day_frames[:4]]))
        assert clock.operation_counts()["classifier_infer"] == 4

    def test_empty_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            CountClassifier(small_config()).fit_frames([])


class TestSpatialFilter:
    def test_binary_output(self, day_frames):
        filt = SpatialFilter(bus_left_of_car, config=small_config())
        filt.fit_frames(day_frames)
        pixels = np.stack([f.pixels for f in day_frames[:6]])
        preds = filt.predict(pixels)
        assert set(np.unique(preds)) <= {0, 1}
        assert filt.num_classes == 2

    def test_forces_two_classes_regardless_of_config(self, day_frames):
        filt = SpatialFilter(bus_left_of_car, config=small_config(num_classes=9))
        assert filt.config.num_classes == 2

    def test_accuracy_on(self, day_frames):
        filt = SpatialFilter(bus_left_of_car, config=small_config())
        filt.fit_frames(day_frames)
        assert 0.0 <= filt.accuracy_on(day_frames) <= 1.0
