"""Every zoo entry passes the full conformance battery -- and the kit
itself actually catches violations (a kit that passes everything
certifies nothing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import zoo
from repro.detectors.zoo import DetectorSpec
from repro.errors import ConformanceError
from repro.testing import gaussian_stream, make_registry
from repro.testing.conformance import (
    DETECT_SEED,
    DETECT_SEGMENTS,
    check_protocol,
    check_reset,
    check_seed_determinism,
    check_state_roundtrip,
    run_conformance,
)


@pytest.fixture(scope="module")
def bundle():
    return make_registry().get("low")


@pytest.fixture(scope="module")
def frames():
    return gaussian_stream(DETECT_SEED, list(DETECT_SEGMENTS))


@pytest.mark.parametrize("name", zoo.names())
def test_zoo_entry_passes_conformance(name, bundle):
    """The acceptance bar for registering a detector: protocol, reset,
    determinism, mid-stream state round-trip, three-substrate
    bit-identity, and a non-vacuous detection."""
    run_conformance(zoo.get_spec(name), bundle)


class _BrokenBase:
    """Minimal Snapshotable DriftMonitor; subclasses break one clause."""

    def __init__(self, reference):
        centroid = np.asarray(reference, dtype=np.float64).mean(axis=0)
        self._centroid = centroid
        self._frame_index = 0
        self._drift_frame = None

    @property
    def drift_detected(self):
        return self._drift_frame is not None

    @property
    def drift_frame(self):
        return self._drift_frame

    def _distance(self, frame):
        latent = np.asarray(frame, dtype=np.float64).reshape(-1)
        return float(np.sqrt(((latent - self._centroid) ** 2).sum()))

    def observe(self, frame):
        if self._distance(frame) > 10.0 and self._drift_frame is None:
            self._drift_frame = self._frame_index
        self._frame_index += 1
        return self.drift_detected

    def observe_batch(self, frames):
        return [self.observe(frame) for frame in np.asarray(frames)]

    def reset(self):
        self._drift_frame = None

    def state_dict(self):
        return {"frame_index": self._frame_index,
                "drift_frame": self._drift_frame}

    def load_state_dict(self, state):
        self._frame_index = int(state["frame_index"])
        drift = state["drift_frame"]
        self._drift_frame = None if drift is None else int(drift)


def _spec(name, cls, rollback=True):
    return DetectorSpec(name=name, family="broken", description="broken",
                        factory=lambda bundle: cls(bundle.sigma),
                        rollback=rollback)


class TestKitCatchesViolations:
    def test_wrong_rollback_advertisement_caught(self, bundle):
        # the stub qualifies for rollback (observe_batch + Snapshotable)
        # but the spec claims it does not: the kit must flag the mismatch
        with pytest.raises(ConformanceError, match="rollback"):
            check_protocol(
                _spec("no-batch", _BrokenBase, rollback=False), bundle)

    def test_sticky_reset_caught(self, bundle, frames):
        class StickyReset(_BrokenBase):
            def reset(self):
                pass  # keeps the latched drift: violates re-arming

        with pytest.raises(ConformanceError, match="reset"):
            check_reset(_spec("sticky", StickyReset), bundle, frames)

    def test_hidden_entropy_caught(self, bundle, frames):
        class Entropic(_BrokenBase):
            _counter = 0

            def __init__(self, reference):
                super().__init__(reference)
                # process-global construction counter: every other
                # monitor built from the same bundle is drift-blind
                Entropic._counter += 1
                self._threshold = (10.0 if Entropic._counter % 2
                                   else float("inf"))

            def observe(self, frame):
                if (self._distance(frame) > self._threshold
                        and self._drift_frame is None):
                    self._drift_frame = self._frame_index
                self._frame_index += 1
                return self.drift_detected

        with pytest.raises(ConformanceError, match="determinism"):
            check_seed_determinism(_spec("entropic", Entropic), bundle,
                                   frames)

    def test_hidden_rng_in_escalation_routing_caught(self, bundle, frames):
        """A cascade whose *routing* gambles: the drift flags of two
        same-bundle builds can coincide by luck, but the tier-1 detector
        accumulates state over the escalated subsequence, so the kit's
        final-state comparison catches the hidden entropy regardless."""
        from repro.cascade import CascadeMonitor, EscalationPolicy
        from repro.detectors.tier0 import PixelStatMonitor

        class EntropicPolicy(EscalationPolicy):
            def decide(self, suspicion):
                # a fresh OS-seeded generator per decision: escalation
                # consumes entropy no harness can replay
                jitter = float(np.random.default_rng().uniform(-4.0, 4.0))
                return super().decide(suspicion + jitter)

        def factory(b):
            return CascadeMonitor(PixelStatMonitor(b.sigma),
                                  zoo.build("inspector", b),
                                  policy=EntropicPolicy())

        spec = DetectorSpec(name="rng-cascade", family="broken",
                            description="broken", factory=factory)
        with pytest.raises(ConformanceError, match="determinism"):
            check_seed_determinism(spec, bundle, frames)

    def test_lossy_state_dict_caught(self, bundle, frames):
        class LossyState(_BrokenBase):
            def state_dict(self):
                return {"frame_index": self._frame_index,
                        "drift_frame": None}  # drops the latched drift

        with pytest.raises(ConformanceError, match="state-roundtrip"):
            check_state_roundtrip(_spec("lossy", LossyState), bundle,
                                  frames)

    def test_honest_stub_passes_everything(self, bundle):
        """The broken variants fail for their *specific* clause, not
        because the base stub is malformed."""
        run_conformance(_spec("honest", _BrokenBase), bundle)
