"""Tests for :mod:`repro.detectors`."""
