"""The detector benchmark is pinned bit-for-bit on a small slice.

A fixed three-detector slice of the matrix (one chart, one window test,
the paper's inspector) over two quick scenarios and one seed goes into
``tests/golden/detectors_bench.json``.  Any numeric drift in detection
delay, false alarms or MTBFA -- however small -- fails the comparison;
rerun ``pytest --update-golden`` after an intentional behaviour change.
"""

from __future__ import annotations

import pytest

from repro.detectors.bench import (
    DEFAULT_SEEDS,
    Scenario,
    run_benchmark,
    scenario_matrix,
    score_run,
)
from repro.detectors.report import validate_detectors_report
from repro.errors import DetectorZooError

SLICE_DETECTORS = ("cusum", "kswin", "inspector")
SLICE_SCENARIOS = {
    "abrupt": Scenario("abrupt", ((0.0, 60), (6.0, 60)), onset=60),
    "stationary": Scenario("stationary", ((0.0, 120),), onset=None),
}


def slice_report() -> dict:
    return run_benchmark(detectors=SLICE_DETECTORS,
                         scenarios=SLICE_SCENARIOS, seeds=(0,), quick=True)


class TestGoldenSlice:
    def test_slice_matches_golden(self, golden):
        golden("detectors_bench", slice_report())

    def test_slice_is_schema_valid(self):
        validate_detectors_report(slice_report())

    def test_slice_is_deterministic(self):
        assert slice_report() == slice_report()


class TestHarness:
    def test_quick_matrix_halves_full_matrix(self):
        full = scenario_matrix(quick=False)
        quick = scenario_matrix(quick=True)
        assert set(full) == set(quick)
        for name in full:
            assert quick[name].frames <= full[name].frames // 2 + len(
                full[name].segments)
            if full[name].onset is not None:
                assert quick[name].onset < full[name].onset
            else:
                assert quick[name].onset is None

    def test_score_run_separates_false_alarms_from_detection(self):
        run = score_run("cusum", SLICE_SCENARIOS["abrupt"], seed=0)
        assert run["delay"] is not None and run["delay"] >= 0
        assert run["false_alarms"] == 0
        assert run["pre_frames"] == 60

    def test_stationary_detections_all_count_as_false_alarms(self):
        run = score_run("cusum", SLICE_SCENARIOS["stationary"], seed=0)
        assert run["delay"] is None
        assert run["pre_frames"] == 120

    def test_empty_detector_selection_rejected(self):
        with pytest.raises(DetectorZooError, match="no detectors"):
            run_benchmark(detectors=(), seeds=(0,))

    def test_empty_seeds_rejected(self):
        with pytest.raises(DetectorZooError, match="seed"):
            run_benchmark(detectors=SLICE_DETECTORS,
                          scenarios=SLICE_SCENARIOS, seeds=())

    def test_default_seeds_are_stable(self):
        assert DEFAULT_SEEDS == (0, 1, 2)
