"""DDM / EDDM: the error-rate family's warning -> drift escalation.

Both detectors expose a two-level verdict (warning zone, then drift).
The escalation must be monotone: drift implies warning, and on a
drifting stream the warning zone is entered no later than the drift
call.  Hypothesis drives the shift magnitude and seed; the invariants
must hold for every generated stream, drifting or not.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.classical import DDMDetector, EDDMDetector
from repro.testing import gaussian_stream, make_registry

FAMILIES = {"ddm": DDMDetector, "eddm": EDDMDetector}

_BUNDLE = make_registry().get("low")


def run_levels(detector, frames):
    """Per-frame (warning, drift) verdicts."""
    levels = []
    for frame in frames:
        detector.observe(frame)
        levels.append((detector.warning_detected, detector.drift_detected))
    return levels


class TestEscalationMonotone:
    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(FAMILIES)),
           seed=st.integers(0, 50),
           shift=st.floats(0.0, 8.0))
    def test_drift_implies_warning(self, name, seed, shift):
        detector = FAMILIES[name](_BUNDLE.sigma)
        frames = gaussian_stream(seed, [(0.0, 120), (shift, 120)])
        for warning, drift in run_levels(detector, frames):
            assert not (drift and not warning), \
                f"{name}: drift without warning"

    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(FAMILIES)),
           seed=st.integers(0, 50))
    def test_warning_no_later_than_drift(self, name, seed):
        """Whenever drift fires, the warning zone was entered at or
        before it (EDDM can legitimately miss on seeds whose reference
        segment produced too few baseline errors -- the fixed-seed test
        below pins that it does detect)."""
        detector = FAMILIES[name](_BUNDLE.sigma)
        frames = gaussian_stream(seed, [(0.0, 120), (6.0, 120)])
        levels = run_levels(detector, frames)
        drift_at = next((i for i, (_, d) in enumerate(levels) if d), None)
        if drift_at is not None:
            warn_at = next(i for i, (w, _) in enumerate(levels) if w)
            assert warn_at <= drift_at

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_detects_at_fixed_seeds(self, name, seed):
        """The property above must not be vacuous: both family members
        catch the 6-sigma shift (with warning first) at pinned seeds."""
        detector = FAMILIES[name](_BUNDLE.sigma)
        frames = gaussian_stream(seed, [(0.0, 120), (6.0, 120)])
        levels = run_levels(detector, frames)
        drift_at = next((i for i, (_, d) in enumerate(levels) if d), None)
        assert drift_at is not None, f"{name} missed the shift (seed {seed})"
        warn_at = next(i for i, (w, _) in enumerate(levels) if w)
        assert warn_at <= drift_at

    @settings(max_examples=15, deadline=None)
    @given(name=st.sampled_from(sorted(FAMILIES)),
           seed=st.integers(0, 50))
    def test_drift_verdict_latches(self, name, seed):
        """Once drift is declared it stays declared until reset()."""
        detector = FAMILIES[name](_BUNDLE.sigma)
        frames = gaussian_stream(seed, [(0.0, 120), (6.0, 120)])
        levels = run_levels(detector, frames)
        drifts = [d for _, d in levels]
        if True in drifts:
            assert all(drifts[drifts.index(True):])


class TestFamilyBehaviour:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_reset_rearms_both_levels(self, name):
        detector = FAMILIES[name](_BUNDLE.sigma)
        frames = gaussian_stream(0, [(0.0, 120), (6.0, 120)])
        run_levels(detector, frames)
        assert detector.drift_detected
        detector.reset()
        assert not detector.drift_detected
        assert not detector.warning_detected
        assert detector.drift_frame is None

    def test_ddm_detects_before_eddm(self):
        """DDM reacts to the error *rate*, EDDM to error *gaps*; on an
        abrupt hard shift the rate chart must fire first (the reason
        both are in the zoo)."""
        frames = gaussian_stream(3, [(0.0, 120), (6.0, 120)])
        ddm = DDMDetector(_BUNDLE.sigma)
        eddm = EDDMDetector(_BUNDLE.sigma)
        for frame in frames:
            ddm.observe(frame)
            eddm.observe(frame)
        assert ddm.drift_frame is not None
        assert eddm.drift_frame is not None
        assert ddm.drift_frame < eddm.drift_frame
