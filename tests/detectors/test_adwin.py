"""ADWIN: the adaptive window grows when stationary, shrinks on change."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.classical import ADWINDetector
from repro.testing import gaussian_stream, make_registry

_BUNDLE = make_registry().get("low")


class TestWindowDynamics:
    def test_window_grows_on_stationary_stream(self):
        detector = ADWINDetector(_BUNDLE.sigma)
        frames = gaussian_stream(0, [(0.0, 200)])
        for frame in frames:
            detector.observe(frame)
        assert not detector.drift_detected
        assert detector.window_size == 200

    def test_window_is_bounded(self):
        detector = ADWINDetector(_BUNDLE.sigma, max_window=64)
        frames = gaussian_stream(1, [(0.0, 300)])
        for frame in frames:
            detector.observe(frame)
            assert detector.window_size <= 64
        assert detector.window_size == 64

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_window_shrinks_on_distribution_change(self, seed):
        """The Hoeffding cut drops the pre-change prefix: right after the
        drift call the window must be strictly smaller than it was at the
        onset, keeping only post-change (plus briefly ambiguous)
        samples."""
        detector = ADWINDetector(_BUNDLE.sigma)
        frames = gaussian_stream(seed, [(0.0, 120), (6.0, 80)])
        size_at_onset = None
        size_after_drift = None
        for index, frame in enumerate(frames):
            detector.observe(frame)
            if index == 119:
                size_at_onset = detector.window_size
            if detector.drift_detected and size_after_drift is None:
                size_after_drift = detector.window_size
                break
        assert size_at_onset == 120
        assert size_after_drift is not None, "missed a 6-sigma shift"
        assert size_after_drift < size_at_onset
        # the cut keeps the suffix: far fewer than the pre-drift samples
        assert size_after_drift <= 60

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_no_cut_without_change(self, seed):
        """On a stationary stream the window never shrinks: its size is
        monotone non-decreasing up to the max_window bound."""
        detector = ADWINDetector(_BUNDLE.sigma, max_window=128)
        frames = gaussian_stream(seed, [(0.0, 160)])
        previous = 0
        for frame in frames:
            detector.observe(frame)
            assert detector.window_size >= min(previous, 127)
            previous = detector.window_size
        assert not detector.drift_detected
