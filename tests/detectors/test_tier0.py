"""Property and unit tests for the tier-0 pixel-stat screen.

The statistics make exact claims -- bounded in ``[0, 1]``, exactly
``1.0`` on identical frames, bitwise symmetric, edge masks invariant to
a constant integer brightness offset -- so they are tested as exact
claims, not approximations.  The monitor's batched path is pinned
bit-identical to sequential observation (the property the kernel's
optimistic rollback relies on).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.tier0 import (
    STAT_NAMES,
    PixelStatMonitor,
    edge_iou,
    edge_mask,
    gradient_magnitude,
    ssim_index,
)
from repro.errors import (
    ConfigurationError,
    DimensionMismatchError,
    EmptyReferenceError,
)
from repro.testing import DIM, gaussian_stream, make_registry


@pytest.fixture(scope="module")
def bundle():
    return make_registry().get("low")


def _vector(seed: int, scale: float = 1.0) -> np.ndarray:
    return np.random.default_rng(seed).normal(0.0, scale, size=DIM)


def _image(seed: int, side: int = 12) -> np.ndarray:
    """Integer-valued image: every gradient is exact in float64, so the
    offset-invariance claims hold bit for bit."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(side, side)).astype(np.float64)


class TestSsimProperties:
    @given(seed=st.integers(0, 2000), scale=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_bounded_on_latent_vectors(self, seed, scale):
        a = _vector(seed, scale)
        b = _vector(seed + 1, scale)
        assert 0.0 <= ssim_index(a, b) <= 1.0

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_bounded_on_images(self, seed):
        assert 0.0 <= ssim_index(_image(seed), _image(seed + 1)) <= 1.0

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_identical_frames_score_exactly_one(self, seed):
        a = _vector(seed)
        assert ssim_index(a, a) == 1.0
        img = _image(seed)
        assert ssim_index(img, img) == 1.0

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_symmetric(self, seed):
        a, b = _vector(seed), _vector(seed + 1)
        assert ssim_index(a, b) == ssim_index(b, a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError, match="equally-sized"):
            ssim_index(np.zeros(4), np.zeros(5))

    def test_empty_frames_rejected(self):
        with pytest.raises(DimensionMismatchError, match="non-empty"):
            ssim_index(np.zeros(0), np.zeros(0))

    def test_constant_frames_well_defined(self):
        """Zero-span inputs hit the numerical floor, not a division by
        zero."""
        a = np.full(DIM, 3.0)
        assert ssim_index(a, a) == 1.0
        assert 0.0 <= ssim_index(a, np.full(DIM, 4.0)) <= 1.0


class TestEdgeProperties:
    @given(seed=st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_iou_bounded_symmetric_and_one_on_identity(self, seed):
        a, b = _image(seed), _image(seed + 1)
        score = edge_iou(a, b)
        assert 0.0 <= score <= 1.0
        assert edge_iou(b, a) == score
        assert edge_iou(a, a) == 1.0

    @given(seed=st.integers(0, 2000), offset=st.integers(-64, 64))
    @settings(max_examples=40, deadline=None)
    def test_mask_invariant_to_constant_integer_offset(self, seed, offset):
        """A constant shifts no gradient; on integer-valued frames the
        Sobel arithmetic is exact, so the mask -- and hence the IoU --
        is unchanged bit for bit."""
        a, b = _image(seed), _image(seed + 1)
        assert np.array_equal(edge_mask(a + offset), edge_mask(a))
        assert edge_iou(a + offset, b) == edge_iou(a, b)

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_iou_on_latent_vectors_bounded(self, seed):
        a, b = _vector(seed), _vector(seed + 1)
        assert 0.0 <= edge_iou(a, b) <= 1.0

    def test_flat_frames_have_no_edges_and_agree(self):
        flat = np.full((8, 8), 7.0)
        assert not edge_mask(flat).any()
        assert edge_iou(flat, flat * 2.0) == 1.0

    def test_gradient_of_short_vector_is_zero(self):
        assert np.array_equal(gradient_magnitude(np.ones(1)), np.zeros(1))

    def test_gradient_collapses_channels(self):
        img = _image(3)
        stacked = np.repeat(img[..., None], 3, axis=-1)
        assert np.array_equal(gradient_magnitude(stacked),
                              gradient_magnitude(img))

    def test_gradient_rejects_higher_rank(self):
        with pytest.raises(DimensionMismatchError, match="1-D, 2-D or 3-D"):
            gradient_magnitude(np.zeros((2, 2, 2, 2)))

    def test_mask_tau_validated(self):
        with pytest.raises(ConfigurationError, match="tau"):
            edge_mask(_image(0), tau=0.0)
        with pytest.raises(ConfigurationError, match="tau"):
            edge_mask(_image(0), tau=1.5)

    def test_iou_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError, match="equally-shaped"):
            edge_iou(np.zeros(4), np.zeros(6))


class TestMonitorConstruction:
    def test_reference_must_be_a_sample(self, bundle):
        with pytest.raises(EmptyReferenceError, match="N>=5"):
            PixelStatMonitor(np.zeros(DIM))
        with pytest.raises(EmptyReferenceError, match="N>=5"):
            PixelStatMonitor(bundle.sigma[:3])

    def test_knobs_validated(self, bundle):
        with pytest.raises(ConfigurationError, match="smoothing"):
            PixelStatMonitor(bundle.sigma, smoothing=0)
        with pytest.raises(ConfigurationError, match="drift_z"):
            PixelStatMonitor(bundle.sigma, drift_z=0.0)
        with pytest.raises(ConfigurationError, match="drift_confirm"):
            PixelStatMonitor(bundle.sigma, drift_confirm=0)


class TestMonitorBehaviour:
    def test_stationary_stream_stays_quiet(self, bundle):
        monitor = PixelStatMonitor(bundle.sigma)
        for frame in gaussian_stream(5, [(0.0, 240)]):
            monitor.observe(frame)
        assert not monitor.drift_detected
        assert monitor.drift_frame is None
        assert monitor.frames_seen == 240

    def test_shifted_stream_latches_after_onset(self, bundle):
        monitor = PixelStatMonitor(bundle.sigma)
        decisions = [monitor.observe(frame) for frame in
                     gaussian_stream(5, [(0.0, 120), (6.0, 120)])]
        assert monitor.drift_detected
        assert monitor.drift_frame >= 120
        # the latch is sticky: every decision after it reports drift
        assert all(d.drift for d in decisions[monitor.drift_frame:])
        assert all(set(d.zscores) == set(STAT_NAMES) for d in decisions)

    def test_suspicion_rises_after_onset(self, bundle):
        monitor = PixelStatMonitor(bundle.sigma)
        decisions = [monitor.observe(frame) for frame in
                     gaussian_stream(7, [(0.0, 120), (6.0, 120)])]
        pre = max(d.suspicion for d in decisions[:120])
        post = max(d.suspicion for d in decisions[120:])
        assert post > pre
        assert all(d.suspicion >= 0.0 for d in decisions)

    def test_reset_rearms(self, bundle):
        monitor = PixelStatMonitor(bundle.sigma)
        for frame in gaussian_stream(5, [(0.0, 60), (6.0, 60)]):
            monitor.observe(frame)
        assert monitor.drift_detected
        monitor.reset()
        assert not monitor.drift_detected
        assert monitor.frames_seen == 0
        assert monitor.state_dict()["streak"] == 0
        assert all(not window for window in
                   monitor.state_dict()["windows"].values())

    def test_peek_suspicion_touches_no_state(self, bundle):
        monitor = PixelStatMonitor(bundle.sigma)
        for frame in gaussian_stream(9, [(0.0, 40)]):
            monitor.observe(frame)
        before = monitor.state_dict()
        calm = monitor.peek_suspicion(gaussian_stream(1, [(0.0, 1)])[0])
        wild = monitor.peek_suspicion(gaussian_stream(1, [(9.0, 1)])[0])
        assert monitor.state_dict() == before
        assert wild > calm >= 0.0


class TestMonitorSnapshotAndBatch:
    @given(seed=st.integers(0, 500), split=st.integers(1, 119),
           batch=st.sampled_from([1, 3, 16, 240]))
    @settings(max_examples=15, deadline=None)
    def test_batched_and_restored_runs_are_bit_identical(self, seed, split,
                                                         batch, bundle):
        frames = gaussian_stream(seed, [(0.0, 60), (6.0, 60)])
        sequential = PixelStatMonitor(bundle.sigma)
        seq_decisions = [sequential.observe(frame) for frame in frames]

        batched = PixelStatMonitor(bundle.sigma)
        batch_decisions = []
        for start in range(0, len(frames), batch):
            batch_decisions.extend(
                batched.observe_batch(frames[start:start + batch]))
        assert batch_decisions == seq_decisions
        assert batched.state_dict() == sequential.state_dict()

        resumed = PixelStatMonitor(bundle.sigma)
        prefix = [resumed.observe(frame) for frame in frames[:split]]
        restored = PixelStatMonitor(bundle.sigma)
        restored.load_state_dict(resumed.state_dict())
        tail = [restored.observe(frame) for frame in frames[split:]]
        assert prefix + tail == seq_decisions
        assert restored.state_dict() == sequential.state_dict()

    def test_single_frame_promoted_to_batch_of_one(self, bundle):
        monitor = PixelStatMonitor(bundle.sigma)
        decisions = monitor.observe_batch(gaussian_stream(2, [(0.0, 1)])[0])
        assert len(decisions) == 1
        assert monitor.frames_seen == 1
