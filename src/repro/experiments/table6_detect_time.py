"""Table 6: drift-detection time performance (seconds).

Both detectors monitor the full stream against the simulated clock charged
with the paper-calibrated per-frame costs (DI ~3 ms/frame incl. 1 ms VAE;
ODIN-Detect ~6 ms/frame).  Because our streams are scaled down, the table
reports the scaled simulated seconds *and* the extrapolation to the paper's
stream sizes, which is directly comparable to Table 6 (paper: DI needs at
least 50% less time than ODIN-Detect).
"""

from __future__ import annotations

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.core.drift_inspector import DriftInspectorConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    make_inspector,
)
from repro.sim.clock import SimulatedClock

PAPER_SECONDS = {
    "BDD": {"di": 293.4, "odin": 636.2},
    "Detrac": {"di": 97.3, "odin": 235.8},
    "Tokyo": {"di": 194.8, "odin": 294.0},
}


def di_monitor_stream(context: ExperimentContext,
                      clock: SimulatedClock) -> int:
    """Run DI over the whole stream, swapping the reference at detections
    (as the pipeline would); returns the number of drifts declared."""
    registry = context.registry()
    stream = context.stream
    current = stream[0].segment
    bundle = registry.get(current)
    config = DriftInspectorConfig(seed=context.config.seed,
                                  k=context.config.knn_k)
    inspector = make_inspector(bundle, config=config, clock=clock)
    detections = 0
    for frame in stream:
        decision = inspector.observe(frame.pixels)
        if decision.drift:
            detections += 1
            bundle = registry.get(frame.segment)
            inspector = make_inspector(bundle, config=config, clock=clock)
    return detections


def odin_monitor_stream(context: ExperimentContext,
                        clock: SimulatedClock) -> int:
    """Run ODIN-Detect over the whole stream; returns promotions."""
    detect = OdinDetect(config=OdinConfig(),
                        embedder=context.shared_embedder, clock=clock)
    first = context.dataset.segment_names[0]
    detect.seed_cluster(first, context.segment_embeddings(first))
    detections = 0
    for frame in context.stream:
        if detect.observe(frame.pixels).drift:
            detections += 1
            detect.reset_detection()
    return detections


def run(context: ExperimentContext) -> ExperimentResult:
    """Table 6 row for one dataset."""
    result = ExperimentResult(
        experiment="table6",
        description=f"Drift-detection time on {context.dataset.name}")
    frames = len(context.stream)
    paper_frames = context.dataset.paper_stream_size

    di_clock = SimulatedClock()
    di_detections = di_monitor_stream(context, di_clock)
    odin_clock = SimulatedClock()
    odin_detections = odin_monitor_stream(context, odin_clock)

    di_ms_per_frame = di_clock.elapsed_ms / frames
    odin_ms_per_frame = odin_clock.elapsed_ms / frames
    paper = PAPER_SECONDS.get(context.dataset.name, {})
    result.add_row(
        dataset=context.dataset.name,
        frames=frames,
        di_seconds=di_clock.elapsed_s,
        odin_seconds=odin_clock.elapsed_s,
        di_ms_per_frame=di_ms_per_frame,
        odin_ms_per_frame=odin_ms_per_frame,
        di_paper_scale_s=di_ms_per_frame * paper_frames / 1000.0,
        odin_paper_scale_s=odin_ms_per_frame * paper_frames / 1000.0,
        paper_di_s=paper.get("di"),
        paper_odin_s=paper.get("odin"),
        di_detections=di_detections,
        odin_detections=odin_detections,
    )
    result.notes.append(
        "simulated clock; paper_scale extrapolates per-frame cost to the "
        "paper's stream size")
    return result
