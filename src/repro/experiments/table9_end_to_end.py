"""Table 9: end-to-end time performance (seconds).

Total simulated time for each of the five systems to process the full
stream: drift monitoring + model selection for the drift-aware systems,
per-frame selection for ODIN, per-frame detector inference for the
oblivious baselines.  Paper shape: (DI, MSBO) is ~3x faster than ODIN and
slightly faster than (DI, MSBI); YOLO sits near ODIN; Mask R-CNN is one
order of magnitude slower.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.endtoend import run_systems

PAPER_SECONDS = {
    "BDD": {"(DI, MSBO)": 278.4, "(DI, MSBI)": 295.8, "ODIN": 1400.6,
            "YOLO": 1231.0, "MaskRCNN": 10680.0},
    "Detrac": {"(DI, MSBO)": 105.6, "(DI, MSBI)": 116.8, "ODIN": 682.6,
               "YOLO": 462.0, "MaskRCNN": 4005.0},
    "Tokyo": {"(DI, MSBO)": 169.2, "(DI, MSBI)": 178.0, "ODIN": 950.1,
              "YOLO": 692.0, "MaskRCNN": 6007.5},
}


def run(context: ExperimentContext) -> ExperimentResult:
    """Table 9 rows for one dataset (one row per system)."""
    result = ExperimentResult(
        experiment="table9",
        description=f"End-to-end time on {context.dataset.name} "
                    "(seconds, simulated)")
    runs = run_systems(context, spatial=False)
    frames = len(context.stream)
    paper = PAPER_SECONDS.get(context.dataset.name, {})
    # selection operations happen once per drift, not per frame -- scale
    # only the per-frame costs to the paper's stream size and carry the
    # per-drift selection time over unchanged (the paper has the same
    # number of drifts)
    selection_ops = ("ensemble_member_infer", "msbi_model_frame",
                     "annotate_frame")
    for name, run_ in runs.items():
        ms_per_frame = run_.simulated_s * 1000.0 / frames
        ledger = run_.extra.get("ledger", {})
        selection_ms = sum(ledger.get(op, 0.0) for op in selection_ops)
        monitor_ms = run_.simulated_s * 1000.0 - selection_ms
        paper_scale_s = (monitor_ms / frames
                         * context.dataset.paper_stream_size
                         + selection_ms) / 1000.0
        result.add_row(
            system=name,
            seconds=run_.simulated_s,
            ms_per_frame=ms_per_frame,
            paper_scale_s=paper_scale_s,
            paper_s=paper.get(name),
            invocations_per_frame=run_.invocations_per_frame,
            detections=run_.detections,
        )
    result.notes.append(
        "paper_scale extrapolates the measured per-frame cost to the "
        "paper's stream size for direct comparison with Table 9")
    return result
