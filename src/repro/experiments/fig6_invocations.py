"""Figure 6: model invocations per frame.

MSBO and MSBI select a single model once per drift, so every frame costs
exactly one model invocation.  ODIN-Select assigns each frame to clusters on
the fly; frames matching several density bands are processed by ensembles,
pushing invocations per frame above 1, and frames matching a *wrong* single
cluster silently use the wrong model (the Figure 7 accuracy cost).

The experiment replays each post-drift sequence and reports invocations per
frame per sequence for the three selectors.
"""

from __future__ import annotations

from repro.baselines.odin.select import OdinSelect
from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.experiments.common import ExperimentContext, ExperimentResult


def odin_selector(context: ExperimentContext,
                  band_tolerance: float = 0.6) -> OdinSelect:
    """ODIN-Select with permanent clusters for every provisioned model.

    Selection runs in ODIN's own (plain autoencoder-mean) embedding space,
    as in the published system; the recon/profile augmentations are this
    reproduction's addition and are only lent to ODIN-Detect."""
    detect = OdinDetect(config=OdinConfig(),
                        embedder=context.mean_embedder)
    for segment in context.dataset.segment_names:
        detect.seed_cluster(segment,
                            context.segment_mean_embeddings(segment))
    return OdinSelect(detect.clusters, embedder=context.mean_embedder,
                      band_tolerance=band_tolerance)


def run(context: ExperimentContext,
        band_tolerance: float = 0.6) -> ExperimentResult:
    """Figure 6 for one dataset: invocations/frame per sequence."""
    result = ExperimentResult(
        experiment="fig6",
        description=f"Model invocations per frame on {context.dataset.name}")
    selector = odin_selector(context, band_tolerance)
    per_sequence: dict = {}
    for frame in context.stream:
        outcome = selector.select(frame.pixels)
        bucket = per_sequence.setdefault(frame.segment, [0, 0, 0])
        bucket[0] += len(outcome.models)
        bucket[1] += 1
        bucket[2] += int(outcome.is_ensemble)
        # track whether the single best model was chosen
        if not outcome.is_ensemble and outcome.models[0] == frame.segment:
            pass
    for sequence in context.dataset.segment_names:
        total, frames, ensembles = per_sequence.get(sequence, [0, 1, 0])
        result.add_row(
            sequence=sequence,
            msbo_invocations_per_frame=1.0,
            msbi_invocations_per_frame=1.0,
            odin_invocations_per_frame=total / frames,
            odin_ensemble_fraction=ensembles / frames,
        )
    result.notes.append(
        "MSBO / MSBI always deploy the single best model (1 invocation per "
        "frame); ODIN-Select forms equal-weight ensembles when a frame "
        "matches several cluster bands")
    return result
