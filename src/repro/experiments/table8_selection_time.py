"""Table 8: model-selection time performance (seconds).

Measures the time to pick a model after a drift.  MSBO examines W_T = 10
annotated frames once per drift; MSBI examines W_N frames per escalation
round; ODIN-Select instead re-selects on *every* incoming frame, so its
total selection time scales with the stream length -- the paper's one order
of magnitude gap (e.g. Detrac: MSBO 8.34 s, MSBI 19.57 s vs ODIN-Select
446.8 s) comes from that structural difference, not from per-frame cost
(where ODIN-Select is cheaper, Table 7).
"""

from __future__ import annotations

from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import NovelDistribution
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.fig6_invocations import odin_selector
from repro.sim.clock import SimulatedClock
from repro.video.stream import frames_to_count_labels, frames_to_pixels

PAPER_SECONDS = {
    "BDD": {"models": 4, "msbo": 5.015, "msbi": 22.36, "odin": 764.4},
    "Detrac": {"models": 5, "msbo": 8.34, "msbi": 19.57, "odin": 446.8},
    "Tokyo": {"models": 3, "msbo": 4.63, "msbi": 13.44, "odin": 656.1},
}


def run(context: ExperimentContext, window: int = 10) -> ExperimentResult:
    """Table 8 row for one dataset."""
    result = ExperimentResult(
        experiment="table8",
        description=f"Model-selection time on {context.dataset.name} "
                    "(seconds, simulated)")
    registry = context.registry()
    dataset = context.dataset

    # MSBO / MSBI: one selection per drift; report the mean per-drift time.
    msbo_clock = SimulatedClock()
    msbi_clock = SimulatedClock()
    drifts = dataset.drift_frames
    for drift in drifts:
        post = context.stream[drift: drift + window]
        pixels = frames_to_pixels(post)
        labels = frames_to_count_labels(post, dataset.num_count_classes,
                                        dataset.count_bucket_width)
        msbo = MSBO(registry, MSBOConfig(window_size=window,
                                         seed=context.config.seed),
                    clock=msbo_clock)
        try:
            msbo.select(pixels, labels)
        except NovelDistribution:
            pass
        msbi = MSBI(registry, MSBIConfig(window_size=window,
                                         seed=context.config.seed),
                    clock=msbi_clock)
        try:
            msbi.select(pixels)
        except NovelDistribution:
            pass

    # ODIN-Select: selection happens on every frame of the stream.
    odin_clock = SimulatedClock()
    selector = odin_selector(context)
    selector.clock = odin_clock
    for frame in context.stream:
        selector.select(frame.pixels)

    paper = PAPER_SECONDS.get(dataset.name, {})
    n_drifts = max(len(drifts), 1)
    result.add_row(
        dataset=dataset.name,
        models=len(registry),
        msbo_s_per_drift=msbo_clock.elapsed_s / n_drifts,
        msbi_s_per_drift=msbi_clock.elapsed_s / n_drifts,
        odin_s_stream=odin_clock.elapsed_s,
        odin_s_paper_scale=(odin_clock.elapsed_ms / len(context.stream))
        * dataset.paper_stream_size / 1000.0,
        paper_msbo_s=paper.get("msbo"),
        paper_msbi_s=paper.get("msbi"),
        paper_odin_s=paper.get("odin"),
    )
    result.notes.append(
        "MSBO/MSBI select once per drift over a small window; ODIN-Select "
        "re-selects every frame, so its total grows with stream length")
    return result
