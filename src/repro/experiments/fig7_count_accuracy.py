"""Figure 7: count-query accuracy A_q per sequence (all datasets).

A_q is the fraction of frames whose predicted car-count class matches the
oracle's.  Paper shape: (DI, MSBO) and (DI, MSBI) clearly beat ODIN
(~+40% in the paper) and YOLO (~+50%); Mask R-CNN is perfect by
construction (it generated the ground truth).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.endtoend import (
    overall_accuracy,
    per_sequence_accuracy,
    run_systems,
)


def run(context: ExperimentContext) -> ExperimentResult:
    """Figure 7 for one dataset: per-sequence A_q per system."""
    result = ExperimentResult(
        experiment="fig7",
        description=f"Count-query accuracy A_q on {context.dataset.name}")
    runs = run_systems(context, spatial=False)
    sequences = context.dataset.segment_names
    per_system = {name: per_sequence_accuracy(context, run_, spatial=False)
                  for name, run_ in runs.items()}
    for sequence in sequences:
        row = {"sequence": sequence}
        for name in runs:
            row[f"A_q[{name}]"] = per_system[name].get(sequence, 0.0)
        result.add_row(**row)
    totals = {"sequence": "OVERALL"}
    for name, run_ in runs.items():
        totals[f"A_q[{name}]"] = overall_accuracy(context, run_,
                                                  spatial=False)
    result.add_row(**totals)
    result.notes.append(
        "paper: (DI, MSBO) / (DI, MSBI) beat ODIN by ~40% and YOLO by ~50% "
        "on A_q; Mask R-CNN is the annotation source (A_q = 1)")
    return result
