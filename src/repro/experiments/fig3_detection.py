"""Figure 3: drift-detection delay, DI vs ODIN-Detect, per sequence.

For each ground-truth drift in a dataset, both detectors monitor the stream
from a short pre-drift warm-up through the post-drift frames; the metric is
the number of post-drift frames processed before drift is declared (the
ground-truth change point is frame 0, as in the paper's plots).

Setup mirrors the paper: DI uses W = 3, r = 0.5, K = 5 and monitors against
the *pre-drift* segment's ``Sigma_T``; ODIN-Detect holds permanent clusters
for every segment seen so far, so the post-drift distribution is unknown to
both detectors.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.core.drift_inspector import DriftInspectorConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    make_inspector,
)
from repro.sim.metrics import DetectionRecord


def _drift_episodes(context: ExperimentContext, warmup: int):
    """Yield (drift_index, pre_segment, post_segment, frames) episodes.

    ``frames`` starts ``warmup`` frames before the change point; detection
    delay is measured against the change point.
    """
    stream = context.stream
    for drift in context.dataset.drift_frames:
        start = max(0, drift - warmup)
        pre = stream[drift - 1].segment
        post = stream[drift].segment
        yield drift, pre, post, stream[start:], drift - start


def run_di(context: ExperimentContext, warmup: int = 30,
           limit: int = 300,
           config: Optional[DriftInspectorConfig] = None
           ) -> List[DetectionRecord]:
    """Detection records for DI over every drift episode."""
    registry = context.registry()
    records: List[DetectionRecord] = []
    di_config = config or DriftInspectorConfig(
        window=3, significance=0.5, k=context.config.knn_k,
        seed=context.config.seed)
    for drift, pre, post, frames, offset in _drift_episodes(context, warmup):
        bundle = registry.get(pre)
        inspector = make_inspector(bundle, config=di_config,
                                   clock=context.clock)
        detected = None
        for i, frame in enumerate(frames[: offset + limit]):
            if inspector.observe(frame.pixels).drift:
                detected = i - offset
                break
        records.append(DetectionRecord(
            sequence=post, drift_frame=0,
            detected_frame=detected))
    return records


def run_odin(context: ExperimentContext, warmup: int = 30,
             limit: int = 300,
             config: Optional[OdinConfig] = None) -> List[DetectionRecord]:
    """Detection records for ODIN-Detect over every drift episode."""
    records: List[DetectionRecord] = []
    segment_order = context.dataset.segment_names
    for drift, pre, post, frames, offset in _drift_episodes(context, warmup):
        detect = OdinDetect(config=config,
                            embedder=context.shared_embedder,
                            clock=context.clock)
        # permanent clusters exist for every segment seen before the drift
        known = segment_order[: segment_order.index(post)]
        for segment in known:
            detect.seed_cluster(segment,
                                context.segment_embeddings(segment))
        detected = None
        for i, frame in enumerate(frames[: offset + limit]):
            if detect.observe(frame.pixels).drift:
                detected = i - offset
                break
        records.append(DetectionRecord(
            sequence=post, drift_frame=0, detected_frame=detected))
    return records


def run(context: ExperimentContext, warmup: int = 30,
        limit: int = 300) -> ExperimentResult:
    """Figure 3 for one dataset: per-sequence delays for DI and ODIN."""
    result = ExperimentResult(
        experiment="fig3",
        description=f"Drift-detection delay on {context.dataset.name} "
                    "(frames after the change point)")
    di_records = run_di(context, warmup=warmup, limit=limit)
    odin_records = run_odin(context, warmup=warmup, limit=limit)
    for di_rec, odin_rec in zip(di_records, odin_records):
        result.add_row(
            sequence=di_rec.sequence,
            di_delay=di_rec.delay if di_rec.detected else None,
            odin_delay=odin_rec.delay if odin_rec.detected else None,
            di_false_positive=di_rec.false_positive,
            odin_false_positive=odin_rec.false_positive,
        )
    di_delays = [r.delay for r in di_records if r.delay is not None]
    odin_delays = [r.delay for r in odin_records if r.delay is not None]
    if di_delays:
        result.notes.append(
            f"DI mean delay {sum(di_delays) / len(di_delays):.1f} frames "
            f"(paper: ~28-29)")
    if odin_delays:
        result.notes.append(
            f"ODIN-Detect mean delay {sum(odin_delays) / len(odin_delays):.1f}"
            " frames (paper: ~36-38)")
    return result
