"""Table 7: per-frame model-selection time (milliseconds).

The paper reports, for the Detrac configuration (5 provisioned models):
MSBO 830 ms/frame, MSBI 640 ms/frame, ODIN-Select 17.8 ms/frame.  The
derivations (Section 6.2.2): MSBO evaluates every model's L-member ensemble
per examined frame; MSBI runs a full conformal test per model per frame;
ODIN-Select pays one cluster operation per cluster plus an embedding.

This experiment measures those per-frame costs on the simulated clock by
actually running each selector and dividing charged time by frames
examined -- so cost accounting bugs would show up as deviations from the
closed-form expectation.
"""

from __future__ import annotations

from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import NovelDistribution
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.fig6_invocations import odin_selector
from repro.sim.clock import SimulatedClock
from repro.video.stream import frames_to_count_labels, frames_to_pixels

PAPER_MS = {"msbo": 830.0, "msbi": 640.0, "odin": 17.8}


def run(context: ExperimentContext, window: int = 10) -> ExperimentResult:
    """Table 7: per-frame selection cost for the three selectors."""
    result = ExperimentResult(
        experiment="table7",
        description="Per-frame model-selection time (ms, simulated)")
    registry = context.registry()
    drift = context.dataset.drift_frames[0]
    post = context.stream[drift: drift + window]
    pixels = frames_to_pixels(post)
    labels = frames_to_count_labels(post, context.dataset.num_count_classes,
                                    context.dataset.count_bucket_width)

    msbo_clock = SimulatedClock()
    msbo = MSBO(registry, MSBOConfig(window_size=window,
                                     seed=context.config.seed),
                clock=msbo_clock)
    try:
        msbo.select(pixels, labels)
    except NovelDistribution:
        pass
    msbo_ms = msbo_clock.elapsed_ms / window

    msbi_clock = SimulatedClock()
    msbi = MSBI(registry, MSBIConfig(window_size=window,
                                     seed=context.config.seed),
                clock=msbi_clock)
    frames_examined = window
    try:
        msbi.select(pixels)
        if msbi.last_report is not None:
            frames_examined = max(msbi.last_report.frames_examined
                                  // len(registry), window)
    except NovelDistribution:
        if msbi.last_report is not None:
            frames_examined = max(msbi.last_report.frames_examined
                                  // len(registry), window)
    msbi_ms = msbi_clock.elapsed_ms / frames_examined

    odin_clock = SimulatedClock()
    selector = odin_selector(context)
    selector.clock = odin_clock
    sample = context.stream[drift: drift + 50]
    for frame in sample:
        selector.select(frame.pixels)
    odin_ms = odin_clock.elapsed_ms / len(sample)

    result.add_row(
        dataset=context.dataset.name,
        models=len(registry),
        msbo_ms_per_frame=msbo_ms,
        msbi_ms_per_frame=msbi_ms,
        odin_ms_per_frame=odin_ms,
        paper_msbo_ms=PAPER_MS["msbo"],
        paper_msbi_ms=PAPER_MS["msbi"],
        paper_odin_ms=PAPER_MS["odin"],
    )
    result.notes.append(
        "paper values are for Detrac (5 models); per-frame cost scales with "
        "the number of provisioned models for MSBO/MSBI and with the number "
        "of clusters for ODIN-Select")
    return result
