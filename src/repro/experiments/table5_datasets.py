"""Table 5: datasets and their characteristics.

Regenerates the paper's dataset summary (sequences, stream size, objects per
frame mean and std) from the synthetic dataset builders.  The scaled stream
size is reported next to the paper's original; the objects-per-frame
statistics should match the paper's (they parameterise the generators).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, HarnessConfig
from repro.video.datasets import all_datasets

PAPER_ROWS = {
    "BDD": {"sequences": 4, "stream_size": 80_000, "obj": 9.2, "std": 6.4},
    "Detrac": {"sequences": 5, "stream_size": 30_000, "obj": 17.2, "std": 7.1},
    "Tokyo": {"sequences": 3, "stream_size": 45_000, "obj": 19.2, "std": 4.7},
}


def run(config: Optional[HarnessConfig] = None,
        sample: int = 200) -> ExperimentResult:
    """Measure Table 5 statistics over ``sample`` frames per dataset."""
    config = config or HarnessConfig()
    result = ExperimentResult(
        experiment="table5",
        description="Datasets and their characteristics")
    datasets = all_datasets(scale=config.scale,
                            frame_size=config.frame_size)
    for name, dataset in datasets.items():
        stats = dataset.table5_stats(sample=sample)
        paper = PAPER_ROWS[name]
        result.add_row(
            dataset=name,
            sequences=stats["sequences"],
            stream_size=stats["stream_size"],
            paper_stream_size=paper["stream_size"],
            obj_per_frame=stats["obj_per_frame"],
            paper_obj_per_frame=paper["obj"],
            obj_std=stats["obj_per_frame_std"],
            paper_obj_std=paper["std"],
        )
    result.notes.append(
        f"stream sizes scaled down by {config.scale:g}x for CPU execution")
    return result
