"""Figure 5: Brier score vs classification accuracy (BDD).

For every (model, sequence) pair, the experiment measures the model's
classification accuracy and its ensemble's Brier score on held-out frames
from the sequence.  The paper's claim: accuracies of the different models on
a sequence can sit within ~10% of the best, while the matched model's Brier
score is ~2x lower than the others' -- so thresholding on Brier yields far
more robust selections than thresholding on accuracy.

The result rows carry the full matrix plus the separation statistics
(best-vs-runner-up gap under each criterion).
"""

from __future__ import annotations

from typing import Dict

from repro.core.selection.scoring import brier_score
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.video.stream import frames_to_count_labels, frames_to_pixels


def run(context: ExperimentContext, eval_frames: int = 60) -> ExperimentResult:
    """Figure 5 matrix for one dataset (the paper shows BDD)."""
    result = ExperimentResult(
        experiment="fig5",
        description=f"Brier score vs accuracy on {context.dataset.name}")
    registry = context.registry()
    dataset = context.dataset
    accuracy: Dict[str, Dict[str, float]] = {}
    brier: Dict[str, Dict[str, float]] = {}
    for sequence in dataset.segment_names:
        frames = context.segment_stream(sequence)[:eval_frames]
        pixels = frames_to_pixels(frames)
        labels = frames_to_count_labels(frames, dataset.num_count_classes,
                                        dataset.count_bucket_width)
        accuracy[sequence] = {}
        brier[sequence] = {}
        for model_name in dataset.segment_names:
            bundle = registry.get(model_name)
            preds = bundle.model.predict(pixels)
            accuracy[sequence][model_name] = float((preds == labels).mean())
            probs = bundle.ensemble.predict_proba(pixels)
            brier[sequence][model_name] = brier_score(probs, labels)

    for sequence in dataset.segment_names:
        acc_row = accuracy[sequence]
        brier_row = brier[sequence]
        best_acc_model = max(acc_row, key=acc_row.get)
        best_brier_model = min(brier_row, key=brier_row.get)
        sorted_acc = sorted(acc_row.values(), reverse=True)
        sorted_brier = sorted(brier_row.values())
        acc_gap = (sorted_acc[0] - sorted_acc[1]) if len(sorted_acc) > 1 else 0.0
        brier_ratio = (sorted_brier[1] / max(sorted_brier[0], 1e-9)
                       if len(sorted_brier) > 1 else 1.0)
        row = {
            "sequence": sequence,
            "matched_accuracy": acc_row[sequence],
            "matched_brier": brier_row[sequence],
            "best_by_accuracy": best_acc_model,
            "best_by_brier": best_brier_model,
            "accuracy_gap_best_vs_next": acc_gap,
            "brier_ratio_next_vs_best": brier_ratio,
        }
        for model_name in dataset.segment_names:
            row[f"acc[{model_name}]"] = acc_row[model_name]
            row[f"brier[{model_name}]"] = brier_row[model_name]
        result.add_row(**row)
    result.notes.append(
        "paper: accuracies differ by ~10% across models while the matched "
        "model's Brier score is ~2x lower -- Brier separates models more "
        "robustly than accuracy")
    return result
