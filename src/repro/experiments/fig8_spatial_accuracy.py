"""Figure 8: spatial-constrained query accuracy A_q (BDD).

The query predicate is "a bus is on the left side of a car"; the per-
distribution models are SpatialFilter classifiers (OD-CLF substitutes).
Drift detection and model selection run exactly as in the count query (the
MSBO ensembles remain the count ensembles, matching the paper's reuse of
the same selection models).  Paper shape: (DI, MSBO) beats ODIN by ~20% A_q
while being ~3x faster.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.endtoend import (
    overall_accuracy,
    per_sequence_accuracy,
    run_systems,
)


def run(context: ExperimentContext) -> ExperimentResult:
    """Figure 8 for one dataset (the paper shows BDD)."""
    result = ExperimentResult(
        experiment="fig8",
        description=f"Spatial-query accuracy A_q on {context.dataset.name}")
    runs = run_systems(context, spatial=True)
    sequences = context.dataset.segment_names
    per_system = {name: per_sequence_accuracy(context, run_, spatial=True)
                  for name, run_ in runs.items()}
    for sequence in sequences:
        row = {"sequence": sequence}
        for name in runs:
            row[f"A_q[{name}]"] = per_system[name].get(sequence, 0.0)
        result.add_row(**row)
    totals = {"sequence": "OVERALL"}
    for name, run_ in runs.items():
        totals[f"A_q[{name}]"] = overall_accuracy(context, run_,
                                                  spatial=True)
    result.add_row(**totals)
    result.notes.append(
        'query: "bus is on the left side of a car"; paper: (DI, MSBO) '
        "achieves ~20% higher A_q than ODIN at ~3x less time")
    return result
