"""CLI: ``python -m repro.experiments <exp-id> [...]`` or
``repro-experiments <exp-id>``.

Runs one or more experiments at a chosen profile and prints their tables.
``all`` runs the full evaluation (Tables 5-9, Figures 3-8).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.obs import Recorder, WallClock, format_summary

from repro.experiments import (
    ablations,
    fig3_detection,
    fig4_slow_drift,
    fig5_brier,
    fig6_invocations,
    fig7_count_accuracy,
    fig8_spatial_accuracy,
    table5_datasets,
    table6_detect_time,
    table7_per_frame,
    statistical_baselines,
    table8_selection_time,
    table9_end_to_end,
)
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    HarnessConfig,
    fast_config,
)
from repro.video.datasets import make_bdd, make_detrac, make_tokyo

DATASET_MAKERS = {"BDD": make_bdd, "Detrac": make_detrac, "Tokyo": make_tokyo}

# experiments that iterate one context per dataset
PER_DATASET = {
    "fig3": fig3_detection.run,
    "stat-baselines": statistical_baselines.run,
    "table6": table6_detect_time.run,
    "fig6": fig6_invocations.run,
    "table7": table7_per_frame.run,
    "table8": table8_selection_time.run,
    "fig5": fig5_brier.run,
    "table9": table9_end_to_end.run,
    "fig7": fig7_count_accuracy.run,
}
# experiments restricted to BDD in the paper
BDD_ONLY = {"fig5", "fig8", "stat-baselines", "ablations"}
ALL_EXPERIMENTS = ["table5", "fig3", "table6", "fig4", "fig6", "table7",
                   "table8", "fig5", "table9", "fig7", "fig8"]
EXTENSIONS = ["stat-baselines", "ablations"]


def build_contexts(config: HarnessConfig,
                   datasets: Optional[List[str]] = None
                   ) -> Dict[str, ExperimentContext]:
    """One shared context per dataset (bundles cached across experiments)."""
    names = datasets or list(DATASET_MAKERS)
    return {
        name: ExperimentContext(
            DATASET_MAKERS[name](scale=config.scale,
                                 frame_size=config.frame_size),
            config)
        for name in names
    }


def run_experiment(exp_id: str, contexts: Dict[str, ExperimentContext],
                   config: HarnessConfig) -> List[ExperimentResult]:
    """Run one experiment id across the datasets it applies to."""
    if exp_id == "table5":
        return [table5_datasets.run(config)]
    if exp_id == "fig4":
        return [fig4_slow_drift.run(config=config)]
    if exp_id == "fig8":
        return [fig8_spatial_accuracy.run(contexts["BDD"])]
    if exp_id == "ablations":
        context = contexts["BDD"]
        return [ablations.betting_ablation(context),
                ablations.sensitivity_ablation(context),
                ablations.embedding_ablation(context),
                ablations.ensemble_size_ablation(context)]
    if exp_id not in PER_DATASET:
        known = ["table5", "fig4", "fig8", "ablations"] + list(PER_DATASET)
        raise SystemExit(f"unknown experiment {exp_id!r}; known: {known}")
    runner = PER_DATASET[exp_id]
    names = ["BDD"] if exp_id in BDD_ONLY else list(contexts)
    return [runner(contexts[name]) for name in names]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures")
    parser.add_argument("experiments", nargs="+",
                        help="experiment ids (table5 fig3 ...), 'all' for "
                             "the paper's evaluation, or 'everything' to "
                             "also include the extension studies")
    parser.add_argument("--profile", choices=["fast", "default"],
                        default="default",
                        help="training/evaluation budget profile")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the stream down-scaling factor")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.profile == "fast":
        config = fast_config(seed=args.seed)
    else:
        config = HarnessConfig(seed=args.seed)
    if args.scale is not None:
        from dataclasses import replace
        config = replace(config, scale=args.scale)

    requested = args.experiments
    if requested == ["all"]:
        requested = ALL_EXPERIMENTS
    elif requested == ["everything"]:
        requested = ALL_EXPERIMENTS + EXTENSIONS
    recorder = Recorder(clock=WallClock(), keep_events=False)
    with recorder.span("run"):
        with recorder.span("setup.contexts"):
            contexts = build_contexts(config)
        for exp_id in requested:
            with recorder.span(f"experiment.{exp_id}"):
                results = run_experiment(exp_id, contexts, config)
            recorder.counter("experiments.tables").inc(len(results))
            for result in results:
                print(result.format_table())
                print()
    print(format_summary(recorder.summary(), title="experiment run"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
