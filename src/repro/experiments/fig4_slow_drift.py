"""Figure 4: drift detection under a slow (gradual) drift.

A day segment transitions gradually into night (the live-camera dusk
setting of Section 6.1.3).  Ground truth places the distribution change at
the start of the blend; the metric is frames from that point until each
detector declares drift.  The paper reports DI detecting with ~3x fewer
frames than ODIN-Detect, whose clustering keeps absorbing the slowly
changing frames into the pre-drift cluster.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.odin.detect import OdinConfig, OdinDetect
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    HarnessConfig,
    make_inspector,
)
from repro.video.datasets import make_slow_drift


def build_context(config: Optional[HarnessConfig] = None) -> ExperimentContext:
    """Context over the slow-drift dataset."""
    config = config or HarnessConfig()
    dataset = make_slow_drift(scale=config.scale,
                              frame_size=config.frame_size)
    return ExperimentContext(dataset, config)


def run(context: Optional[ExperimentContext] = None,
        config: Optional[HarnessConfig] = None,
        limit: int = 400) -> ExperimentResult:
    """Figure 4: detection delay on the gradual day->night stream."""
    if context is None:
        context = build_context(config)
    dataset = context.dataset
    result = ExperimentResult(
        experiment="fig4",
        description="Slow-drift detection (gradual day->night)")
    drift_start = dataset.drift_frames[0]
    transition = int(dataset.metadata.get("transition_frames", 0))
    stream = context.stream
    registry = context.registry(with_ensembles=False)
    day = registry.get("day")

    inspector = make_inspector(day, seed=context.config.seed,
                               k=context.config.knn_k)
    di_delay = None
    for i, frame in enumerate(stream[: drift_start + limit]):
        if inspector.observe(frame.pixels).drift:
            di_delay = i - drift_start
            break

    detect = OdinDetect(config=OdinConfig(),
                        embedder=context.shared_embedder)
    detect.seed_cluster("day", context.segment_embeddings("day"))
    odin_delay = None
    for i, frame in enumerate(stream[: drift_start + limit]):
        if detect.observe(frame.pixels).drift:
            odin_delay = i - drift_start
            break

    result.add_row(
        setting="slow_drift",
        transition_frames=transition,
        di_delay=di_delay,
        odin_delay=odin_delay,
        di_false_positive=di_delay is not None and di_delay < 0,
        odin_false_positive=odin_delay is not None and odin_delay < 0,
    )
    result.notes.append(
        "paper: DI detects with ~3x fewer frames than ODIN-Detect on the "
        "gradual transition")
    return result
