"""Shared experiment plumbing.

:class:`ExperimentContext` owns everything an experiment needs for one
dataset: the materialised stream, the provisioned per-segment model bundles
(VAE + count classifier + deep ensemble), a shared embedder for ODIN, the
annotator, and the simulated clock.  Bundles are built lazily and cached so
several experiments can share one context.

:class:`HarnessConfig` holds the scaled-down training budgets; the paper's
originals (5 K training frames, 20 K augmented, hour-long VAE training) are
recorded in the docstrings and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.nonconformity import KNNDistance
from repro.core.selection.registry import ModelBundle, ModelRegistry
from repro.detectors.classifier_filters import CountClassifier, SpatialFilter
from repro.errors import ConfigurationError
from repro.nn.classifier import ClassifierConfig
from repro.nn.ensemble import DeepEnsemble
from repro.nn.vae import VAE, VAEConfig
from repro.queries.spatial import bus_left_of_car
from repro.rng import SeedLike, derive, stable_hash
from repro.sim.clock import SimulatedClock
from repro.video.annotator import OracleAnnotator
from repro.video.datasets import DriftingDataset
from repro.video.stream import Frame, frames_to_count_labels, frames_to_pixels


@dataclass(frozen=True)
class HarnessConfig:
    """Scaled-down training/evaluation budgets.

    Paper originals: 5 K raw + 15 K augmented training frames per
    distribution, ~1 h VAE training, ~5 h ensemble training, streams of
    30-80 K frames.  Defaults here run the full evaluation on CPU in
    minutes; ``fast_config()`` shrinks further for the test suite.
    """

    scale: float = 150.0
    frame_size: int = 32
    train_frames: int = 600
    sigma_size: int = 400
    vae_epochs: int = 8
    vae_latent: int = 8
    classifier_hidden: int = 128
    classifier_epochs: int = 20
    ensemble_size: int = 3
    ensemble_epochs: int = 20
    knn_k: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.train_frames < 10:
            raise ConfigurationError(
                f"train_frames must be >= 10: {self.train_frames}")
        if self.sigma_size < 10:
            raise ConfigurationError(
                f"sigma_size must be >= 10: {self.sigma_size}")


def fast_config(**overrides) -> HarnessConfig:
    """A configuration small enough for unit tests (seconds, not minutes)."""
    base = HarnessConfig(
        scale=400.0, train_frames=250, sigma_size=240, vae_epochs=4,
        classifier_hidden=64, classifier_epochs=8, ensemble_size=2,
        ensemble_epochs=4)
    return replace(base, **overrides)


@dataclass
class ExperimentResult:
    """A reproduced table/figure: named rows of measurements."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        """Plain-text table for the CLI / bench logs."""
        if not self.rows:
            return f"[{self.experiment}] (no rows)"
        columns = list(self.rows[0].keys())
        for row in self.rows[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        header = [c for c in columns]
        body = [[fmt(row.get(c, "")) for c in columns] for row in self.rows]
        widths = [max(len(header[i]), *(len(r[i]) for r in body))
                  for i in range(len(columns))]
        lines = [f"== {self.experiment}: {self.description} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


class _MeanEmbedder:
    """Expose only ``embed`` (posterior means) of a wrapped VAE."""

    def __init__(self, vae) -> None:
        self._vae = vae

    def embed(self, frames):
        return self._vae.embed(frames)


class ExperimentContext:
    """Everything an experiment needs for one dataset, built lazily."""

    def __init__(self, dataset: DriftingDataset,
                 config: Optional[HarnessConfig] = None,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.dataset = dataset
        self.config = config or HarnessConfig()
        self.clock = clock or SimulatedClock()
        self._stream: Optional[List[Frame]] = None
        self._training: Dict[str, List[Frame]] = {}
        self._bundles: Optional[ModelRegistry] = None
        self._spatial_bundles: Optional[ModelRegistry] = None
        self._shared_embedder: Optional[VAE] = None

    # ------------------------------------------------------------------
    # raw data
    # ------------------------------------------------------------------
    @property
    def stream(self) -> List[Frame]:
        """The materialised evaluation stream."""
        if self._stream is None:
            self._stream = self.dataset.stream.materialize()
        return self._stream

    def training_frames(self, segment: str) -> List[Frame]:
        """Cached per-segment training frames (independent of the stream)."""
        if segment not in self._training:
            self._training[segment] = self.dataset.training_frames(
                segment, self.config.train_frames,
                seed=derive(self.config.seed, stable_hash(segment) & 0xFFFF))
        return self._training[segment]

    def segment_stream(self, segment: str) -> List[Frame]:
        """The stream frames belonging to one segment."""
        return [f for f in self.stream if f.segment == segment]

    @property
    def annotator(self) -> OracleAnnotator:
        return OracleAnnotator(
            num_classes=self.dataset.num_count_classes,
            bucket_width=self.dataset.count_bucket_width,
            seed=derive(self.config.seed, 101))

    # ------------------------------------------------------------------
    # factories (shared with the ModelTrainer)
    # ------------------------------------------------------------------
    def make_vae(self, seed: SeedLike) -> VAE:
        cfg = VAEConfig(
            input_shape=(1, self.config.frame_size, self.config.frame_size),
            latent_dim=self.config.vae_latent, architecture="dense",
            epochs=self.config.vae_epochs, seed=seed)
        return VAE(cfg)

    def classifier_config(self, seed: SeedLike,
                          num_classes: Optional[int] = None,
                          epochs: Optional[int] = None) -> ClassifierConfig:
        return ClassifierConfig(
            input_shape=(1, self.config.frame_size, self.config.frame_size),
            num_classes=num_classes or self.dataset.num_count_classes,
            architecture="mlp", hidden=self.config.classifier_hidden,
            epochs=epochs or self.config.classifier_epochs, seed=seed)

    def make_classifier(self, seed: SeedLike) -> CountClassifier:
        return CountClassifier(self.classifier_config(seed))

    def make_ensemble(self, seed: SeedLike) -> DeepEnsemble:
        base = self.classifier_config(seed,
                                      epochs=self.config.ensemble_epochs)
        return DeepEnsemble(base, size=self.config.ensemble_size, seed=seed)

    # ------------------------------------------------------------------
    # provisioned bundles
    # ------------------------------------------------------------------
    def _build_bundle(self, segment: str, index: int,
                      with_ensemble: bool) -> ModelBundle:
        frames = self.training_frames(segment)
        pixels = frames_to_pixels(frames)
        labels = frames_to_count_labels(
            frames, self.dataset.num_count_classes,
            self.dataset.count_bucket_width)
        vae = self.make_vae(derive(self.config.seed, 1000 + index))
        vae.fit(pixels)
        sigma = vae.sample_latents(self.config.sigma_size,
                                   seed=derive(self.config.seed, 2000 + index))
        measure = KNNDistance(k=self.config.knn_k)
        reference_scores = measure.reference_scores(sigma)
        classifier = self.make_classifier(derive(self.config.seed,
                                                 3000 + index))
        classifier.fit(pixels, labels)
        ensemble = None
        if with_ensemble:
            ensemble = self.make_ensemble(derive(self.config.seed,
                                                 4000 + index))
            ensemble.fit(pixels, labels)
        return ModelBundle(
            name=segment, sigma=sigma, reference_scores=reference_scores,
            vae=vae, model=classifier, ensemble=ensemble,
            training_frames=pixels, training_labels=labels)

    def registry(self, with_ensembles: bool = True) -> ModelRegistry:
        """Provisioned bundles for every segment (cached)."""
        if self._bundles is None:
            registry = ModelRegistry()
            for index, segment in enumerate(self.dataset.segment_names):
                registry.add(self._build_bundle(segment, index,
                                                with_ensembles))
            self._bundles = registry
        return self._bundles

    def spatial_registry(self) -> ModelRegistry:
        """Bundles whose query model is a SpatialFilter (Figure 8)."""
        if self._spatial_bundles is None:
            base = self.registry()
            registry = ModelRegistry()
            for index, segment in enumerate(self.dataset.segment_names):
                source = base.get(segment)
                frames = self.training_frames(segment)
                filt = SpatialFilter(
                    bus_left_of_car,
                    config=self.classifier_config(
                        derive(self.config.seed, 5000 + index),
                        num_classes=2))
                filt.fit_frames(frames)
                registry.add(ModelBundle(
                    name=segment, sigma=source.sigma,
                    reference_scores=source.reference_scores,
                    vae=source.vae, model=filt, ensemble=source.ensemble,
                    training_frames=source.training_frames,
                    training_labels=source.training_labels))
            self._spatial_bundles = registry
        return self._spatial_bundles

    # ------------------------------------------------------------------
    # ODIN assets
    # ------------------------------------------------------------------
    @property
    def shared_embedder(self) -> VAE:
        """ODIN's single autoencoder, trained on frames from all segments."""
        if self._shared_embedder is None:
            per_segment = max(10, self.config.train_frames
                              // len(self.dataset.segment_names))
            mixed = []
            for segment in self.dataset.segment_names:
                mixed.extend(self.training_frames(segment)[:per_segment])
            vae = self.make_vae(derive(self.config.seed, 9000))
            vae.fit(frames_to_pixels(mixed))
            self._shared_embedder = vae
        return self._shared_embedder

    @property
    def mean_embedder(self):
        """The shared embedder restricted to plain posterior means.

        ODIN's published design drives *selection* off its autoencoder's
        embedding; the recon/profile augmentations are this reproduction's
        addition (required to make detection viable), so ODIN-Select gets
        the unaugmented space."""
        return _MeanEmbedder(self.shared_embedder)

    def segment_mean_embeddings(self, segment: str) -> np.ndarray:
        """Plain posterior-mean embeddings of a segment's training frames."""
        pixels = frames_to_pixels(self.training_frames(segment))
        return self.shared_embedder.embed(pixels)

    def segment_embeddings(self, segment: str) -> np.ndarray:
        """Shared-embedder features of a segment's training frames.

        Uses the deterministic augmented embedding (mean + recon + profile)
        so ODIN's clustering sees the same feature space the Drift
        Inspector's conformal machinery does -- the comparison then isolates
        the detection algorithm, not the feature extractor."""
        pixels = frames_to_pixels(self.training_frames(segment))
        return self.shared_embedder.augmented_embed(pixels)


def make_inspector(bundle: Optional[ModelBundle] = None, *,
                   seed: SeedLike = 0,
                   config=None,
                   clock: Optional[SimulatedClock] = None,
                   sigma: Optional[np.ndarray] = None,
                   embedder: Optional[object] = None,
                   **overrides):
    """Build a :class:`~repro.core.drift_inspector.DriftInspector` over a
    provisioned bundle's reference sample and VAE.

    This is the one construction every experiment shares (Fig. 3/4,
    Table 6, the ablations and the statistical baselines used to hand-roll
    it): reference ``sigma`` and ``embedder`` default to ``bundle.sigma`` /
    ``bundle.vae``, and the
    :class:`~repro.core.drift_inspector.DriftInspectorConfig` is built from
    ``seed`` plus any keyword ``overrides`` (``k=...``, ``window=...``,
    ``inductive_split=...``) unless a ready-made ``config`` is given.
    """
    if config is None:
        config = DriftInspectorConfig(seed=seed, **overrides)
    elif overrides:
        raise ConfigurationError(
            f"pass either config or overrides, not both: {sorted(overrides)}")
    if sigma is None:
        sigma = bundle.sigma
    if embedder is None:
        embedder = bundle.vae
    return DriftInspector(sigma, config=config, embedder=embedder,
                          clock=clock)
