"""Shared end-to-end system runs (Tables 9, Figures 7-8).

Runs the five compared systems over a dataset's full stream:

- ``(DI, MSBO)`` / ``(DI, MSBI)`` -- the paper's pipeline with each selector,
- ``ODIN`` -- ODIN-Detect + ODIN-Select + ODIN-Specialize,
- ``YOLO`` -- the fast drift-oblivious detector,
- ``MaskRCNN`` -- the reference detector (annotation source, hence perfect
  accuracy at one order of magnitude higher cost).

Each system gets its own simulated clock; results are cached on the context
so Table 9 (time) and Figures 7/8 (accuracy) reuse one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.baselines.odin.detect import OdinConfig
from repro.baselines.odin.system import OdinAnalytics
from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.pipeline import DriftAwareAnalytics, PipelineConfig
from repro.core.selection.msbi import MSBI, MSBIConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.detectors.fast import FastDetector
from repro.detectors.oracle import ReferenceDetector
from repro.experiments.common import ExperimentContext
from repro.sim.clock import SimulatedClock
from repro.video.objects import BUS, CAR
from repro.video.stream import count_label


@dataclass
class SystemRun:
    """One system's pass over the full stream."""

    system: str
    predictions: np.ndarray
    simulated_s: float
    invocations_per_frame: float
    detections: int = 0
    extra: Dict[str, object] = field(default_factory=dict)


def _pipeline_run(context: ExperimentContext, selector_kind: str,
                  spatial: bool) -> SystemRun:
    registry = (context.spatial_registry() if spatial
                else context.registry())
    clock = SimulatedClock()
    window = 10
    if selector_kind == "msbo":
        selector = MSBO(registry, MSBOConfig(window_size=window,
                                             seed=context.config.seed),
                        clock=clock)
    else:
        selector = MSBI(registry, MSBIConfig(window_size=window,
                                             seed=context.config.seed),
                        clock=clock)
    pipeline = DriftAwareAnalytics(
        registry, context.dataset.segment_names[0], selector,
        annotator=context.annotator,
        config=PipelineConfig(
            selection_window=window,
            drift_inspector=DriftInspectorConfig(
                seed=context.config.seed, k=context.config.knn_k)),
        clock=clock)
    outcome = pipeline.process(context.stream)
    return SystemRun(
        system=f"(DI, {selector_kind.upper()})",
        predictions=outcome.predictions,
        simulated_s=outcome.simulated_ms / 1000.0,
        invocations_per_frame=outcome.invocations.invocations_per_frame,
        detections=len(outcome.detections),
        extra={"novel": sum(1 for d in outcome.detections if d.novel),
               "selected": [d.selected_model for d in outcome.detections],
               "ledger": clock.ledger()})


def _odin_run(context: ExperimentContext, spatial: bool) -> SystemRun:
    registry = (context.spatial_registry() if spatial
                else context.registry())
    clock = SimulatedClock()
    models = {bundle.name: bundle.model for bundle in registry}
    system = OdinAnalytics(models, embedder=context.shared_embedder,
                           select_embedder=context.mean_embedder,
                           config=OdinConfig(), clock=clock)
    for segment in context.dataset.segment_names:
        system.seed_cluster(
            segment, context.segment_embeddings(segment),
            select_embeddings=context.segment_mean_embeddings(segment))
    outcome = system.process(context.stream)
    return SystemRun(
        system="ODIN",
        predictions=outcome.predictions,
        simulated_s=outcome.simulated_ms / 1000.0,
        invocations_per_frame=outcome.invocations.invocations_per_frame,
        detections=len(outcome.detections))


def _detector_run(context: ExperimentContext, detector, name: str,
                  spatial: bool) -> SystemRun:
    clock = SimulatedClock()
    detector.clock = clock
    dataset = context.dataset
    predictions = []
    for frame in context.stream:
        result = detector.detect(frame)
        if spatial:
            bus_xs = [x for x, _ in result.positions(BUS)]
            car_xs = [x for x, _ in result.positions(CAR)]
            predictions.append(int(bool(bus_xs and car_xs
                                        and min(bus_xs) < max(car_xs))))
        else:
            predictions.append(count_label(result.count(CAR),
                                           dataset.num_count_classes,
                                           dataset.count_bucket_width))
    return SystemRun(
        system=name,
        predictions=np.asarray(predictions, dtype=np.int64),
        simulated_s=clock.elapsed_s,
        invocations_per_frame=1.0)


def run_systems(context: ExperimentContext,
                spatial: bool = False) -> Dict[str, SystemRun]:
    """All five systems over the full stream (cached per context/query)."""
    cache_attr = "_endtoend_spatial" if spatial else "_endtoend_count"
    cached = getattr(context, cache_attr, None)
    if cached is not None:
        return cached
    runs = {
        "(DI, MSBO)": _pipeline_run(context, "msbo", spatial),
        "(DI, MSBI)": _pipeline_run(context, "msbi", spatial),
        "ODIN": _odin_run(context, spatial),
        "YOLO": _detector_run(
            context, FastDetector(seed=context.config.seed), "YOLO", spatial),
        "MaskRCNN": _detector_run(
            context, ReferenceDetector(seed=context.config.seed),
            "MaskRCNN", spatial),
    }
    setattr(context, cache_attr, runs)
    return runs


def per_sequence_accuracy(context: ExperimentContext, run: SystemRun,
                          spatial: bool = False) -> Dict[str, float]:
    """A_q per sequence for one system run."""
    from repro.queries.count import CountQuery
    from repro.queries.spatial import SpatialQuery

    frames = context.stream[: len(run.predictions)]
    if spatial:
        query = SpatialQuery()
        return query.per_sequence_accuracy(frames, run.predictions)
    query = CountQuery(context.dataset.num_count_classes,
                       context.dataset.count_bucket_width)
    return query.per_sequence_accuracy(frames, run.predictions)


def overall_accuracy(context: ExperimentContext, run: SystemRun,
                     spatial: bool = False) -> float:
    """A_q over the full stream for one system run."""
    from repro.queries.count import CountQuery
    from repro.queries.spatial import SpatialQuery

    frames = context.stream[: len(run.predictions)]
    if spatial:
        return SpatialQuery().accuracy(frames, run.predictions)
    query = CountQuery(context.dataset.num_count_classes,
                       context.dataset.count_bucket_width)
    return query.accuracy(frames, run.predictions)
