"""Experiment harness: one module per paper table / figure.

Every module exposes ``run(context or config) -> ExperimentResult``; the CLI
(``python -m repro.experiments <exp-id>`` or the ``repro-experiments``
console script) pretty-prints the resulting table.  ``benchmarks/`` wraps
each module in a pytest-benchmark target.

Experiment index (see DESIGN.md for the full mapping):

========  =====================================================
table5    dataset characteristics
fig3      drift-detection delay, DI vs ODIN-Detect (3 datasets)
table6    drift-detection time performance
fig4      slow-drift detection
fig6      model invocations per frame (MSBO / MSBI / ODIN-Select)
table7    per-frame model-selection time
table8    model-selection time performance
fig5      Brier score vs accuracy on BDD
table9    end-to-end time performance (5 systems)
fig7      count-query accuracy (3 datasets)
fig8      spatial-query accuracy on BDD
========  =====================================================
"""

from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    HarnessConfig,
    fast_config,
)

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "HarnessConfig",
    "fast_config",
]
