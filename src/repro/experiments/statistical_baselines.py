"""Extension experiment: DI vs classical statistical change detectors.

The paper's related-work section dismisses control charts (need parametric
models), multivariate KS tests (impractical) and argues that video frames
violate the i.i.d. assumptions classical tests need.  This experiment makes
that argument quantitative on the same drift episodes Figure 3 uses: the
Drift Inspector against a sliding-window two-sample KS test, a CUSUM/Page
control chart and a window-mean moment test, all monitoring the identical
VAE embedding stream.

Metrics per detector: mean detection delay, missed drifts, and false alarms
(fires before the change point during the warm-up, or anywhere on a pure
null segment).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.statistical import CusumDetector, KSDetector, MomentDetector
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    make_inspector,
)
from repro.runtime.monitoring import MonitorStage


def _make_detectors(bundle, seed: int) -> Dict[str, object]:
    return {
        "DriftInspector": make_inspector(bundle, seed=seed),
        "KS": KSDetector(bundle.sigma, window=25, significance=1e-3,
                         embedder=bundle.vae),
        "CUSUM": CusumDetector(bundle.sigma, threshold=8.0,
                               embedder=bundle.vae),
        "Moment": MomentDetector(bundle.sigma, window=20, z_threshold=4.0,
                                 embedder=bundle.vae),
    }


def _observe(detector, frame) -> bool:
    # every detector satisfies the DriftMonitor protocol; the stage adapter
    # normalizes DriftDecision vs bool returns
    return MonitorStage.drift_of(detector.observe(frame.pixels))


def run(context: ExperimentContext, warmup: int = 25,
        limit: int = 100) -> ExperimentResult:
    """DI vs KS / CUSUM / moment detectors on every drift episode."""
    result = ExperimentResult(
        experiment="statistical-baselines",
        description=f"DI vs classical detectors on {context.dataset.name}")
    registry = context.registry()
    stream = context.stream
    stats: Dict[str, Dict[str, List]] = {
        name: {"delays": [], "missed": 0, "false_alarms": 0}
        for name in ("DriftInspector", "KS", "CUSUM", "Moment")}

    # drift episodes (warm-up on the pre-drift segment, then post-drift)
    for drift in context.dataset.drift_frames:
        start = max(0, drift - warmup)
        bundle = registry.get(stream[drift - 1].segment)
        detectors = _make_detectors(bundle, context.config.seed)
        for name, detector in detectors.items():
            detected = None
            for i, frame in enumerate(stream[start: drift + limit]):
                if _observe(detector, frame):
                    detected = i - (drift - start)
                    break
            record = stats[name]
            if detected is None:
                record["missed"] += 1
            elif detected < 0:
                record["false_alarms"] += 1
            else:
                record["delays"].append(detected)

    # pure null segments: any firing is a false alarm
    for segment in context.dataset.segment_names:
        bundle = registry.get(segment)
        detectors = _make_detectors(bundle, context.config.seed)
        frames = context.segment_stream(segment)
        for name, detector in detectors.items():
            for frame in frames:
                if _observe(detector, frame):
                    stats[name]["false_alarms"] += 1
                    break

    for name, record in stats.items():
        delays = record["delays"]
        result.add_row(
            detector=name,
            mean_delay=float(np.mean(delays)) if delays else float("nan"),
            detected=len(delays),
            missed=record["missed"],
            false_alarms=record["false_alarms"],
        )
    result.notes.append(
        "classical windowed tests assume i.i.d. samples; correlated video "
        "frames make their p-values anticonservative (false alarms) or "
        "their statistics sluggish (misses) -- the gap the conformal "
        "martingale closes")
    return result
