"""Ablation studies for the design choices DESIGN.md calls out.

Four studies, each returning an :class:`ExperimentResult`:

- :func:`betting_ablation` -- betting-function family and the two-sided
  transform vs detection delay and false alarms.
- :func:`sensitivity_ablation` -- the paper's claim that DI depends only
  nominally on the window ``W``, significance ``r`` and neighbour count
  ``K`` (Section 6.1).
- :func:`embedding_ablation` -- the latent-only embedding vs the
  reconstruction-error and profile augmentations, and the inductive
  bag/calibration split vs paper-literal leave-one-out scoring.
- :func:`ensemble_size_ablation` -- MSBO selection quality vs the ensemble
  size ``L`` (the paper recommends 3-10).

All studies reuse one :class:`ExperimentContext`'s trained bundles; only
cheap per-study state (fresh ``Sigma_T`` draws, inspector configs) is
rebuilt.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.drift_inspector import DriftInspectorConfig
from repro.core.selection.msbo import MSBO, MSBOConfig
from repro.core.selection.registry import ModelBundle, ModelRegistry, NovelDistribution
from repro.experiments.common import (
    ExperimentContext,
    ExperimentResult,
    make_inspector,
)
from repro.nn.ensemble import DeepEnsemble
from repro.rng import derive
from repro.video.stream import frames_to_count_labels, frames_to_pixels


def _episode_stats(context: ExperimentContext,
                   config: DriftInspectorConfig,
                   warmup: int = 25, limit: int = 100
                   ) -> Tuple[List[Optional[int]], int]:
    """DI detection delays per drift episode plus the false-alarm count."""
    registry = context.registry()
    stream = context.stream
    delays: List[Optional[int]] = []
    false_alarms = 0
    for drift in context.dataset.drift_frames:
        start = max(0, drift - warmup)
        pre = stream[drift - 1].segment
        bundle = registry.get(pre)
        inspector = make_inspector(bundle, config=config)
        detected = None
        for i, frame in enumerate(stream[start: drift + limit]):
            if inspector.observe(frame.pixels).drift:
                detected = i - (drift - start)
                break
        if detected is not None and detected < 0:
            # pre-fired during warm-up: count once as a false alarm and do
            # not additionally score the episode as a miss
            false_alarms += 1
        else:
            delays.append(detected)
    return delays, false_alarms


def _summarise(delays: List[Optional[int]]) -> Tuple[float, int]:
    detected = [d for d in delays if d is not None]
    mean = float(np.mean(detected)) if detected else float("nan")
    return mean, len(delays) - len(detected)


def betting_ablation(context: ExperimentContext) -> ExperimentResult:
    """Betting aggressiveness (epsilon) and the two-sided transform."""
    result = ExperimentResult(
        experiment="ablation-betting",
        description=f"Betting function vs detection on {context.dataset.name}")
    variants = [
        ("power eps=0.05", {"betting_epsilon": 0.05}),
        ("power eps=0.1 (default)", {}),
        ("power eps=0.3", {"betting_epsilon": 0.3}),
        ("power eps=0.7", {"betting_epsilon": 0.7}),
        ("one-sided", {"two_sided": False}),
    ]
    for name, overrides in variants:
        config = DriftInspectorConfig(seed=context.config.seed, **overrides)
        delays, false_alarms = _episode_stats(context, config)
        mean, missed = _summarise(delays)
        result.add_row(variant=name, mean_delay=mean, missed=missed,
                       false_alarms=false_alarms)
    result.notes.append(
        "aggressive betting (small epsilon) reacts fastest; the one-sided "
        "variant misses drifts whose frames land 'too conformal'")
    return result


def sensitivity_ablation(context: ExperimentContext) -> ExperimentResult:
    """W / r / K sensitivity (paper: nominal dependency, Section 6.1)."""
    result = ExperimentResult(
        experiment="ablation-sensitivity",
        description=f"W / r / K sensitivity on {context.dataset.name}")
    grid = ([("W", {"window": w}) for w in (2, 3, 5, 10)]
            + [("r", {"significance": r}) for r in (0.2, 0.5, 0.8)]
            + [("K", {"k": k}) for k in (1, 5, 15)])
    for parameter, overrides in grid:
        config = DriftInspectorConfig(seed=context.config.seed, **overrides)
        delays, false_alarms = _episode_stats(context, config)
        mean, missed = _summarise(delays)
        value = next(iter(overrides.values()))
        result.add_row(parameter=parameter, value=value, mean_delay=mean,
                       missed=missed, false_alarms=false_alarms)
    result.notes.append(
        "paper Section 6.1: detection shows extremely low dependency on W "
        "and nominal dependency on K")
    return result


def embedding_ablation(context: ExperimentContext) -> ExperimentResult:
    """Latent-only vs augmented embeddings; inductive split vs LOO."""
    result = ExperimentResult(
        experiment="ablation-embedding",
        description=f"Embedding components on {context.dataset.name}")
    registry = context.registry()
    stream = context.stream

    def run_variant(name: str, recon: bool, profile: bool,
                    inductive: bool) -> None:
        delays: List[Optional[int]] = []
        false_alarms = 0
        for drift in context.dataset.drift_frames:
            warmup, limit = 25, 100
            start = max(0, drift - warmup)
            bundle = registry.get(stream[drift - 1].segment)
            vae = bundle.vae
            saved = (vae.config.augment_recon, vae.config.augment_profile)
            vae.config.augment_recon = recon
            vae.config.augment_profile = profile
            try:
                sigma = vae.sample_latents(
                    bundle.sigma.shape[0],
                    seed=derive(context.config.seed, 4242))
                config = DriftInspectorConfig(seed=context.config.seed,
                                              inductive_split=inductive)
                inspector = make_inspector(config=config, sigma=sigma,
                                           embedder=vae)
                detected = None
                for i, frame in enumerate(stream[start: drift + limit]):
                    if inspector.observe(frame.pixels).drift:
                        detected = i - (drift - start)
                        break
            finally:
                vae.config.augment_recon, vae.config.augment_profile = saved
            if detected is not None and detected < 0:
                false_alarms += 1
            else:
                delays.append(detected)
        mean, missed = _summarise(delays)
        result.add_row(variant=name, mean_delay=mean, missed=missed,
                       false_alarms=false_alarms)

    run_variant("latent only", recon=False, profile=False, inductive=True)
    run_variant("latent + recon", recon=True, profile=False, inductive=True)
    run_variant("latent + profile", recon=False, profile=True, inductive=True)
    run_variant("full (default)", recon=True, profile=True, inductive=True)
    run_variant("full, LOO scoring", recon=True, profile=True,
                inductive=False)
    result.notes.append(
        "the augmentations carry the geometric drift signal a small latent "
        "misses; LOO scoring (paper-literal) trades calibration for "
        "slightly sharper scores")
    return result


def ensemble_size_ablation(context: ExperimentContext,
                           sizes: Tuple[int, ...] = (2, 3, 5)
                           ) -> ExperimentResult:
    """MSBO selection correctness vs ensemble size L (paper: 3-10)."""
    result = ExperimentResult(
        experiment="ablation-ensemble",
        description=f"MSBO ensemble size on {context.dataset.name}")
    base = context.registry()
    stream = context.stream
    dataset = context.dataset
    for size in sizes:
        registry = ModelRegistry()
        for index, segment in enumerate(dataset.segment_names):
            source = base.get(segment)
            ensemble = DeepEnsemble(
                context.classifier_config(
                    derive(context.config.seed, 7000 + index),
                    epochs=context.config.ensemble_epochs),
                size=size, seed=derive(context.config.seed, 7100 + index))
            ensemble.fit(source.training_frames, source.training_labels)
            registry.add(ModelBundle(
                name=segment, sigma=source.sigma,
                reference_scores=source.reference_scores, vae=source.vae,
                model=source.model, ensemble=ensemble,
                training_frames=source.training_frames,
                training_labels=source.training_labels))
        correct = 0
        novel = 0
        for drift in dataset.drift_frames:
            window = stream[drift: drift + 10]
            pixels = frames_to_pixels(window)
            labels = frames_to_count_labels(window, dataset.num_count_classes,
                                            dataset.count_bucket_width)
            msbo = MSBO(registry, MSBOConfig(window_size=10,
                                             seed=context.config.seed))
            try:
                selected = msbo.select(pixels, labels)
                correct += int(selected == window[0].segment)
            except NovelDistribution:
                novel += 1
        result.add_row(ensemble_size=size,
                       correct_selections=correct,
                       novel_flags=novel,
                       drifts=len(dataset.drift_frames))
    result.notes.append(
        "larger ensembles sharpen the Brier separation; the paper uses "
        "L in [3, 10]")
    return result
