"""The spatial-constrained query (Section 6.3.2).

The paper's predicate is "a bus is on the left side of a car"; ground truth
comes from object positions (Mask R-CNN extracted them; our renderer knows
them).  The query is answered by a per-distribution
:class:`~repro.detectors.classifier_filters.SpatialFilter` (OD-CLF
substitute) or directly from a detector's positions.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.video.objects import BUS, CAR
from repro.video.stream import Frame


def bus_left_of_car(frame: Frame) -> bool:
    """True when some bus's centre lies left of some car's centre."""
    bus_xs = [obj.x for obj in frame.objects if obj.kind == BUS]
    car_xs = [obj.x for obj in frame.objects if obj.kind == CAR]
    if not bus_xs or not car_xs:
        return False
    return min(bus_xs) < max(car_xs)


class SpatialQuery:
    """Evaluates a binary spatial predicate against ground truth."""

    def __init__(self, predicate=bus_left_of_car) -> None:
        self.predicate = predicate

    def ground_truth(self, frames: Sequence[Frame]) -> np.ndarray:
        return np.asarray([int(self.predicate(f)) for f in frames],
                          dtype=np.int64)

    def accuracy(self, frames: Sequence[Frame],
                 predictions: np.ndarray) -> float:
        """A_q: fraction of frames where the filter matches the predicate."""
        preds = np.asarray(predictions, dtype=np.int64).reshape(-1)
        if preds.shape[0] != len(frames):
            raise ConfigurationError(
                f"{preds.shape[0]} predictions for {len(frames)} frames")
        if preds.shape[0] == 0:
            return 0.0
        return float((preds == self.ground_truth(frames)).mean())

    def accuracy_from_detections(self, frames: Sequence[Frame],
                                 results: List) -> float:
        """A_q for a detector: evaluate the predicate on detected positions."""
        if len(results) != len(frames):
            raise ConfigurationError(
                f"{len(results)} detection results for {len(frames)} frames")
        preds = []
        for result in results:
            bus_xs = [x for x, _ in result.positions(BUS)]
            car_xs = [x for x, _ in result.positions(CAR)]
            holds = bool(bus_xs and car_xs and min(bus_xs) < max(car_xs))
            preds.append(int(holds))
        return self.accuracy(frames, np.asarray(preds, dtype=np.int64))

    def per_sequence_accuracy(self, frames: Sequence[Frame],
                              predictions: np.ndarray) -> dict:
        """A_q broken down by segment name (the Figure 8 bars)."""
        preds = np.asarray(predictions, dtype=np.int64).reshape(-1)
        if preds.shape[0] != len(frames):
            raise ConfigurationError(
                f"{preds.shape[0]} predictions for {len(frames)} frames")
        truth = self.ground_truth(frames)
        buckets: dict = {}
        for frame, p, t in zip(frames, preds, truth):
            bucket = buckets.setdefault(frame.segment, [0, 0])
            bucket[0] += int(p == t)
            bucket[1] += 1
        return {name: c / n for name, (c, n) in buckets.items()}
