"""The query-accuracy metric A_q (Section 6.3).

``A_q`` is the fraction of frames where the system's prediction matches the
ground truth produced by the reference annotator.  This module provides the
generic reduction; :mod:`repro.queries.count` and
:mod:`repro.queries.spatial` provide query-specific ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def query_accuracy(predictions: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of positions where ``predictions == ground_truth``."""
    preds = np.asarray(predictions).reshape(-1)
    truth = np.asarray(ground_truth).reshape(-1)
    if preds.shape[0] != truth.shape[0]:
        raise ConfigurationError(
            f"predictions length {preds.shape[0]} != ground truth "
            f"{truth.shape[0]}")
    if preds.shape[0] == 0:
        return 0.0
    return float((preds == truth).mean())


def accuracy_by_key(predictions: np.ndarray, ground_truth: np.ndarray,
                    keys) -> dict:
    """A_q grouped by a parallel key sequence (e.g. segment names)."""
    preds = np.asarray(predictions).reshape(-1)
    truth = np.asarray(ground_truth).reshape(-1)
    keys = list(keys)
    if not (preds.shape[0] == truth.shape[0] == len(keys)):
        raise ConfigurationError(
            f"length mismatch: {preds.shape[0]} predictions, "
            f"{truth.shape[0]} truths, {len(keys)} keys")
    buckets: dict = {}
    for key, p, t in zip(keys, preds, truth):
        bucket = buckets.setdefault(key, [0, 0])
        bucket[0] += int(p == t)
        bucket[1] += 1
    return {key: c / n for key, (c, n) in buckets.items()}
