"""The count query: number of cars appearing in each frame (Section 6.3.1).

Ground truth comes from the renderer (Mask R-CNN's role in the paper); the
query is answered either by a per-distribution count classifier or by a
detector's detection count, and accuracy ``A_q`` is the fraction of frames
where the prediction matches ground truth exactly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.video.objects import CAR
from repro.video.stream import Frame


class CountQuery:
    """Evaluates car-count predictions against ground truth."""

    def __init__(self, num_classes: int = 10, bucket_width: int = 1) -> None:
        if num_classes < 2:
            raise ConfigurationError(
                f"num_classes must be >= 2, got {num_classes}")
        if bucket_width < 1:
            raise ConfigurationError(
                f"bucket_width must be >= 1, got {bucket_width}")
        self.num_classes = num_classes
        self.bucket_width = bucket_width

    def ground_truth(self, frames: Sequence[Frame]) -> np.ndarray:
        """Clipped car-count labels for the frames."""
        return np.asarray(
            [f.count_label(self.num_classes, self.bucket_width)
             for f in frames], dtype=np.int64)

    def accuracy(self, frames: Sequence[Frame],
                 predictions: np.ndarray) -> float:
        """A_q: fraction of frames with exact count match."""
        preds = np.asarray(predictions, dtype=np.int64).reshape(-1)
        if preds.shape[0] != len(frames):
            raise ConfigurationError(
                f"{preds.shape[0]} predictions for {len(frames)} frames")
        if preds.shape[0] == 0:
            return 0.0
        truth = self.ground_truth(frames)
        return float((preds == truth).mean())

    def accuracy_from_detections(self, frames: Sequence[Frame],
                                 results: List) -> float:
        """A_q for a detector: compare clipped detected car counts."""
        if len(results) != len(frames):
            raise ConfigurationError(
                f"{len(results)} detection results for {len(frames)} frames")
        preds = np.asarray(
            [min(r.count(CAR) // self.bucket_width, self.num_classes - 1)
             for r in results], dtype=np.int64)
        return self.accuracy(frames, preds)

    def per_sequence_accuracy(self, frames: Sequence[Frame],
                              predictions: np.ndarray) -> dict:
        """A_q broken down by segment name (the Figure 7 bars)."""
        preds = np.asarray(predictions, dtype=np.int64).reshape(-1)
        if preds.shape[0] != len(frames):
            raise ConfigurationError(
                f"{preds.shape[0]} predictions for {len(frames)} frames")
        truth = self.ground_truth(frames)
        buckets: dict = {}
        for frame, p, t in zip(frames, preds, truth):
            bucket = buckets.setdefault(frame.segment, [0, 0])
            bucket[0] += int(p == t)
            bucket[1] += 1
        return {name: c / n for name, (c, n) in buckets.items()}
