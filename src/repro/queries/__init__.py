"""Video queries (paper Section 6.3).

- :mod:`repro.queries.count` -- the count query ("number of cars per frame").
- :mod:`repro.queries.spatial` -- the spatial-constrained query
  ("a bus is on the left side of a car").
- :mod:`repro.queries.accuracy` -- the query-accuracy metric A_q.
- :mod:`repro.queries.predicates` -- composable frame predicates (activity
  querying, the paper's future-work direction).
"""

from repro.queries.accuracy import query_accuracy
from repro.queries.count import CountQuery
from repro.queries.predicates import (
    Above,
    And,
    InRegion,
    LeftOf,
    MinCount,
    Near,
    Not,
    Or,
    Predicate,
)
from repro.queries.spatial import SpatialQuery, bus_left_of_car

__all__ = [
    "CountQuery",
    "SpatialQuery",
    "bus_left_of_car",
    "query_accuracy",
    "Predicate",
    "MinCount",
    "LeftOf",
    "Above",
    "Near",
    "InRegion",
    "And",
    "Or",
    "Not",
]
