"""Composable frame predicates (toward the paper's activity-query future work).

The paper's spatial query is a single hard-coded relation ("a bus is on the
left side of a car"); its conclusions name richer object-interaction
querying as future work.  This module provides a small combinator algebra
over frame ground truth so arbitrary spatial/count predicates can be
declared, evaluated against oracle ground truth, and handed to
:class:`~repro.detectors.classifier_filters.SpatialFilter` for learned
pixel-level evaluation:

    query = And(MinCount("car", 3), LeftOf("bus", "car"))
    labels = [query(frame) for frame in frames]
    filt = SpatialFilter(query, config=...)   # predicates are callables

Every predicate is a callable ``Frame -> bool`` with a readable ``name``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from repro.errors import ConfigurationError
from repro.video.objects import KINDS
from repro.video.stream import Frame


class Predicate:
    """Base class: a named boolean function of a frame."""

    name: str = "predicate"

    def evaluate(self, frame: Frame) -> bool:
        raise NotImplementedError

    def __call__(self, frame: Frame) -> bool:
        return self.evaluate(frame)

    # combinators -------------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:
        return self.name

    def selectivity(self, frames: Sequence[Frame]) -> float:
        """Fraction of frames satisfying the predicate."""
        if not frames:
            return 0.0
        return sum(1 for f in frames if self.evaluate(f)) / len(frames)


def _check_kind(kind: str) -> str:
    if kind not in KINDS:
        raise ConfigurationError(f"kind must be one of {KINDS}, got {kind!r}")
    return kind


class MinCount(Predicate):
    """At least ``n`` objects of ``kind`` appear in the frame."""

    def __init__(self, kind: str, n: int) -> None:
        _check_kind(kind)
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.kind = kind
        self.n = n
        self.name = f"count({kind}) >= {n}"

    def evaluate(self, frame: Frame) -> bool:
        return sum(1 for o in frame.objects if o.kind == self.kind) >= self.n


class LeftOf(Predicate):
    """Some ``kind_a`` object's centre lies left of some ``kind_b``'s."""

    def __init__(self, kind_a: str, kind_b: str) -> None:
        _check_kind(kind_a)
        _check_kind(kind_b)
        self.kind_a = kind_a
        self.kind_b = kind_b
        self.name = f"{kind_a} left-of {kind_b}"

    def evaluate(self, frame: Frame) -> bool:
        xs_a = [o.x for o in frame.objects if o.kind == self.kind_a]
        xs_b = [o.x for o in frame.objects if o.kind == self.kind_b]
        return bool(xs_a and xs_b and min(xs_a) < max(xs_b))


class Above(Predicate):
    """Some ``kind_a`` object's centre lies above some ``kind_b``'s."""

    def __init__(self, kind_a: str, kind_b: str) -> None:
        _check_kind(kind_a)
        _check_kind(kind_b)
        self.kind_a = kind_a
        self.kind_b = kind_b
        self.name = f"{kind_a} above {kind_b}"

    def evaluate(self, frame: Frame) -> bool:
        ys_a = [o.y for o in frame.objects if o.kind == self.kind_a]
        ys_b = [o.y for o in frame.objects if o.kind == self.kind_b]
        return bool(ys_a and ys_b and min(ys_a) < max(ys_b))


class Near(Predicate):
    """Some ``kind_a`` / ``kind_b`` pair lies within ``radius`` (normalised
    Euclidean distance between centres)."""

    def __init__(self, kind_a: str, kind_b: str, radius: float = 0.15) -> None:
        _check_kind(kind_a)
        _check_kind(kind_b)
        if radius <= 0:
            raise ConfigurationError(f"radius must be positive, got {radius}")
        self.kind_a = kind_a
        self.kind_b = kind_b
        self.radius = radius
        self.name = f"{kind_a} within {radius:g} of {kind_b}"

    def evaluate(self, frame: Frame) -> bool:
        a_objs = [o for o in frame.objects if o.kind == self.kind_a]
        b_objs = [o for o in frame.objects if o.kind == self.kind_b]
        for a in a_objs:
            for b in b_objs:
                if a is b:
                    continue
                if ((a.x - b.x) ** 2 + (a.y - b.y) ** 2) ** 0.5 <= self.radius:
                    return True
        return False


class InRegion(Predicate):
    """Some ``kind`` object's centre lies inside a normalised box."""

    def __init__(self, kind: str, x0: float, y0: float, x1: float,
                 y1: float) -> None:
        _check_kind(kind)
        if not (x0 < x1 and y0 < y1):
            raise ConfigurationError(
                f"box must satisfy x0 < x1 and y0 < y1, got "
                f"({x0}, {y0}, {x1}, {y1})")
        self.kind = kind
        self.box = (x0, y0, x1, y1)
        self.name = f"{kind} in [{x0:g},{x1:g}]x[{y0:g},{y1:g}]"

    def evaluate(self, frame: Frame) -> bool:
        x0, y0, x1, y1 = self.box
        return any(x0 <= o.x <= x1 and y0 <= o.y <= y1
                   for o in frame.objects if o.kind == self.kind)


class And(Predicate):
    """All sub-predicates hold."""

    def __init__(self, *predicates: Predicate) -> None:
        if len(predicates) < 2:
            raise ConfigurationError("And needs at least two predicates")
        self.predicates = predicates
        self.name = "(" + " and ".join(p.name for p in predicates) + ")"

    def evaluate(self, frame: Frame) -> bool:
        return all(p.evaluate(frame) for p in self.predicates)


class Or(Predicate):
    """Any sub-predicate holds."""

    def __init__(self, *predicates: Predicate) -> None:
        if len(predicates) < 2:
            raise ConfigurationError("Or needs at least two predicates")
        self.predicates = predicates
        self.name = "(" + " or ".join(p.name for p in predicates) + ")"

    def evaluate(self, frame: Frame) -> bool:
        return any(p.evaluate(frame) for p in self.predicates)


class Not(Predicate):
    """The sub-predicate does not hold."""

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate
        self.name = f"not {predicate.name}"

    def evaluate(self, frame: Frame) -> bool:
        return not self.predicate.evaluate(frame)


def ground_truth(predicate: Callable[[Frame], bool],
                 frames: Iterable[Frame]) -> List[int]:
    """Binary labels of ``predicate`` over ``frames`` (annotator helper)."""
    return [int(bool(predicate(frame))) for frame in frames]
