"""Track-based queries (MIRIS/OTIF-style workloads the paper's intro cites).

Frame queries ask "how many cars are visible *now*"; track queries ask
"how many *distinct* cars passed" or "did any object cross a region".
These consume :class:`~repro.video.tracking.Track` objects from any
detector + tracker combination, so drift-induced recall loss shows up as
track fragmentation (one physical car becoming several short tracks).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.video.tracking import Track


class TrackQuery:
    """Aggregate queries over a set of tracks."""

    def __init__(self, min_length: int = 2) -> None:
        if min_length < 1:
            raise ConfigurationError(
                f"min_length must be >= 1, got {min_length}")
        self.min_length = min_length

    def _filtered(self, tracks: Sequence[Track],
                  kind: Optional[str] = None) -> List[Track]:
        return [t for t in tracks
                if t.length >= self.min_length
                and (kind is None or t.kind == kind)]

    def distinct_count(self, tracks: Sequence[Track],
                       kind: Optional[str] = None) -> int:
        """Number of distinct objects (tracks) observed."""
        return len(self._filtered(tracks, kind))

    def crossings(self, tracks: Sequence[Track], x_line: float,
                  kind: Optional[str] = None) -> int:
        """Tracks whose trajectory crosses the vertical line ``x = x_line``."""
        if not 0.0 <= x_line <= 1.0:
            raise ConfigurationError(
                f"x_line must be in [0, 1], got {x_line}")
        count = 0
        for track in self._filtered(tracks, kind):
            xs = [p.x for p in track.points]
            if min(xs) < x_line <= max(xs):
                count += 1
        return count

    def dwell_times(self, tracks: Sequence[Track],
                    kind: Optional[str] = None) -> List[int]:
        """Frames each distinct object stayed in view."""
        return [t.end - t.start + 1 for t in self._filtered(tracks, kind)]

    def busiest_interval(self, tracks: Sequence[Track], window: int,
                         kind: Optional[str] = None
                         ) -> Tuple[int, int]:
        """``(start_frame, active_tracks)`` of the window with the most
        simultaneously active tracks."""
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        filtered = self._filtered(tracks, kind)
        if not filtered:
            return (0, 0)
        horizon = max(t.end for t in filtered) + 1
        best_start, best_count = 0, -1
        for start in range(0, max(horizon - window + 1, 1)):
            end = start + window - 1
            active = sum(1 for t in filtered
                         if t.start <= end and t.end >= start)
            if active > best_count:
                best_start, best_count = start, active
        return (best_start, best_count)

    def fragmentation(self, observed: Sequence[Track],
                      ground_truth: Sequence[Track],
                      kind: Optional[str] = None) -> float:
        """Ratio of observed to true distinct counts (1.0 = perfect;
        > 1 means recall loss fragmented tracks, < 1 means merges/misses)."""
        true_count = self.distinct_count(ground_truth, kind)
        if true_count == 0:
            return 0.0
        return self.distinct_count(observed, kind) / true_count
