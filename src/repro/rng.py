"""Seeded random-number helpers.

Every stochastic component in the library accepts either an integer seed, an
already-constructed :class:`numpy.random.Generator`, or ``None`` (fresh
entropy).  Centralising the coercion here keeps experiments reproducible and
avoids the global ``numpy.random`` state entirely.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged so components can share a
    stream; passing an ``int`` (or ``None``) builds a fresh generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so a single experiment seed
    fans out deterministically into per-component generators.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive(seed: SeedLike, salt: int) -> np.random.Generator:
    """Build a generator deterministically derived from ``seed`` and ``salt``.

    Unlike :func:`spawn` this does not consume state from a parent generator,
    which makes it safe to call in any order.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    elif seed is None:
        base = int(np.random.default_rng().integers(0, 2**31 - 1))
    else:
        base = int(seed)
    return np.random.default_rng(np.random.SeedSequence([base, int(salt)]))


def stable_hash(text: str) -> int:
    """Process-independent hash of a string (CRC32).

    Python's built-in ``hash`` is randomized per process (PYTHONHASHSEED),
    which silently breaks seed derivations that include names.
    """
    return zlib.crc32(text.encode("utf-8"))
