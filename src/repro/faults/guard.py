"""Graceful-degradation primitives: frame validation, retries, breaker.

- :class:`FrameGuard` -- admits every frame into the pipeline, checking
  dtype coercibility, shape consistency and finiteness, with a configurable
  policy: ``raise`` (fail fast), ``skip`` (quarantine the frame and move
  on) or ``repair`` (impute bad pixels from the last good frame).
- :class:`RetryPolicy` -- bounded retry with simulated-clock exponential
  backoff around selector / trainer calls.
- :class:`CircuitBreaker` -- counts consecutive resolution failures and,
  once tripped, short-circuits selection to the nearest provisioned model
  until a success closes it again.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, FrameValidationError
from repro.sim.clock import SimulatedClock

GUARD_POLICIES = ("raise", "skip", "repair")

#: Guard verdicts.
OK = "ok"
REPAIRED = "repaired"
QUARANTINED = "quarantined"
#: Observer-only verdict: the frame failed under the ``raise`` policy and
#: a :class:`~repro.errors.FrameValidationError` is about to propagate.
REJECTED = "rejected"


@dataclass
class GuardReport:
    """Outcome of admitting one frame.

    ``pixels`` is the array to process (``None`` when quarantined);
    ``reason`` names the defect for repaired / quarantined frames.
    """

    status: str
    pixels: Optional[np.ndarray] = None
    reason: Optional[str] = None


class FrameGuard:
    """Validates frames at the pipeline boundary.

    The expected shape is either given or learned from the first valid
    frame; dtype must be float-coercible.  Repair imputes non-finite pixels
    from the last good frame (element-wise), and substitutes the last good
    frame outright for shape / dtype defects; with no good frame seen yet,
    repair degrades to quarantine.

    ``observer`` (when set) is called as ``observer(status, index, reason)``
    for every frame the guard *intervenes* on -- repaired, quarantined, or
    rejected under the ``raise`` policy just before the error propagates.
    Clean admissions stay silent: interventions are the logical events, and
    firing per clean frame would make the batched fast path (which admits
    whole clean chunks at once) emit a different stream than the scalar
    path.  Observers must be passive; the guard ignores their return value.
    """

    def __init__(self, policy: str = "raise",
                 expected_shape: Optional[Tuple[int, ...]] = None,
                 quarantine_capacity: int = 16,
                 observer: Optional[Callable[[str, int, Optional[str]],
                                             None]] = None) -> None:
        if policy not in GUARD_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {GUARD_POLICIES}, got {policy!r}")
        if quarantine_capacity < 0:
            raise ConfigurationError(
                f"quarantine_capacity must be non-negative, "
                f"got {quarantine_capacity}")
        self.policy = policy
        self.observer = observer
        self.expected_shape = (tuple(expected_shape)
                               if expected_shape is not None else None)
        self._learned_shape = expected_shape is not None
        self.last_good: Optional[np.ndarray] = None
        # bounded keep of recent quarantined frames for post-mortems
        self.quarantine: Deque[Tuple[int, str]] = deque(
            maxlen=quarantine_capacity)
        self.reasons: Dict[str, int] = {}
        self._admitted = 0

    # ------------------------------------------------------------------
    def _defect_of(self, item: object) -> Tuple[Optional[np.ndarray], Optional[str]]:
        """Coerce ``item`` to float pixels; returns ``(pixels, defect)``."""
        raw = getattr(item, "pixels", item)
        try:
            pixels = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError):
            return None, "dtype"
        if self.expected_shape is None:
            # learn the stream's geometry from the first coercible frame
            # (only if it is also finite -- a corrupt first frame must not
            # poison the contract)
            if np.isfinite(pixels).all():
                self.expected_shape = pixels.shape
            elif self.policy != "raise":
                return pixels, "nonfinite"
        if (self.expected_shape is not None
                and pixels.shape != self.expected_shape):
            return pixels, "shape"
        if not np.isfinite(pixels).all():
            return pixels, "nonfinite"
        return pixels, None

    def admit(self, item: object) -> GuardReport:
        """Validate one frame under the configured policy."""
        index = self._admitted
        self._admitted += 1
        pixels, defect = self._defect_of(item)
        if defect is None:
            self.last_good = pixels
            return GuardReport(OK, pixels)
        self.reasons[defect] = self.reasons.get(defect, 0) + 1
        if self.policy == "raise":
            self._notify(REJECTED, index, defect)
            raise FrameValidationError(
                f"frame {index} failed validation: {defect}"
                + (f" (expected shape {self.expected_shape}, "
                   f"got {pixels.shape})" if defect == "shape" else ""))
        if self.policy == "repair" and self.last_good is not None:
            if defect == "nonfinite" and pixels.shape == self.last_good.shape:
                repaired = np.where(np.isfinite(pixels), pixels,
                                    self.last_good)
            else:
                repaired = self.last_good.copy()
            self._notify(REPAIRED, index, defect)
            return GuardReport(REPAIRED, repaired, defect)
        self.quarantine.append((index, defect))
        self._notify(QUARANTINED, index, defect)
        return GuardReport(QUARANTINED, None, defect)

    def _notify(self, status: str, index: int,
                reason: Optional[str]) -> None:
        if self.observer is not None:
            self.observer(status, index, reason)

    def admit_batch(self, items: object) -> Optional[np.ndarray]:
        """Vectorized admission for a chunk of uniformly clean frames.

        Returns the ``(B, *expected_shape)`` float64 pixel stack when every
        frame in ``items`` passes validation, advancing ``_admitted`` and
        ``last_good`` exactly as ``B`` sequential :meth:`admit` calls would.
        Returns ``None`` -- with **no** state mutated -- when the shape is
        still unlearned or any frame needs the scalar path (bad dtype,
        shape mismatch, non-finite pixels), so the caller can fall back to
        per-frame :meth:`admit` and reproduce its accounting and policy
        behaviour bit for bit.
        """
        if self.expected_shape is None:
            return None
        try:
            stack = np.asarray(
                [getattr(item, "pixels", item) for item in items],
                dtype=np.float64)
        except (TypeError, ValueError):
            return None
        if (stack.shape[1:] != self.expected_shape
                or not np.isfinite(stack).all()):
            return None
        self._admitted += stack.shape[0]
        self.last_good = stack[-1]
        return stack

    def reset(self) -> None:
        """Forget session state (shape stays if it was given explicitly)."""
        if not self._learned_shape:
            self.expected_shape = None
        self.last_good = None
        self.quarantine.clear()
        self.reasons = {}
        self._admitted = 0


@dataclass
class RetryPolicy:
    """Bounded retry with exponential simulated-clock backoff.

    ``max_retries`` counts *re*-attempts after the first try; backoff
    charges ``backoff_ms * factor**attempt`` against the clock's
    ``"retry_backoff"`` ledger entry between attempts.
    """

    max_retries: int = 2
    backoff_ms: float = 50.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative: {self.max_retries}")
        if self.backoff_ms < 0:
            raise ConfigurationError(
                f"backoff_ms must be non-negative: {self.backoff_ms}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")

    def run(self, fn: Callable[[], object],
            clock: Optional[SimulatedClock] = None,
            retryable: Tuple[type, ...] = (Exception,),
            non_retryable: Tuple[type, ...] = (),
            on_retry: Optional[Callable[[int, BaseException], None]] = None):
        """Call ``fn`` with up to ``max_retries`` retries.

        Exceptions matching ``non_retryable`` -- control-flow signals like
        ``NovelDistribution`` -- propagate immediately, as does anything
        outside ``retryable``; the last retryable error propagates once
        attempts are exhausted.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retryable as error:
                if isinstance(error, non_retryable):
                    raise
                if attempt >= self.max_retries:
                    raise
                if clock is not None:
                    clock.charge_ms(
                        "retry_backoff",
                        self.backoff_ms * self.backoff_factor ** attempt)
                if on_retry is not None:
                    on_retry(attempt, error)
                attempt += 1


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker for the selection / training path.

    After ``threshold`` consecutive failures the breaker opens: the pipeline
    stops attempting selection and pins the nearest provisioned model until
    a recorded success closes the circuit.  ``trips`` counts open events.

    ``on_trip`` / ``on_close`` (when set) observe the state *transitions*:
    ``on_trip(breaker)`` fires exactly when the circuit opens and
    ``on_close(breaker)`` exactly when a success closes an open circuit --
    not on every failure or success -- so an observer sees the same
    transition stream however the failures were batched.  Callbacks must be
    passive; return values are ignored.
    """

    threshold: int = 3
    failures: int = 0
    trips: int = 0
    is_open: bool = field(default=False)
    on_trip: Optional[Callable[["CircuitBreaker"], None]] = field(
        default=None, repr=False, compare=False)
    on_close: Optional[Callable[["CircuitBreaker"], None]] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive: {self.threshold}")

    def record_failure(self) -> None:
        self.failures += 1
        if not self.is_open and self.failures >= self.threshold:
            self.is_open = True
            self.trips += 1
            if self.on_trip is not None:
                self.on_trip(self)

    def record_success(self) -> None:
        was_open = self.is_open
        self.failures = 0
        self.is_open = False
        if was_open and self.on_close is not None:
            self.on_close(self)

    def reset(self) -> None:
        """Zero all counters (new session)."""
        self.failures = 0
        self.trips = 0
        self.is_open = False
