"""Deterministic fault schedules for chaos testing.

A :class:`FaultSchedule` decides, per *source* frame index, whether a fault
fires and which kind.  Decisions are derived from ``(seed, index)`` alone --
not from a shared generator stream -- so the schedule is stable under
re-iteration, partial consumption and out-of-order queries, and two runs
over the same stream see byte-identical faults.

The schedule also owns the ground-truth :class:`FaultEvent` log filled in by
:class:`~repro.faults.injectors.FaultInjector`, which chaos tests assert
against (e.g. "the pipeline's quarantine count equals the number of NaN
events the injector actually emitted").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, derive

#: Every fault kind an injector understands.
FAULT_KINDS = ("drop", "duplicate", "reorder", "nan", "inf", "saltpepper",
               "black", "shape", "stall")

#: Kinds that corrupt pixel content (versus stream structure / timing).
PIXEL_KINDS = ("nan", "inf", "saltpepper", "black")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded as ground truth.

    ``index`` is the *source* stream position the fault applied to (before
    drops/duplicates shift downstream indices).
    """

    index: int
    kind: str
    detail: Dict[str, float] = field(default_factory=dict)


class FaultSchedule:
    """Seeded per-frame fault plan.

    Parameters
    ----------
    rate:
        Probability that any given source frame is faulted, in ``[0, 1]``.
    kinds:
        Fault kinds to draw from (subset of :data:`FAULT_KINDS`).
    weights:
        Optional relative weights aligned with ``kinds``; uniform when
        omitted.
    seed:
        Any :data:`~repro.rng.SeedLike`; ``None`` draws a fresh base seed
        once, so a single schedule instance is still self-consistent.
    pixel_fraction:
        Fraction of pixels corrupted by ``nan`` / ``inf`` / ``saltpepper``.
    stall_ms:
        Simulated milliseconds charged per ``stall`` fault.
    """

    def __init__(self, rate: float = 0.05,
                 kinds: Sequence[str] = FAULT_KINDS,
                 weights: Optional[Sequence[float]] = None,
                 seed: SeedLike = None,
                 pixel_fraction: float = 0.02,
                 stall_ms: float = 50.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        kinds = tuple(kinds)
        if not kinds:
            raise ConfigurationError("schedule needs at least one fault kind")
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ConfigurationError(
                f"unknown fault kinds {unknown}; known: {list(FAULT_KINDS)}")
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != len(kinds):
                raise ConfigurationError(
                    f"{len(weights)} weights for {len(kinds)} kinds")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ConfigurationError(
                    f"weights must be non-negative with positive sum: "
                    f"{weights}")
        if not 0.0 < pixel_fraction <= 1.0:
            raise ConfigurationError(
                f"pixel_fraction must be in (0, 1], got {pixel_fraction}")
        if stall_ms < 0:
            raise ConfigurationError(
                f"stall_ms must be non-negative, got {stall_ms}")
        self.rate = float(rate)
        self.kinds = kinds
        self.pixel_fraction = float(pixel_fraction)
        self.stall_ms = float(stall_ms)
        if weights is None:
            self._probabilities = np.full(len(kinds), 1.0 / len(kinds))
        else:
            self._probabilities = np.asarray(weights) / sum(weights)
        # pin a concrete base seed so a seed=None schedule still gives the
        # same answer every time the same index is queried
        if isinstance(seed, np.random.Generator):
            self._base = int(seed.integers(0, 2**31 - 1))
        elif seed is None:
            self._base = int(np.random.default_rng().integers(0, 2**31 - 1))
        else:
            self._base = int(seed)
        self.log: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def rng_for(self, index: int) -> np.random.Generator:
        """Generator derived from ``(seed, index)``; used both for the
        fire/kind decision and for the fault's own randomness (which pixels,
        which corruption values)."""
        return derive(self._base, index)

    def draw(self, index: int) -> Optional[str]:
        """The fault kind scheduled for source frame ``index`` (or ``None``).

        Pure function of ``(seed, index)`` -- calling it twice, or never,
        changes nothing.
        """
        rng = self.rng_for(index)
        if rng.uniform() >= self.rate:
            return None
        return str(rng.choice(np.asarray(self.kinds, dtype=object),
                              p=self._probabilities))

    # ------------------------------------------------------------------
    def record(self, event: FaultEvent) -> None:
        """Append one ground-truth event (called by the injector)."""
        self.log.append(event)

    def events(self, kind: Optional[str] = None) -> List[FaultEvent]:
        """Recorded events, optionally filtered by kind."""
        if kind is None:
            return list(self.log)
        return [e for e in self.log if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Recorded events per kind."""
        out: Dict[str, int] = {}
        for event in self.log:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        """Drop the recorded log (the plan itself is stateless)."""
        self.log = []
