"""Fault injectors: wrap any frame iterable in scheduled stream faults.

``FaultInjector.wrap(stream)`` yields the stream with the faults its
:class:`~repro.faults.schedule.FaultSchedule` planned -- dropped, duplicated
and swapped frames, pixel corruption (NaN/Inf, salt-and-pepper, black
frames), shape mangling, and clock-charged stalls -- while recording every
injected fault in the schedule's ground-truth log.

Items may be raw pixel arrays or objects with a ``pixels`` attribute (e.g.
:class:`~repro.video.stream.Frame`); corrupted copies preserve the carrier
object (and its ground truth) whenever it is a dataclass.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.clock import SimulatedClock
from repro.video.frames import pixels_of as _pixels_of
from repro.video.frames import with_pixels as _with_pixels


def corrupt_nan(pixels: np.ndarray, rng: np.random.Generator,
                fraction: float) -> np.ndarray:
    """Set a random ``fraction`` of pixels (at least one) to NaN."""
    out = np.array(pixels, dtype=np.float64, copy=True)
    flat = out.reshape(-1)
    count = max(1, int(round(fraction * flat.size)))
    flat[rng.choice(flat.size, size=count, replace=False)] = np.nan
    return out


def corrupt_inf(pixels: np.ndarray, rng: np.random.Generator,
                fraction: float) -> np.ndarray:
    """Set a random ``fraction`` of pixels (at least one) to +/-Inf."""
    out = np.array(pixels, dtype=np.float64, copy=True)
    flat = out.reshape(-1)
    count = max(1, int(round(fraction * flat.size)))
    idx = rng.choice(flat.size, size=count, replace=False)
    flat[idx] = np.where(rng.uniform(size=count) < 0.5, np.inf, -np.inf)
    return out


def corrupt_saltpepper(pixels: np.ndarray, rng: np.random.Generator,
                       fraction: float) -> np.ndarray:
    """Slam a random ``fraction`` of pixels to the frame's min/max (dead and
    hot pixels).  Stays finite, so it tests the *detector's* robustness
    rather than the guard."""
    out = np.array(pixels, dtype=np.float64, copy=True)
    flat = out.reshape(-1)
    count = max(1, int(round(fraction * flat.size)))
    idx = rng.choice(flat.size, size=count, replace=False)
    low, high = float(np.min(flat)), float(np.max(flat))
    flat[idx] = np.where(rng.uniform(size=count) < 0.5, low, high)
    return out


def corrupt_black(pixels: np.ndarray) -> np.ndarray:
    """An all-zero frame (camera blackout)."""
    return np.zeros_like(np.asarray(pixels, dtype=np.float64))


def mangle_shape(pixels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Return the frame with a wrong shape: a flattened copy (lost its
    geometry) or a cropped one (decoder handed back a partial frame)."""
    arr = np.array(pixels, dtype=np.float64, copy=True)
    flat = arr.reshape(-1)
    if arr.ndim > 1 and rng.uniform() < 0.5:
        return flat
    if flat.shape[0] > 1:
        return arr[:-1]
    return np.concatenate([flat, flat])


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a frame iterable.

    Parameters
    ----------
    schedule:
        The seeded plan; its ``log`` fills with ground-truth
        :class:`FaultEvent` records as frames pass through.
    clock:
        Optional simulated clock; ``stall`` faults charge
        ``schedule.stall_ms`` under the ``"fault_stall"`` ledger entry.
    """

    def __init__(self, schedule: FaultSchedule,
                 clock: Optional[SimulatedClock] = None) -> None:
        self.schedule = schedule
        self.clock = clock

    @property
    def log(self) -> List[FaultEvent]:
        return self.schedule.log

    # ------------------------------------------------------------------
    def _corrupted(self, item: object, kind: str, index: int) -> object:
        rng = self.schedule.rng_for(index)
        rng.uniform()  # skip the fire/kind draws consumed by draw()
        pixels = _pixels_of(item)
        fraction = self.schedule.pixel_fraction
        if kind == "nan":
            return _with_pixels(item, corrupt_nan(pixels, rng, fraction))
        if kind == "inf":
            return _with_pixels(item, corrupt_inf(pixels, rng, fraction))
        if kind == "saltpepper":
            return _with_pixels(item,
                                corrupt_saltpepper(pixels, rng, fraction))
        if kind == "black":
            return _with_pixels(item, corrupt_black(pixels))
        if kind == "shape":
            # a mis-shaped array cannot ride inside a Frame dataclass's
            # contract; it is yielded bare, as a broken decoder would
            return mangle_shape(pixels, rng)
        raise AssertionError(f"not a pixel fault: {kind}")

    def wrap(self, stream: Iterable[object]) -> Iterator[object]:
        """Yield ``stream`` with scheduled faults applied and logged."""
        held: Optional[object] = None  # frame awaiting its reorder swap
        for index, item in enumerate(stream):
            kind = self.schedule.draw(index)
            out: List[object] = []
            if kind is None:
                out.append(item)
            elif kind == "drop":
                self.schedule.record(FaultEvent(index, "drop"))
            elif kind == "duplicate":
                self.schedule.record(FaultEvent(index, "duplicate"))
                out.extend([item, item])
            elif kind == "reorder":
                if held is None:
                    # hold this frame; it re-emerges after the next one
                    self.schedule.record(FaultEvent(index, "reorder"))
                    held = item
                else:
                    # already holding one: pass through to keep bounded lag
                    out.append(item)
            elif kind == "stall":
                ms = self.schedule.stall_ms
                if self.clock is not None:
                    self.clock.charge_ms("fault_stall", ms)
                self.schedule.record(
                    FaultEvent(index, "stall", {"ms": ms}))
                out.append(item)
            else:  # pixel corruption
                self.schedule.record(FaultEvent(
                    index, kind,
                    {"fraction": self.schedule.pixel_fraction}))
                out.append(self._corrupted(item, kind, index))
            for emitted in out:
                yield emitted
                if held is not None and emitted is not held:
                    yield held
                    held = None
        if held is not None:  # stream ended while a frame was held
            yield held
