"""Fault injection and graceful-degradation toolkit.

Chaos-testing side: :class:`FaultSchedule` plans seeded, deterministic
faults per source frame and :class:`FaultInjector` applies them to any
frame iterable while logging ground truth.  Degradation side:
:class:`FrameGuard`, :class:`RetryPolicy` and :class:`CircuitBreaker` are
the primitives :class:`~repro.core.pipeline.DriftAwareAnalytics` uses to
survive those faults.
"""

from repro.faults.guard import (
    GUARD_POLICIES,
    CircuitBreaker,
    FrameGuard,
    GuardReport,
    RetryPolicy,
)
from repro.faults.injectors import FaultInjector
from repro.faults.schedule import (
    FAULT_KINDS,
    PIXEL_KINDS,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "FAULT_KINDS",
    "PIXEL_KINDS",
    "GUARD_POLICIES",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FrameGuard",
    "GuardReport",
    "RetryPolicy",
]
