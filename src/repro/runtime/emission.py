"""Emission stage: records, detections, and invocation accounting.

:class:`EmissionStage` owns everything the session produces -- the
per-frame :class:`FrameRecord` stream, the :class:`DetectionEvent` log, the
:class:`~repro.sim.metrics.InvocationCounter` ledger, and the emission-side
observability (frame / detection counters, selection-window histogram).
The stage charges the simulated clock for classifier inference, in scalar
(:meth:`emit`) and vectorized (:meth:`emit_batch`) forms that advance all
ledgers bit-identically.

The result dataclasses live here (re-exported from
:mod:`repro.core.pipeline` for compatibility) because they are the
emission contract every execution substrate shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sim.metrics import FaultStats, InvocationCounter

#: Fixed buckets for the per-detection selection-window-size histogram.
_SELECTION_FRAMES_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class DetectionEvent:
    """One drift detection + recovery episode."""

    frame_index: int
    previous_model: str
    selected_model: str
    novel: bool
    selection_frames: int


@dataclass
class FrameRecord:
    """Per-frame processing outcome."""

    frame_index: int
    prediction: int
    model: str


@dataclass
class PipelineResult:
    """Aggregated output of one pipeline run.

    ``faults`` carries the session's degradation accounting: guard verdicts
    (repaired / quarantined frames), retries, and circuit-breaker activity.
    ``telemetry`` is the attached recorder's snapshot (the schema-validated
    ``summary`` plus the retained event stream) -- ``None`` when the
    pipeline ran with the default no-op recorder.
    """

    records: List[FrameRecord]
    detections: List[DetectionEvent]
    invocations: InvocationCounter
    simulated_ms: float
    faults: FaultStats = field(default_factory=FaultStats)
    telemetry: Optional[dict] = None

    @property
    def predictions(self) -> np.ndarray:
        return np.asarray([r.prediction for r in self.records], dtype=np.int64)

    @property
    def models_used(self) -> List[str]:
        return [r.model for r in self.records]


class EmissionStage:
    """Sink for admitted frames processed under the deployed model."""

    def __init__(self, clock, recorder) -> None:
        self.clock = clock
        self.obs = recorder
        self._c_emitted = recorder.counter("pipeline.frames_emitted")
        self._c_detections = recorder.counter("pipeline.detections")
        self._h_selection_frames = recorder.histogram(
            "pipeline.selection_frames", _SELECTION_FRAMES_BUCKETS)
        self.reset()

    def reset(self) -> None:
        """Start a fresh session's ledgers."""
        self.records: List[FrameRecord] = []
        self.detections: List[DetectionEvent] = []
        self.invocations = InvocationCounter()
        self.index = 0

    # ------------------------------------------------------------------
    def emit(self, bundle, pixels: np.ndarray) -> FrameRecord:
        """Predict one frame under ``bundle`` and record the outcome."""
        self.clock.charge("classifier_infer")
        prediction = int(bundle.model.predict(pixels[None, ...])[0])
        record = FrameRecord(self.index, prediction, bundle.name)
        self.records.append(record)
        self.invocations.record([bundle.name])
        self._c_emitted.inc()
        self.index += 1
        return record

    def emit_batch(self, bundle, pixels: np.ndarray) -> List[FrameRecord]:
        """Emit a ``(B, ...)`` stack of admitted monitor frames.

        One batched classifier call replaces ``B`` per-frame predicts; the
        clock, record list, and invocation ledger advance exactly as ``B``
        sequential :meth:`emit` calls would.
        """
        self.clock.charge("classifier_infer", times=pixels.shape[0])
        predictions = bundle.model.predict(pixels)
        name = bundle.name
        start = self.index
        batch_records = [FrameRecord(start + offset, int(prediction), name)
                         for offset, prediction in enumerate(predictions)]
        self.records.extend(batch_records)
        self.invocations.record_repeat([name], len(batch_records))
        self._c_emitted.inc(len(batch_records))
        self.index = start + len(batch_records)
        return batch_records

    def record_detection(self, previous: str, selected: str, novel: bool,
                         selection_frames: int) -> DetectionEvent:
        """Log one drift episode (at the current emission index)."""
        event = DetectionEvent(
            frame_index=self.index, previous_model=previous,
            selected_model=selected, novel=novel,
            selection_frames=selection_frames)
        self.detections.append(event)
        self.obs.event("drift_detected", frame=self.index,
                       previous_model=previous, novel=novel,
                       selection_frames=selection_frames)
        self._c_detections.inc()
        self._h_selection_frames.observe(float(selection_frames))
        return event

    # ------------------------------------------------------------------
    # Snapshotable
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "index": self.index,
            "records": [{"frame_index": r.frame_index,
                         "prediction": r.prediction,
                         "model": r.model} for r in self.records],
            "detections": [{"frame_index": d.frame_index,
                            "previous_model": d.previous_model,
                            "selected_model": d.selected_model,
                            "novel": d.novel,
                            "selection_frames": d.selection_frames}
                           for d in self.detections],
            "invocations": self.invocations.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.index = int(state["index"])
        self.records = [FrameRecord(**r) for r in state["records"]]
        self.detections = [DetectionEvent(**d) for d in state["detections"]]
        self.invocations.load_state_dict(state["invocations"])
