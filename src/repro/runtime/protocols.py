"""Structural contracts the runtime kernel composes against.

Two small protocols describe everything the kernel needs from a pluggable
component:

- :class:`Snapshotable` -- deterministic state capture/restore via
  ``state_dict`` / ``load_state_dict``.  The kernel, the Drift Inspector,
  the simulated clock, the recorder, and the ledgers all implement it; it
  is the one mechanism behind the optimistic batched rollback, the
  checkpoint archive, and the fleet's crash recovery (which used to be
  three divergent hand-rolled paths).
- :class:`DriftMonitor` -- the monitoring-stage contract.  The paper's
  :class:`~repro.core.drift_inspector.DriftInspector` implements it, and so
  do ODIN's :class:`~repro.baselines.odin.detect.OdinDetect` and the
  classical detectors in :mod:`repro.baselines.statistical`, so every
  baseline can run behind the *same* admission / adaptation / emission
  harness as the headline method.

Both are :func:`typing.runtime_checkable`, so ``isinstance`` checks verify
the structural surface without inheritance.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Snapshotable(Protocol):
    """Deterministic state capture and restore.

    ``load_state_dict(state_dict())`` must be a no-op, and two objects with
    equal state dicts must behave bit-identically from then on.  State dicts
    are JSON-friendly apart from numpy arrays (the checkpoint layer splits
    those into the npz archive).
    """

    def state_dict(self) -> dict:
        """Capture the component's dynamic state."""
        ...

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        ...


@runtime_checkable
class DriftMonitor(Protocol):
    """What the kernel's monitoring stage requires from a detector.

    ``observe`` consumes one admitted frame's pixels and returns the
    detector's decision -- either a plain ``bool`` drift flag or a decision
    object with a boolean ``drift`` attribute (the kernel normalizes both).
    ``reset`` restarts detection against the current reference (called on
    cooldown suppression and after a model swap).

    Monitors that additionally implement :class:`Snapshotable` and an
    ``observe_batch(pixels)`` method get the optimistic vectorized batched
    path; anything else is transparently driven frame by frame, so batched
    and sequential execution stay bit-identical either way.
    """

    drift_detected: bool
    drift_frame: Optional[int]

    def observe(self, pixels: np.ndarray) -> object:
        """Consume one frame; return a drift decision (bool-like)."""
        ...

    def reset(self) -> None:
        """Restart detection (martingale / window / cluster state)."""
        ...
