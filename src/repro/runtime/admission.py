"""Admission stage: frame guarding, retries, and the circuit breaker.

The :class:`AdmissionController` owns everything that decides whether work
is allowed to proceed -- the :class:`~repro.faults.guard.FrameGuard` at the
stream boundary, the :class:`~repro.faults.guard.RetryPolicy` around
selector / trainer calls, the :class:`~repro.faults.guard.CircuitBreaker`
over repeated resolution failures -- plus the session's
:class:`~repro.sim.metrics.FaultStats` ledger they all write to.

Observability is passive: the stage emits ``frame_*`` / ``retry`` /
``breaker_*`` events through the attached recorder but never branches on
it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.selection.registry import NovelDistribution
from repro.faults.guard import (
    OK,
    QUARANTINED,
    CircuitBreaker,
    FrameGuard,
    RetryPolicy,
)
from repro.sim.metrics import FaultStats
from repro.video.frames import with_pixels


class AdmissionController:
    """Gatekeeper in front of the monitoring / adaptation stages."""

    def __init__(self, config, clock, recorder) -> None:
        self.config = config
        self.clock = clock
        self.obs = recorder
        self.guard = FrameGuard(policy=config.frame_policy,
                                observer=self._on_guard)
        self.breaker = CircuitBreaker(threshold=config.breaker_threshold,
                                      on_trip=self._on_breaker_trip,
                                      on_close=self._on_breaker_close)
        self._retry_policy = RetryPolicy(
            max_retries=config.max_retries,
            backoff_ms=config.retry_backoff_ms)
        self.faults = FaultStats()

    # ------------------------------------------------------------------
    # observability hooks (passive: they only record, never decide)
    # ------------------------------------------------------------------
    def _on_guard(self, status: str, index: int,
                  reason: Optional[str]) -> None:
        self.obs.event(f"frame_{status}", frame=index, reason=reason)

    def _on_breaker_trip(self, breaker: CircuitBreaker) -> None:
        self.obs.event("breaker_open", failures=breaker.failures,
                       trips=breaker.trips)

    def _on_breaker_close(self, breaker: CircuitBreaker) -> None:
        self.obs.event("breaker_close", trips=breaker.trips)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh session: new fault ledger, guard and breaker."""
        self.faults = FaultStats()
        self.guard.reset()
        self.breaker.reset()

    def admit(self, item: object) -> Optional[Tuple[object, np.ndarray]]:
        """Run the frame guard on ``item``.

        Returns ``(item, pixels)`` -- with repaired pixels folded back into
        the item -- or ``None`` when the frame was quarantined.  Guard state
        and fault accounting advance exactly as the scalar step would.
        """
        report = self.guard.admit(item)
        if report.status == QUARANTINED:
            self.faults.frames_quarantined += 1
            self.faults.quarantine_reasons[report.reason] = (
                self.faults.quarantine_reasons.get(report.reason, 0) + 1)
            return None
        pixels = report.pixels
        if report.status == OK:
            self.faults.frames_ok += 1
        else:  # repaired: carry the imputed pixels, keep any metadata
            self.faults.frames_repaired += 1
            item = with_pixels(item, pixels)
        return item, pixels

    def admit_batch(self, chunk: List[object]) -> Optional[np.ndarray]:
        """Vectorized guard pass over a uniformly clean chunk.

        Returns the stacked pixels (accounting ``len(chunk)`` clean frames)
        or ``None`` when any frame needs the scalar :meth:`admit` path.
        """
        pixels = self.guard.admit_batch(chunk)
        if pixels is not None:
            self.faults.frames_ok += pixels.shape[0]
        return pixels

    # ------------------------------------------------------------------
    # degraded resolution: retries around the selection / training path
    # ------------------------------------------------------------------
    def _count_retry(self, attempt: int, error: BaseException) -> None:
        self.faults.retries += 1
        self.obs.event("retry", attempt=attempt,
                       error=type(error).__name__)

    def with_retries(self, fn):
        """Run a selector / trainer call under the retry policy.

        ``NovelDistribution`` is a control-flow signal, not a failure, so it
        propagates without consuming retries.
        """
        return self._retry_policy.run(
            fn, clock=self.clock, retryable=(Exception,),
            non_retryable=(NovelDistribution,),
            on_retry=self._count_retry)

    # ------------------------------------------------------------------
    # Snapshotable (breaker + guard + fault ledger)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        guard = self.guard
        return {
            "faults": self.faults.state_dict(),
            "breaker": {"failures": self.breaker.failures,
                        "trips": self.breaker.trips,
                        "is_open": self.breaker.is_open},
            "guard": {"expected_shape": (list(guard.expected_shape)
                                         if guard.expected_shape is not None
                                         else None),
                      "admitted": guard._admitted,
                      "reasons": dict(guard.reasons)},
            "guard_last_good": guard.last_good,
        }

    def load_state_dict(self, state: dict) -> None:
        self.faults.load_state_dict(state["faults"])
        breaker = state["breaker"]
        self.breaker.failures = int(breaker["failures"])
        self.breaker.trips = int(breaker["trips"])
        self.breaker.is_open = bool(breaker["is_open"])
        guard_state = state["guard"]
        shape = guard_state["expected_shape"]
        self.guard.expected_shape = (tuple(int(n) for n in shape)
                                     if shape is not None else None)
        self.guard._admitted = int(guard_state["admitted"])
        self.guard.reasons = {str(k): int(v)
                              for k, v in guard_state["reasons"].items()}
        last_good = state.get("guard_last_good")
        if last_good is not None:
            self.guard.last_good = np.asarray(last_good, dtype=np.float64)
