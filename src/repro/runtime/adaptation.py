"""Adaptation stage: model selection, training, and degraded fallback.

:class:`AdaptationPolicy` owns the post-drift decision logic that used to
live in ``DriftAwareAnalytics._decide_model`` / ``_train_or_fallback``:
run MSBI / MSBO over the buffered window, train a new bundle when the
selector declares a novel distribution, and degrade to the nearest
provisioned model when the trainer is unavailable or the circuit breaker
is open.  Retries and breaker bookkeeping go through the session's
:class:`~repro.runtime.admission.AdmissionController`, so selection
failures and training failures share one fault ledger.

The policy reads the model registry through the owning kernel, so bundles
registered mid-session (``novel_*``) are immediately visible to the
fallback search.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.selection.msbi import MSBI
from repro.core.selection.msbo import MSBO
from repro.core.selection.registry import NovelDistribution
from repro.core.selection.trainer import ModelTrainer
from repro.errors import ConfigurationError
from repro.video.frames import pixels_of


class AdaptationPolicy:
    """Selection / training / fallback policy for one kernel."""

    def __init__(self, kernel, selector: object,
                 annotator: Optional[Callable[[np.ndarray], np.ndarray]],
                 trainer: Optional[ModelTrainer]) -> None:
        if not isinstance(selector, (MSBI, MSBO)):
            raise ConfigurationError(
                f"selector must be MSBI or MSBO, got {type(selector).__name__}")
        if isinstance(selector, MSBO) and annotator is None:
            raise ConfigurationError("MSBO selection requires an annotator")
        self.kernel = kernel
        self.selector = selector
        self.annotator = annotator
        self.trainer = trainer

    # ------------------------------------------------------------------
    @property
    def _admission(self):
        return self.kernel.admission

    @property
    def _registry(self):
        return self.kernel.registry

    @property
    def _obs(self):
        return self.kernel.obs

    # ------------------------------------------------------------------
    def try_select(self, items: List[object], window: np.ndarray) -> str:
        """Run the selector on the buffered window.

        ``items`` are the original stream items (carrying ground truth for
        the annotator); ``window`` their stacked pixel arrays.  Raises
        :class:`NovelDistribution` when no provisioned model fits.
        """
        with self._obs.span("selection.select"):
            if isinstance(self.selector, MSBO):
                labels = np.asarray(self.annotator(items), dtype=np.int64)
                return self.selector.select(window, labels)
            return self.selector.select(window)

    def train_new(self, items: List[object]) -> str:
        """Build and register a bundle from collected post-drift items."""
        with self._obs.span("selection.train"):
            pixels = np.stack([pixels_of(item) for item in items])
            labels = None
            if self.annotator is not None:
                labels = np.asarray(self.annotator(items), dtype=np.int64)
            name = f"novel_{len(self._registry)}"
            bundle = self.trainer.train_new_model(name, pixels, labels=labels)
            self._registry.replace(bundle)
            return name

    def fallback_model(self, window: np.ndarray) -> str:
        with self._obs.span("selection.fallback"):
            best_name, best = None, float("inf")
            for bundle in self._registry:
                latents = bundle.embed(window)
                centroid = bundle.sigma.mean(axis=0)
                dist = float(
                    np.sqrt(((latents - centroid) ** 2).sum(axis=1)).mean())
                if dist < best:
                    best, best_name = dist, bundle.name
            return best_name

    # ------------------------------------------------------------------
    def train_or_fallback(self, items: List[object],
                          window: np.ndarray) -> str:
        """Train a new bundle; degrade to the nearest provisioned model when
        training is impossible (no trainer, too few frames) or keeps
        failing."""
        admission = self._admission
        if self.trainer is None or len(items) < 2:
            return self.fallback_model(window)
        try:
            name = admission.with_retries(lambda: self.train_new(items))
        except Exception:
            admission.faults.training_failures += 1
            admission.breaker.record_failure()
            return self.fallback_model(window)
        admission.breaker.record_success()
        return name

    def decide(self, items: List[object], window: np.ndarray,
               novel_hint: bool) -> Tuple[str, bool]:
        """Pick the model for a drift episode; returns ``(name, novel)``.

        Never raises (beyond programming errors in the fallback itself):
        selection and training run under retry, repeated failures trip the
        breaker, and an open breaker pins the nearest provisioned model
        without attempting selection at all.
        """
        admission = self._admission
        selection_window = self.kernel.config.selection_window
        if admission.breaker.is_open:
            admission.faults.breaker_fallbacks += 1
            return self.fallback_model(window), novel_hint
        if novel_hint:
            return self.train_or_fallback(items, window), True
        try:
            selected = admission.with_retries(lambda: self.try_select(
                items[:selection_window], window[:selection_window]))
        except NovelDistribution:
            return self.train_or_fallback(items, window), True
        except Exception:
            admission.faults.selection_failures += 1
            admission.breaker.record_failure()
            return self.fallback_model(window), False
        admission.breaker.record_success()
        return selected, False

    def training_budget(self) -> int:
        if self.kernel.config.training_budget is not None:
            return self.kernel.config.training_budget
        return self.trainer.config.frames_to_collect
