"""Monitoring stage: a uniform harness over any :class:`DriftMonitor`.

:class:`MonitorStage` adapts the kernel to whatever detector backs the
session -- the paper's :class:`~repro.core.drift_inspector.DriftInspector`,
ODIN's :class:`~repro.baselines.odin.detect.OdinDetect`, or a classical
detector from :mod:`repro.baselines.statistical` -- by normalizing two
axes of variation:

- **decisions**: ``observe`` may return a plain ``bool`` or a decision
  object with a ``drift`` attribute; :meth:`drift_of` reads either.
- **batching**: monitors that implement ``observe_batch`` *and*
  :class:`~repro.runtime.protocols.Snapshotable` support the optimistic
  vectorized path (snapshot, observe the chunk at once, roll back on a
  drift flag).  Anything else reports ``supports_rollback = False`` and the
  kernel drives it frame by frame, so batched execution stays bit-identical
  to sequential for every monitor.
"""

from __future__ import annotations

import inspect
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.runtime.protocols import DriftMonitor, Snapshotable


class MonitorStage:
    """Wrap one :class:`DriftMonitor` for the kernel's monitoring loop."""

    def __init__(self, monitor: DriftMonitor) -> None:
        self.monitor = monitor
        batch_fn = getattr(monitor, "observe_batch", None)
        self._batch_kwargs: dict = {}
        self._supports_batch = callable(batch_fn)
        if self._supports_batch:
            try:
                parameters = inspect.signature(batch_fn).parameters
            except (TypeError, ValueError):
                parameters = {}
            if "exact_embed" in parameters:
                # bit-exactness contract: batched embedding must replay the
                # per-frame RNG stream, not consume a vectorized one
                self._batch_kwargs = {"exact_embed": True}

    # ------------------------------------------------------------------
    @staticmethod
    def drift_of(decision: object) -> bool:
        """Normalize a monitor decision (bool or ``.drift`` carrier)."""
        return bool(getattr(decision, "drift", decision))

    @property
    def drift_detected(self) -> bool:
        return bool(self.monitor.drift_detected)

    @property
    def drift_frame(self) -> Optional[int]:
        return self.monitor.drift_frame

    @property
    def supports_rollback(self) -> bool:
        """Whether the optimistic batched path can run on this monitor."""
        return self._supports_batch and isinstance(self.monitor, Snapshotable)

    # ------------------------------------------------------------------
    def observe(self, pixels: np.ndarray) -> bool:
        """Feed one admitted frame; returns the normalized drift flag."""
        return self.drift_of(self.monitor.observe(pixels))

    def observe_batch(self, pixels: np.ndarray) -> List[bool]:
        """Feed a ``(B, ...)`` stack; returns per-frame drift flags."""
        decisions = self.monitor.observe_batch(pixels, **self._batch_kwargs)
        return [self.drift_of(decision) for decision in decisions]

    def reset(self) -> None:
        self.monitor.reset()

    # ------------------------------------------------------------------
    # optimistic-rollback snapshots (monitor state + retained decisions)
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[dict, Optional[Sequence[object]]]:
        """Capture the monitor for a possible batched-chunk rollback.

        ``state_dict`` covers the behavioural state; the retained
        ``decisions`` diagnostic list (when the monitor keeps one) is saved
        alongside because ``load_state_dict`` deliberately clears it.
        """
        state = self.monitor.state_dict()
        decisions = getattr(self.monitor, "decisions", None)
        return state, (list(decisions) if decisions is not None else None)

    def restore(self, snapshot: Tuple[dict, Optional[Sequence[object]]]) -> None:
        state, decisions = snapshot
        self.monitor.load_state_dict(state)
        if decisions is not None:
            self.monitor.decisions = list(decisions)

    # ------------------------------------------------------------------
    # Snapshotable passthrough (checkpoint / fleet recovery)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        if not isinstance(self.monitor, Snapshotable):
            raise CheckpointError(
                f"monitor {type(self.monitor).__name__} is not Snapshotable "
                f"(no state_dict/load_state_dict); sessions backed by it "
                f"cannot be checkpointed")
        return self.monitor.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.monitor.load_state_dict(state)
