"""The staged runtime kernel behind every execution substrate.

:class:`RuntimeKernel` is the paper's Figure-1 loop as an explicit state
machine over four composable stages:

1. **admission** (:class:`~repro.runtime.admission.AdmissionController`) --
   frame guard, retries, circuit breaker, fault ledger;
2. **monitoring** (:class:`~repro.runtime.monitoring.MonitorStage`) -- any
   :class:`~repro.runtime.protocols.DriftMonitor` (Drift Inspector by
   default, ODIN or a statistical detector via ``monitor_factory``);
3. **adaptation** (:class:`~repro.runtime.adaptation.AdaptationPolicy`) --
   MSBI / MSBO selection, novel-distribution training, degraded fallback;
4. **emission** (:class:`~repro.runtime.emission.EmissionStage`) -- frame
   records, detection log, invocation accounting.

Sequential ``process``, ``process_batched``, the ``repro.parallel`` fleet,
the ``repro.serve`` scheduler, and the experiments runner all drive this
one kernel, so the bit-exactness contract (same records, detections,
invocations, fault stats, and simulated clock for any chunking) is proved
in one place.  The kernel is itself
:class:`~repro.runtime.protocols.Snapshotable`: ``state_dict`` /
``load_state_dict`` capture a whole live session, backing both the
checkpoint archive and the fleet's crash recovery.

:class:`~repro.core.pipeline.DriftAwareAnalytics` remains the public
façade over this kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.core.drift_inspector import DriftInspector, DriftInspectorConfig
from repro.core.selection.registry import ModelRegistry, NovelDistribution
from repro.core.selection.trainer import ModelTrainer
from repro.errors import CheckpointError, ConfigurationError
from repro.faults.guard import GUARD_POLICIES
from repro.obs.recorder import NULL_RECORDER
from repro.runtime.admission import AdmissionController
from repro.runtime.adaptation import AdaptationPolicy
from repro.runtime.emission import EmissionStage, FrameRecord, PipelineResult
from repro.runtime.monitoring import MonitorStage
from repro.runtime.protocols import DriftMonitor
from repro.sim.clock import SimulatedClock
from repro.video.frames import pixels_of


@dataclass
class PipelineConfig:
    """Pipeline-level knobs.

    ``selection_window`` is the number of post-drift frames buffered for the
    selector (W_N for MSBI, W_T for MSBO); ``training_budget`` overrides the
    trainer's frame collection budget when a novel distribution appears.

    Fault tolerance: ``frame_policy`` governs the
    :class:`~repro.faults.guard.FrameGuard` at the pipeline boundary
    (``"raise"`` fails fast on invalid frames, ``"skip"`` quarantines them,
    ``"repair"`` imputes from the last good frame); selector / trainer calls
    get ``max_retries`` retries with ``retry_backoff_ms`` simulated-clock
    backoff, and ``breaker_threshold`` consecutive resolution failures trip
    a circuit breaker that pins the nearest provisioned model instead of
    crashing.
    """

    selection_window: int = 10
    training_budget: Optional[int] = None
    cooldown_frames: int = 25
    frame_policy: str = "raise"
    max_retries: int = 2
    retry_backoff_ms: float = 50.0
    breaker_threshold: int = 3
    drift_inspector: DriftInspectorConfig = field(
        default_factory=DriftInspectorConfig)

    def __post_init__(self) -> None:
        if self.selection_window <= 0:
            raise ConfigurationError(
                f"selection_window must be positive: {self.selection_window}")
        if self.cooldown_frames < 0:
            raise ConfigurationError(
                f"cooldown_frames must be non-negative: {self.cooldown_frames}")
        if self.frame_policy not in GUARD_POLICIES:
            raise ConfigurationError(
                f"frame_policy must be one of {GUARD_POLICIES}, "
                f"got {self.frame_policy!r}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative: {self.max_retries}")
        if self.retry_backoff_ms < 0:
            raise ConfigurationError(
                f"retry_backoff_ms must be non-negative: "
                f"{self.retry_backoff_ms}")
        if self.breaker_threshold <= 0:
            raise ConfigurationError(
                f"breaker_threshold must be positive: "
                f"{self.breaker_threshold}")


class RuntimeKernel:
    """The Figure-1 state machine over the four runtime stages.

    Parameters mirror the :class:`~repro.core.pipeline.DriftAwareAnalytics`
    façade; ``monitor_factory`` additionally lets a caller back the
    monitoring stage with any :class:`DriftMonitor` -- it is called with
    the freshly deployed :class:`ModelBundle` on construction and after
    every model swap, and defaults to building the paper's Drift Inspector
    against the bundle's VAE and reference sample.
    """

    _MODE_MONITOR = "monitor"
    _MODE_SELECT = "select-buffer"
    _MODE_TRAIN = "train-buffer"

    def __init__(self, registry: ModelRegistry, initial_model: str,
                 selector: object,
                 annotator: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 trainer: Optional[ModelTrainer] = None,
                 config: Optional[PipelineConfig] = None,
                 clock: Optional[SimulatedClock] = None,
                 recorder: Optional[object] = None,
                 monitor_factory: Optional[
                     Callable[[object], DriftMonitor]] = None) -> None:
        self.registry = registry
        self.config = config or PipelineConfig()
        self.clock = clock or SimulatedClock()
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.obs.bind_clock(self.clock)
        self.emission = EmissionStage(self.clock, self.obs)
        self.admission = AdmissionController(self.config, self.clock,
                                             self.obs)
        self.adaptation = AdaptationPolicy(self, selector, annotator, trainer)
        self.monitor_factory = monitor_factory or self._default_monitor
        self.deploy(initial_model)

    def _default_monitor(self, bundle) -> DriftInspector:
        return DriftInspector(
            bundle.sigma,
            config=self.config.drift_inspector,
            embedder=bundle.vae,
            clock=self.clock,
            recorder=self.obs)

    # ------------------------------------------------------------------
    @property
    def deployed_model(self) -> str:
        return self.deployed.name

    def deploy(self, name: str) -> None:
        """Swap the deployed bundle and rebuild the monitoring stage."""
        self.deployed = self.registry.get(name)
        self.monitor = MonitorStage(self.monitor_factory(self.deployed))

    def predict_degraded(self, pixels: object) -> int:
        """Serve one frame on the degraded pass: classify with the
        deployed model only.  No monitor, RNG, clock or emission state is
        touched, so interleaving degraded predictions with :meth:`step`
        cannot perturb the full path's decisions (the serving layer's
        bit-identity property depends on this isolation)."""
        batch = np.asarray(pixels, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, ...]
        self.obs.counter("pipeline.degraded_predictions").inc()
        return int(self.deployed.model.predict(batch)[0])

    def screen_degraded(self, pixels: object) -> Optional[float]:
        """Tier-0 suspicion for a frame served on the degraded pass.

        When the session's monitor offers a stateless ``peek_suspicion``
        (the tier-0 screen, or a :class:`~repro.cascade.CascadeMonitor`
        delegating to its tier 0), degraded frames can still be screened
        for drift without running the monitor: the peek touches no
        monitor, RNG or clock state, preserving the same isolation
        contract as :meth:`predict_degraded`.  Returns ``None`` when the
        deployed monitor offers no peek.
        """
        peek = getattr(self.monitor.monitor, "peek_suspicion", None)
        if peek is None:
            return None
        suspicion = peek(np.asarray(pixels, dtype=np.float64))
        if suspicion is None:
            return None
        self.obs.counter("pipeline.degraded_screened").inc()
        return float(suspicion)

    # ------------------------------------------------------------------
    # streaming API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin a streaming session (push-based processing via
        :meth:`step` / :meth:`flush`)."""
        self.emission.reset()
        self.admission.reset()
        self._start_ms = self.clock.elapsed_ms
        self.obs.event("session_start", model=self.deployed.name,
                       registry_size=len(self.registry))
        self.obs.gauge("pipeline.registry_size").set(len(self.registry))
        self._buffer: List[object] = []
        self._mode = self._MODE_MONITOR
        self._frames_since_swap = self.config.cooldown_frames  # armed

    @property
    def started(self) -> bool:
        return hasattr(self, "_mode")

    def _resolve_buffer(self, selected: Optional[str] = None,
                        novel_hint: bool = False) -> List[FrameRecord]:
        """Deploy ``selected`` (running selection/training if not already
        decided) and emit the buffered frames under the new model."""
        items = self._buffer
        self._buffer = []
        window = np.stack([pixels_of(entry) for entry in items])
        previous = self.deployed.name
        novel = novel_hint
        with self.obs.span("selection.resolve"):
            if selected is None:
                selected, novel = self.adaptation.decide(items, window,
                                                         novel_hint)
            self.emission.record_detection(previous, selected, novel,
                                           len(items))
            self.deploy(selected)
            self.obs.event("model_deployed", model=selected,
                           registry_size=len(self.registry))
            self.obs.gauge("pipeline.registry_size").set(len(self.registry))
        self._mode = self._MODE_MONITOR
        self._frames_since_swap = 0
        return [self.emission.emit(self.deployed, pixels)
                for pixels in window]

    def step(self, item: object) -> List[FrameRecord]:
        """Push one frame; returns the records it emitted (possibly none
        while post-drift frames are being buffered for selection or
        training, or when the guard quarantined the frame)."""
        if not self.started:
            self.start()
        admitted = self.admission.admit(item)
        if admitted is None:
            return []
        return self._step_admitted(*admitted)

    def _step_admitted(self, item: object,
                       pixels: np.ndarray) -> List[FrameRecord]:
        """The post-guard remainder of :meth:`step` (mode dispatch)."""
        admission = self.admission
        if self._mode == self._MODE_SELECT:
            self._buffer.append(item)
            if len(self._buffer) < self.config.selection_window:
                return []
            # window full: try selection; a novel distribution with a
            # trainer keeps buffering up to the training budget
            window = np.stack([pixels_of(e) for e in self._buffer])
            if admission.breaker.is_open:
                admission.faults.breaker_fallbacks += 1
                return self._resolve_buffer(
                    selected=self.adaptation.fallback_model(window))
            try:
                selected = admission.with_retries(
                    lambda: self.adaptation.try_select(self._buffer, window))
            except NovelDistribution:
                if self.adaptation.trainer is not None:
                    self._mode = self._MODE_TRAIN
                    return []
                # no trainer: degrade to the nearest provisioned model
                return self._resolve_buffer(
                    selected=self.adaptation.fallback_model(window),
                    novel_hint=True)
            except Exception:
                admission.faults.selection_failures += 1
                admission.breaker.record_failure()
                return self._resolve_buffer(
                    selected=self.adaptation.fallback_model(window))
            admission.breaker.record_success()
            return self._resolve_buffer(selected=selected)
        if self._mode == self._MODE_TRAIN:
            self._buffer.append(item)
            if len(self._buffer) < self.adaptation.training_budget():
                return []
            return self._resolve_buffer(novel_hint=True)
        # monitoring
        drift = self.monitor.observe(pixels)
        if drift and (self._frames_since_swap
                      < self.config.cooldown_frames):
            # residual transient right after a model swap: the fresh
            # reference needs a few frames to settle -- restart the
            # monitor rather than re-triggering selection
            self.monitor.reset()
            drift = False
        self._frames_since_swap += 1
        if drift:
            self._mode = self._MODE_SELECT
            self._buffer = [item]
            return []
        return [self.emission.emit(self.deployed, pixels)]

    def step_batch(self, items: Iterable[object],
                   batch_size: int = 64) -> List[FrameRecord]:
        """Push a window of frames through the batched monitor path.

        Equivalent to calling :meth:`step` once per item, for any
        ``batch_size``: records, detections, invocation counts, fault stats
        and the simulated clock all end up bit-identical, so batched and
        sequential processing (and different chunkings of the same stream,
        e.g. after a checkpoint restore) are interchangeable.

        Monitoring chunks are observed with the monitor's batched path in
        one call and emitted with one batched classifier call.  The
        batching is *optimistic*: the monitor and clock are snapshotted
        (via :class:`~repro.runtime.protocols.Snapshotable`) before each
        chunk, and a drift flag anywhere inside it rolls both back and
        replays the chunk frame by frame so the post-drift buffering,
        cooldown and selection logic run exactly as the sequential path.
        Frames arriving outside monitor mode (buffer filling, cooldown)
        take the scalar path directly, as does every frame when the
        monitor supports no batched observation.
        """
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive: {batch_size}")
        if not self.started:
            self.start()
        items = list(items)
        records: List[FrameRecord] = []
        i = 0
        while i < len(items):
            if (self._mode != self._MODE_MONITOR
                    or self._frames_since_swap < self.config.cooldown_frames
                    or self.monitor.drift_detected
                    or not self.monitor.supports_rollback):
                records.extend(self.step(items[i]))
                i += 1
                continue
            chunk = items[i:i + batch_size]
            i += len(chunk)
            pixels = self.admission.admit_batch(chunk)
            if pixels is not None:
                # uniformly clean chunk: one vectorized guard pass stands in
                # for len(chunk) scalar admits; items pass through untouched
                admitted = None
            else:
                entries = []
                for item in chunk:
                    entry = self.admission.admit(item)
                    if entry is not None:
                        entries.append(entry)
                if not entries:
                    continue
                admitted = entries
                pixels = np.stack([p for _, p in entries])
            # optimistic batched observation: snapshot the monitor and
            # clock so a drift inside the chunk can roll back and replay
            # with sequential-exact accounting
            monitor_snapshot = self.monitor.snapshot()
            clock_state = self.clock.state_dict()
            obs_state = self.obs.state_dict()
            flags = self.monitor.observe_batch(pixels)
            if not any(flags):
                self._frames_since_swap += pixels.shape[0]
                records.extend(self.emission.emit_batch(self.deployed,
                                                        pixels))
                continue
            self.monitor.restore(monitor_snapshot)
            self.clock.load_state_dict(clock_state)
            self.obs.load_state_dict(obs_state)
            if admitted is None:
                admitted = list(zip(chunk, pixels))
            for entry in admitted:
                records.extend(self._step_admitted(*entry))
        return records

    def flush(self) -> List[FrameRecord]:
        """End the stream: resolve any frames still buffered.

        A partial selection window is evaluated as-is; a partial training
        buffer trains on whatever was collected, deterministically falling
        back to the nearest provisioned model when fewer than two frames
        are available (training needs at least two).
        """
        if not self.started:
            self.start()
        if not self._buffer:
            return []
        if self._mode == self._MODE_TRAIN:
            return self._resolve_buffer(novel_hint=True)
        return self._resolve_buffer()

    def result(self) -> PipelineResult:
        """The session's aggregated outcome so far."""
        if not self.started:
            self.start()
        self.admission.faults.breaker_trips = self.admission.breaker.trips
        return PipelineResult(
            records=self.emission.records,
            detections=self.emission.detections,
            invocations=self.emission.invocations,
            simulated_ms=self.clock.elapsed_ms - self._start_ms,
            faults=self.admission.faults,
            telemetry=self.obs.snapshot())

    # ------------------------------------------------------------------
    def process(self, stream: Iterable[object]) -> PipelineResult:
        """Run the full loop over ``stream``; returns aggregated results.

        Equivalent to :meth:`start` + :meth:`step` per item + :meth:`flush`;
        use those directly for push-based (live) processing.
        """
        self.start()
        for item in stream:
            self.step(item)
        self.flush()
        return self.result()

    def process_batched(self, stream: Iterable[object],
                        batch_size: int = 64) -> PipelineResult:
        """Batched counterpart of :meth:`process` (see :meth:`step_batch`);
        produces bit-identical results for any ``batch_size``."""
        self.start()
        self.step_batch(stream, batch_size=batch_size)
        self.flush()
        return self.result()

    # ------------------------------------------------------------------
    # Snapshotable: one mechanism for checkpoints, fleet crash recovery,
    # and any external state capture (no private attribute reaching)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture the live session.

        Raises :class:`CheckpointError` when no session is active, or when
        the monitoring stage's monitor is not
        :class:`~repro.runtime.protocols.Snapshotable`.  Buffered items are
        captured as raw pixel arrays (their ground-truth metadata is not
        carried).
        """
        if not self.started:
            raise CheckpointError(
                "no active session to checkpoint; call start() or step() "
                "first")
        state = {
            "deployed": self.deployed.name,
            "mode": self._mode,
            "start_ms": self._start_ms,
            "frames_since_swap": self._frames_since_swap,
            "inspector": self.monitor.state_dict(),
            "clock": self.clock.state_dict(),
            "buffer": (np.stack([pixels_of(item) for item in self._buffer])
                       if self._buffer else None),
        }
        state.update(self.emission.state_dict())
        state.update(self.admission.state_dict())
        selector_rng = getattr(self.adaptation.selector, "_rng", None)
        if isinstance(selector_rng, np.random.Generator):
            state["selector_rng"] = selector_rng.bit_generator.state
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a session captured by :meth:`state_dict` into this
        freshly constructed kernel (same registry, selector, config)."""
        deployed = state["deployed"]
        if deployed not in self.registry:
            raise CheckpointError(
                f"checkpoint deploys {deployed!r} but the registry only has "
                f"{self.registry.names()}; persist mid-session bundles with "
                f"repro.core.selection.persistence before checkpointing")
        self.start()
        # rebuild the monitor against the deployed bundle, then overlay the
        # checkpointed dynamic state (martingale, RNG streams, counters)
        self.deploy(deployed)
        self.monitor.load_state_dict(state["inspector"])
        self.emission.load_state_dict(state)
        self.admission.load_state_dict(state)
        self._mode = str(state["mode"])
        self._frames_since_swap = int(state["frames_since_swap"])
        self.clock.load_state_dict(state["clock"])
        self._start_ms = float(state["start_ms"])
        buffer = state.get("buffer")
        if buffer is not None and len(buffer):
            self._buffer = [np.asarray(frame, dtype=np.float64)
                            for frame in buffer]
        if "selector_rng" in state:
            selector_rng = getattr(self.adaptation.selector, "_rng", None)
            if isinstance(selector_rng, np.random.Generator):
                selector_rng.bit_generator.state = state["selector_rng"]
