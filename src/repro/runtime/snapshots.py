"""Shard-safe snapshot helpers for :class:`~repro.runtime.protocols\
.Snapshotable` state.

A kernel ``state_dict()`` captures numpy arrays by reference.  That is
exactly right in-process (cheap, and the caller restores immediately),
but it is a trap the moment a snapshot outlives the buffer it was taken
over: a fleet worker checkpointing mid-stream holds frame windows that
are **views into a shared-memory ring slot**, and the slot is recycled
-- or the whole segment unlinked -- long before the archive is read
back.  :func:`detach_arrays` walks a state tree and materialises every
non-owning array into a fresh C-contiguous copy, so the returned tree
is self-contained: safe to pickle across processes, write to a
checkpoint archive, or hold past the life of the transport that
produced it.

Arrays that already own their memory pass through untouched (no copy
tax on the common case); everything non-array is returned as-is, since
state dicts are JSON-friendly scalars and containers by contract.
"""

from __future__ import annotations

import numpy as np


def owns_memory(array: np.ndarray) -> bool:
    """True when ``array`` owns its buffer outright -- no base object,
    no view into someone else's (possibly shared) memory."""
    return array.base is None and array.flags.owndata


def detach_arrays(state):
    """Return ``state`` with every non-owning numpy array replaced by an
    owned C-contiguous copy (recursing through dicts, lists and tuples).

    Owning arrays and non-array leaves are returned by reference: the
    function only pays for what actually needs detaching, and calling it
    twice is a no-op the second time.
    """
    if isinstance(state, np.ndarray):
        if owns_memory(state):
            return state
        return np.array(state, order="C", copy=True)
    if isinstance(state, dict):
        return {key: detach_arrays(value) for key, value in state.items()}
    if isinstance(state, tuple):
        return tuple(detach_arrays(value) for value in state)
    if isinstance(state, list):
        return [detach_arrays(value) for value in state]
    return state
