"""Staged runtime kernel (paper Figure 1 as composable layers).

- :mod:`repro.runtime.protocols` -- :class:`Snapshotable` and
  :class:`DriftMonitor` structural contracts.
- :mod:`repro.runtime.admission` -- frame guard, retries, circuit breaker.
- :mod:`repro.runtime.monitoring` -- harness over any drift monitor.
- :mod:`repro.runtime.adaptation` -- MSBI / MSBO selection, training,
  degraded fallback.
- :mod:`repro.runtime.emission` -- records, detections, invocation and
  telemetry accounting.
- :mod:`repro.runtime.kernel` -- :class:`RuntimeKernel`, the one state
  machine every execution substrate (sequential, batched, fleet, serve,
  experiments) drives.
- :mod:`repro.runtime.snapshots` -- shard-safe snapshot detachment
  (:func:`detach_arrays`), so state captured over shared-memory frame
  views never aliases a transport slot.

Layering rule (enforced by ``scripts/check_layers.py``): this package and
:mod:`repro.core` must not import :mod:`repro.parallel`, :mod:`repro.serve`
or :mod:`repro.experiments`.
"""

from repro.runtime.admission import AdmissionController
from repro.runtime.adaptation import AdaptationPolicy
from repro.runtime.emission import (
    DetectionEvent,
    EmissionStage,
    FrameRecord,
    PipelineResult,
)
from repro.runtime.kernel import PipelineConfig, RuntimeKernel
from repro.runtime.monitoring import MonitorStage
from repro.runtime.protocols import DriftMonitor, Snapshotable
from repro.runtime.snapshots import detach_arrays, owns_memory

__all__ = [
    "AdmissionController",
    "AdaptationPolicy",
    "DetectionEvent",
    "DriftMonitor",
    "EmissionStage",
    "FrameRecord",
    "MonitorStage",
    "PipelineConfig",
    "PipelineResult",
    "RuntimeKernel",
    "Snapshotable",
    "detach_arrays",
    "owns_memory",
]
