"""Simulated clock charging per-operation costs.

Components call ``clock.charge("operation")`` (or ``charge_ms``) at the point
where the paper's testbed would spend GPU/CPU time.  Experiments read
``clock.elapsed_ms`` / ``elapsed_s`` to build the time-performance tables.
The clock also keeps a per-operation ledger for cost breakdowns.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.costs import CostProfile, PAPER_COSTS


class SimulatedClock:
    """Accumulates simulated milliseconds against a :class:`CostProfile`."""

    def __init__(self, profile: Optional[CostProfile] = None) -> None:
        self.profile = profile or PAPER_COSTS
        self._ledger: Counter = Counter()
        self._op_counts: Counter = Counter()

    @property
    def elapsed_ms(self) -> float:
        """Total simulated time in milliseconds.

        Derived from the per-operation ledger, summed in sorted-key order:
        each operation's ledger entry only ever accumulates that operation's
        charges, so the total is independent of how charges to *different*
        operations interleave -- a batched component charging op-by-op reads
        the same elapsed time as its sequential equivalent charging
        frame-by-frame.
        """
        return sum(self._ledger[name] for name in sorted(self._ledger))

    @property
    def elapsed_s(self) -> float:
        """Total simulated time in seconds."""
        return self.elapsed_ms / 1000.0

    def charge(self, operation: str, times: int = 1) -> float:
        """Charge ``operation`` ``times`` times; returns the ms charged.

        The accumulators advance by repeated addition (not ``cost * times``)
        so one ``charge(op, times=n)`` leaves the clock bit-identical to
        ``n`` single charges -- batched components must not perturb the
        simulated-time accounting of their sequential equivalents.
        """
        if times < 0:
            raise ConfigurationError(f"times must be non-negative, got {times}")
        cost = self.profile.cost(operation)
        total = 0.0
        for _ in range(times):
            self._ledger[operation] += cost
            total += cost
        self._op_counts[operation] += times
        return total

    def charge_ms(self, operation: str, ms: float) -> float:
        """Charge an explicit duration under ``operation``'s ledger entry."""
        if ms < 0:
            raise ConfigurationError(f"ms must be non-negative, got {ms}")
        self._ledger[operation] += ms
        return ms

    def ledger(self) -> Dict[str, float]:
        """Milliseconds charged per operation name."""
        return dict(self._ledger)

    def operation_counts(self) -> Dict[str, int]:
        """How many times each operation was charged via :meth:`charge`."""
        return dict(self._op_counts)

    def reset(self) -> None:
        """Zero the clock and ledger."""
        self._ledger.clear()
        self._op_counts.clear()

    def split(self) -> "ClockSplit":
        """A context manager measuring the simulated time of a block."""
        return ClockSplit(self)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot (elapsed time + ledgers)."""
        return {"elapsed_ms": self.elapsed_ms,
                "ledger": dict(self._ledger),
                "op_counts": dict(self._op_counts)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` (the cost profile
        is configuration, not state; ``elapsed_ms`` is derived from the
        ledger, so only the ledgers are restored)."""
        self._ledger = Counter(
            {str(k): float(v) for k, v in state["ledger"].items()})
        self._op_counts = Counter(
            {str(k): int(v) for k, v in state["op_counts"].items()})


class ClockSplit:
    """Context manager capturing elapsed simulated ms inside a block."""

    def __init__(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed_ms = 0.0

    def __enter__(self) -> "ClockSplit":
        self._start = self._clock.elapsed_ms
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ms = self._clock.elapsed_ms - self._start

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ms / 1000.0
