"""Simulation substrate: simulated clock, cost profiles, metric collectors.

The paper reports wall-clock seconds on a 2x Titan XP workstation.  Our CPU
substrate cannot match those absolute numbers, so time-performance tables are
reproduced against a :class:`~repro.sim.clock.SimulatedClock` charged with
per-operation costs calibrated to the paper's reported per-frame figures
(:mod:`repro.sim.costs`).  Real wall-clock is additionally measured by the
pytest-benchmark targets.
"""

from repro.sim.clock import SimulatedClock
from repro.sim.costs import CostProfile, PAPER_COSTS
from repro.sim.metrics import (
    AccuracyCollector,
    DetectionRecord,
    InvocationCounter,
)

__all__ = [
    "SimulatedClock",
    "CostProfile",
    "PAPER_COSTS",
    "AccuracyCollector",
    "DetectionRecord",
    "InvocationCounter",
]
