"""Per-operation cost profiles (milliseconds) for the simulated clock.

``PAPER_COSTS`` is calibrated so the derived per-frame and per-selection
figures land on the numbers the paper reports for its GPU testbed
(Section 6):

- DI per frame ~= 3 ms: VAE encode 1 ms + KNN nonconformity 1.2 ms +
  martingale update 0.8 ms (Section 6.1.2).
- ODIN-Detect per frame ~= 6 ms: VAE 1 ms + centroid/delta-band estimation
  ~4 ms + KL check 1 ms (Section 6.1.2).
- ODIN-Select: 3.2 ms per cluster + 1.8 ms embedding -> 17.8 ms/frame with 5
  clusters (Table 7 / Section 6.2.2).
- Model selection: MSBO pays 33.2 ms per ensemble member per examined frame
  (5 models x L=5 members = 830 ms/frame on Detrac, Table 7) and MSBI pays
  128 ms per model per examined frame (5 x 128 = 640 ms/frame).  MSBO
  examines W_T = 10 frames per drift, reproducing Table 8's totals.
- Drift-oblivious detectors: YOLOv7 15.4 ms/frame and Mask R-CNN
  133.5 ms/frame (from Table 9 totals over 80 K frames); Mask R-CNN
  annotation 360 ms/frame (30 min for 5 K frames, Section 6).

These constants do not affect any accuracy result -- they only drive the
time-performance tables, and every experiment also reports real wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostProfile:
    """Named per-operation costs in milliseconds."""

    costs_ms: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.costs_ms.items():
            if value < 0:
                raise ConfigurationError(
                    f"cost {name!r} must be non-negative, got {value}")

    def cost(self, operation: str) -> float:
        """Cost of ``operation`` in ms; unknown operations cost 0."""
        return self.costs_ms.get(operation, 0.0)

    def with_overrides(self, **overrides: float) -> "CostProfile":
        """A copy with some costs replaced (for sensitivity studies)."""
        merged = dict(self.costs_ms)
        merged.update(overrides)
        return CostProfile(merged)


PAPER_COSTS = CostProfile({
    # Drift Inspector (Section 6.1.2: ~3 ms/frame incl. 1 ms VAE)
    "vae_encode": 1.0,
    "knn_nonconformity": 1.2,
    "martingale_update": 0.8,
    # Tier-0 pixel-statistic screen (repro.detectors.tier0): numpy-only
    # SSIM / edge-IoU / moment z-scores, ~60x cheaper than the VAE+DI path
    "pixelstat_screen": 0.05,
    # ODIN-Detect (Section 6.1.2: ~6 ms/frame)
    "odin_embed": 1.0,
    "odin_band_update": 4.0,
    "odin_kl_check": 1.0,
    # ODIN-Select (Table 7: 3.2 ms/cluster + 1.8 ms embed)
    "odin_select_embed": 1.8,
    "odin_cluster_op": 3.2,
    # Model selection (Section 6.2.2)
    "ensemble_member_infer": 33.2,
    "msbi_model_frame": 128.0,
    # Query models and drift-oblivious detectors (Table 9)
    "classifier_infer": 0.45,
    "fast_detector_infer": 15.4,
    "reference_detector_infer": 133.5,
    "annotate_frame": 360.0,
})
