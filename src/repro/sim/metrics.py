"""Metric collectors used across experiments.

- :class:`DetectionRecord` -- detection delay bookkeeping (Figure 3 / 4).
- :class:`InvocationCounter` -- model invocations per frame (Figure 6).
- :class:`AccuracyCollector` -- query accuracy ``A_q`` (Figures 7 / 8).
- :class:`FaultStats` -- degradation accounting (guard verdicts, retries,
  breaker activity) surfaced in ``PipelineResult``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass
class DetectionRecord:
    """One drift-detection episode.

    ``drift_frame`` is the ground-truth frame index where the distribution
    changed; ``detected_frame`` the index where the detector declared drift
    (``None`` if it never fired).  ``delay`` is the paper's metric: frames
    processed from the change point until detection.
    """

    sequence: str
    drift_frame: int
    detected_frame: Optional[int]

    @property
    def detected(self) -> bool:
        return self.detected_frame is not None

    @property
    def delay(self) -> Optional[int]:
        if self.detected_frame is None:
            return None
        return self.detected_frame - self.drift_frame

    @property
    def false_positive(self) -> bool:
        """True when the detector fired before the ground-truth change."""
        return (self.detected_frame is not None
                and self.detected_frame < self.drift_frame)


def mean_delay(records: List[DetectionRecord]) -> float:
    """Average detection delay over records that actually detected."""
    delays = [r.delay for r in records if r.delay is not None]
    if not delays:
        return float("nan")
    return sum(delays) / len(delays)


class InvocationCounter:
    """Counts model invocations per processed frame (Figure 6's metric).

    State is O(models), not O(frames): every exported metric is a ratio
    of running counts, so the counter keeps sufficient statistics
    (frames seen, invocations made, multi-model frames) instead of a
    per-frame log.  That keeps long-lived sessions' checkpoints bounded
    no matter how many frames they process.
    """

    def __init__(self) -> None:
        self._frames = 0
        self._invocations = 0
        self._multi_frames = 0
        self._per_model: Dict[str, int] = {}

    def record(self, models: List[str]) -> None:
        """Record that ``models`` were all invoked for one frame."""
        self.record_repeat(models, 1)

    def record_repeat(self, models: List[str], times: int) -> None:
        """Record ``times`` consecutive frames that each invoked ``models``
        (state ends up identical to ``times`` :meth:`record` calls)."""
        if not models:
            raise ConfigurationError("a frame must invoke at least one model")
        if times < 0:
            raise ConfigurationError(f"times must be non-negative: {times}")
        self._frames += times
        self._invocations += len(models) * times
        if len(models) > 1:
            self._multi_frames += times
        for name in models:
            self._per_model[name] = self._per_model.get(name, 0) + times

    @property
    def frames(self) -> int:
        return self._frames

    @property
    def total_invocations(self) -> int:
        return self._invocations

    @property
    def invocations_per_frame(self) -> float:
        """The paper's headline metric; 1.0 means single-model processing."""
        if not self._frames:
            return 0.0
        return self._invocations / self._frames

    @property
    def ensemble_fraction(self) -> float:
        """Fraction of frames processed by more than one model."""
        if not self._frames:
            return 0.0
        return self._multi_frames / self._frames

    def per_model(self) -> Dict[str, int]:
        return dict(self._per_model)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot for checkpoint / restore."""
        return {"frames": self._frames,
                "invocations": self._invocations,
                "multi_frames": self._multi_frames,
                "per_model": dict(self._per_model)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict` (or by the
        pre-bounded format that logged one entry per frame)."""
        if "per_frame" in state:  # legacy checkpoint format
            per_frame = [int(n) for n in state["per_frame"]]
            self._frames = len(per_frame)
            self._invocations = sum(per_frame)
            self._multi_frames = sum(1 for n in per_frame if n > 1)
        else:
            self._frames = int(state["frames"])
            self._invocations = int(state["invocations"])
            self._multi_frames = int(state["multi_frames"])
        self._per_model = {str(k): int(v)
                           for k, v in state["per_model"].items()}


@dataclass
class FaultStats:
    """Degradation accounting for one pipeline session.

    ``frames_ok`` counts frames that passed validation untouched;
    ``frames_repaired`` / ``frames_quarantined`` the guard's interventions
    (a quarantined frame is dropped from processing and emits no record).
    ``retries`` counts re-attempted selector / trainer calls,
    ``selection_failures`` / ``training_failures`` the calls that exhausted
    their retries, ``breaker_trips`` how often the circuit opened and
    ``breaker_fallbacks`` how many drift resolutions were short-circuited
    to the nearest provisioned model while it was open.
    """

    frames_ok: int = 0
    frames_repaired: int = 0
    frames_quarantined: int = 0
    retries: int = 0
    selection_failures: int = 0
    training_failures: int = 0
    breaker_trips: int = 0
    breaker_fallbacks: int = 0
    quarantine_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def frames_faulty(self) -> int:
        """Frames the guard had to intervene on."""
        return self.frames_repaired + self.frames_quarantined

    @property
    def degraded(self) -> bool:
        """True when any degradation (guard, retry, breaker) occurred."""
        return (self.frames_faulty > 0 or self.retries > 0
                or self.selection_failures > 0 or self.training_failures > 0
                or self.breaker_trips > 0)

    def as_dict(self) -> Dict[str, object]:
        return {"frames_ok": self.frames_ok,
                "frames_repaired": self.frames_repaired,
                "frames_quarantined": self.frames_quarantined,
                "retries": self.retries,
                "selection_failures": self.selection_failures,
                "training_failures": self.training_failures,
                "breaker_trips": self.breaker_trips,
                "breaker_fallbacks": self.breaker_fallbacks,
                "quarantine_reasons": dict(self.quarantine_reasons)}

    def state_dict(self) -> dict:
        return self.as_dict()

    def load_state_dict(self, state: dict) -> None:
        for name in ("frames_ok", "frames_repaired", "frames_quarantined",
                     "retries", "selection_failures", "training_failures",
                     "breaker_trips", "breaker_fallbacks"):
            setattr(self, name, int(state[name]))
        self.quarantine_reasons = {
            str(k): int(v)
            for k, v in state.get("quarantine_reasons", {}).items()}


@dataclass
class AccuracyCollector:
    """Accumulates query accuracy ``A_q``: fraction of frames whose
    prediction matches ground truth."""

    correct: int = 0
    total: int = 0
    per_sequence: Dict[str, List[int]] = field(default_factory=dict)

    def record(self, sequence: str, is_correct: bool) -> None:
        self.correct += int(is_correct)
        self.total += 1
        bucket = self.per_sequence.setdefault(sequence, [0, 0])
        bucket[0] += int(is_correct)
        bucket[1] += 1

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return self.correct / self.total

    def sequence_accuracy(self, sequence: str) -> float:
        bucket = self.per_sequence.get(sequence)
        if not bucket or bucket[1] == 0:
            return 0.0
        return bucket[0] / bucket[1]

    def by_sequence(self) -> Dict[str, float]:
        return {name: self.sequence_accuracy(name) for name in self.per_sequence}
