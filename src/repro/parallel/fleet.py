"""Sharded fleet execution of drift-aware camera pipelines.

:class:`FleetExecutor` runs one :class:`~repro.core.pipeline.\
DriftAwareAnalytics` session per camera stream across ``multiprocessing``
workers (or in-process with ``workers=0``), each worker driving the
**batched kernel** (:meth:`~repro.core.pipeline.DriftAwareAnalytics\
.step_batch`) over its shard of streams, and merges the per-stream
results in submission order.  Reproducibility is the design constraint
throughout:

- **Seeding** -- every stream gets its own seed derived from
  ``(base_seed, stream_id)`` via :func:`stream_seed` (CRC32 of the id into
  a :class:`numpy.random.SeedSequence`), so a stream's result never depends
  on which worker ran it, what ran before it, or how many workers exist.
- **Load-aware sharding** -- shards come from
  :func:`repro.parallel.sharding.plan_shards`: a round-robin deal
  rebalanced by deterministic virtual-time work stealing (steal
  decisions are a pure function of the streams' frame counts and the
  fleet seed -- never wall clock), so the plan is bit-identical on any
  machine and results are independent of it by construction.
- **Shared-memory transport** -- frames reach workers through a
  per-worker :class:`~repro.parallel.transport.FrameRing`
  (``multiprocessing.shared_memory``): the parent copies each stream's
  frame block into a ring slot once, the worker maps it as a zero-copy
  numpy view, and slot ownership is handed back explicitly after the
  stream completes.  Only small results and descriptors ever travel
  through pipes.  Frames are fed from a per-worker dispatcher thread
  while the parent drains every result pipe concurrently, so a backlog
  on either side (large pickled results, hundreds of queued
  descriptors) can never deadlock a run.  ``transport="pipe"`` selects
  the legacy pickled-pipe path, kept as the reference the equivalence
  suite tests the ring against.
- **Checkpoint recovery** -- with a ``checkpoint_dir``, each worker
  persists its session every ``checkpoint_every`` frames using the
  :mod:`repro.core.checkpoint` archive format (plus a ``fleet`` manifest
  entry recording how many stream frames were consumed).  Checkpoint
  state is detached from the shared-memory segment first
  (:func:`repro.runtime.snapshots.detach_arrays`), so archives never
  alias ring slots.  A crashed worker's unfinished tasks are
  re-dispatched; the retry restores the last checkpoint and resumes
  mid-stream.  Because the pipeline's batched path is bit-identical for
  any chunking, a resumed stream produces exactly the records an
  uninterrupted run would.
- **Fault injection** -- a task may carry ``crash_at_frame``; the worker
  running it dies (``os._exit`` in a subprocess,
  :class:`SimulatedWorkerCrash` in-process) after consuming that many
  frames, *on the first attempt only*.  Tests use this to prove the
  recovery path bit-exact.

Workers are forked, so factories may close over unpicklable state; only
per-task results must pickle.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.checkpoint import apply_session_state, session_state
from repro.core.pipeline import DriftAwareAnalytics, PipelineResult
from repro.errors import ConfigurationError, FleetError
from repro.obs.report import merge_telemetry
from repro.nn.serialization import load_manifest_archive, save_manifest_archive
from repro.parallel.sharding import ShardPlan, Steal, plan_shards
from repro.parallel.transport import TRANSPORTS, make_transport
from repro.rng import stable_hash
from repro.runtime.snapshots import detach_arrays

_CRASH_EXIT_CODE = 87

#: How long (seconds) the dispatcher waits for a feeder thread after
#: aborting its transport.  An aborted/broken push returns almost
#: immediately; the margin only covers a pathologically slow scheduler.
_FEEDER_JOIN_S = 10.0


class SimulatedWorkerCrash(Exception):
    """Raised (in-process) or converted to a hard exit (subprocess) when a
    task's ``crash_at_frame`` fault fires.  Not a :class:`ReproError`: the
    executor's recovery machinery must treat it exactly like a real worker
    death, not like a library error."""


def stream_seed(base_seed: int, stream_id: str) -> int:
    """Deterministic per-stream seed from the fleet seed and the stream id.

    Uses :func:`repro.rng.stable_hash` (CRC32) rather than ``hash`` so the
    derivation is identical across processes and interpreter runs.
    """
    sequence = np.random.SeedSequence(
        [int(base_seed), stable_hash(stream_id)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


@dataclass
class FleetTask:
    """One camera stream to process.

    ``crash_at_frame`` injects a worker crash after that many frames have
    been consumed (first attempt only) -- a test hook for the recovery path.
    """

    stream_id: str
    frames: np.ndarray
    crash_at_frame: Optional[int] = None


def task_load(task: FleetTask) -> int:
    """A task's virtual load for the shard planner: its frame count."""
    return int(np.asarray(task.frames).shape[0])


@dataclass
class FleetTaskResult:
    """Outcome of one stream: the pipeline result plus recovery telemetry."""

    stream_id: str
    result: PipelineResult
    attempts: int = 1
    resumed_at: Optional[int] = None


@dataclass
class _TaskFailure:
    """A real (non-simulated) error inside a worker, reported to the
    parent so it can fail fast instead of burning restarts."""

    stream_id: str
    error: str


@dataclass
class _ShardEntry:
    """What a worker needs to know about one task: everything except the
    frames, which arrive through the frame transport."""

    index: int
    stream_id: str
    attempt: int
    crash_at_frame: Optional[int]


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one forked worker: its process, the
    result pipe, the frame transport, the shard it owns, and the feeder
    thread streaming frames into it."""

    proc: object
    conn: object
    channel: object
    shard: List[Tuple[int, int]]
    entries: List[_ShardEntry]
    frames: List[np.ndarray]
    feeder: Optional[threading.Thread] = None
    finished: Set[int] = field(default_factory=set)


PipelineFactory = Callable[[FleetTask, int], DriftAwareAnalytics]


def fleet_telemetry(
        results: Sequence[FleetTaskResult]) -> Optional[dict]:
    """Merge per-stream telemetry summaries into one fleet summary.

    Each worker's pipeline carries its own recorder; its summary travels
    back inside :attr:`PipelineResult.telemetry`.  Merging in submission
    order (the order :meth:`FleetExecutor.run` already guarantees) makes
    the fleet-level summary independent of worker count and scheduling:
    counters, event counts, histogram buckets and span aggregates add,
    so ``workers=0`` and ``workers=N`` produce the same document.

    Returns ``None`` when no stream carried telemetry (pipelines built
    without a recorder).  Raises :class:`~repro.errors.TelemetryError`
    when shard summaries are incompatible (e.g. histogram boundary
    mismatch between factory configurations).
    """
    summaries = [r.result.telemetry["summary"] for r in results
                 if r.result.telemetry is not None]
    if not summaries:
        return None
    return merge_telemetry(summaries)


def _checkpoint_path(checkpoint_dir: str, task: FleetTask) -> str:
    return os.path.join(checkpoint_dir, f"{task.stream_id}.fleet.npz")


def _save_fleet_checkpoint(path: str, pipeline: DriftAwareAnalytics,
                           task: FleetTask, consumed: int) -> None:
    manifest, arrays = session_state(pipeline)
    # never let a checkpoint alias the shared-memory ring: a slot can be
    # recycled (or the segment unlinked) before the archive is reloaded
    arrays = detach_arrays(arrays)
    manifest["fleet"] = {"stream_id": task.stream_id,
                         "frames_consumed": int(consumed)}
    save_manifest_archive(path, manifest, arrays)


def _run_task(task: FleetTask, factory: PipelineFactory, base_seed: int,
              batch_size: int, checkpoint_dir: Optional[str],
              checkpoint_every: Optional[int], attempt: int,
              in_process: bool) -> FleetTaskResult:
    """Process one stream to completion, checkpointing along the way.

    Resumes from the stream's checkpoint when one exists (written by a
    previous attempt); honours ``crash_at_frame`` on attempt 0 only.
    """
    pipeline = factory(task, stream_seed(base_seed, task.stream_id))
    frames = np.asarray(task.frames, dtype=np.float64)
    total = frames.shape[0]
    ckpt = (_checkpoint_path(checkpoint_dir, task)
            if checkpoint_dir is not None else None)
    consumed = 0
    resumed_at = None
    if ckpt is not None and os.path.exists(ckpt):
        manifest, arrays = load_manifest_archive(ckpt)
        fleet_meta = manifest.get("fleet")
        if not fleet_meta or fleet_meta.get("stream_id") != task.stream_id:
            raise FleetError(
                f"checkpoint {ckpt} does not belong to stream "
                f"{task.stream_id!r}")
        apply_session_state(pipeline, manifest, arrays)
        consumed = int(fleet_meta["frames_consumed"])
        resumed_at = consumed
    else:
        pipeline.start()
    crash_at = task.crash_at_frame if attempt == 0 else None
    while consumed < total:
        stop = total
        if checkpoint_every is not None:
            stop = min(stop, consumed + checkpoint_every
                       - consumed % checkpoint_every)
        if crash_at is not None and consumed < crash_at:
            stop = min(stop, crash_at)
        pipeline.step_batch(frames[consumed:stop], batch_size=batch_size)
        consumed = stop
        at_boundary = (checkpoint_every is not None
                       and consumed % checkpoint_every == 0)
        if ckpt is not None and (at_boundary or consumed == total):
            _save_fleet_checkpoint(ckpt, pipeline, task, consumed)
        if crash_at is not None and consumed == crash_at:
            if in_process:
                raise SimulatedWorkerCrash(
                    f"stream {task.stream_id!r} crashed at frame {crash_at}")
            os._exit(_CRASH_EXIT_CODE)
    pipeline.flush()
    return FleetTaskResult(stream_id=task.stream_id,
                           result=pipeline.result(),
                           attempts=attempt + 1,
                           resumed_at=resumed_at)


def _worker_main(conn, channel, entries: List[_ShardEntry],
                 factory: PipelineFactory, base_seed: int, batch_size: int,
                 checkpoint_dir: Optional[str],
                 checkpoint_every: Optional[int]) -> None:
    """Subprocess body: run a shard of tasks, stream results back.

    Frames arrive through ``channel`` (one block per task, in shard
    order) as zero-copy views; each slot is handed back as soon as its
    stream's result has been pickled onto the result pipe.
    """
    try:
        # drop the inherited producer-side descriptor end so a dead
        # parent breaks pop() instead of orphaning this worker
        channel.close_producer()
        for entry in entries:
            item = channel.pop()
            if item is None:
                raise FleetError(
                    f"frame transport closed before stream "
                    f"{entry.stream_id!r} arrived")
            meta, frames = item
            if meta.key != entry.stream_id:
                raise FleetError(
                    f"frame transport out of order: expected "
                    f"{entry.stream_id!r}, got {meta.key!r}")
            task = FleetTask(stream_id=entry.stream_id, frames=frames,
                             crash_at_frame=entry.crash_at_frame)
            try:
                result = _run_task(task, factory, base_seed, batch_size,
                                   checkpoint_dir, checkpoint_every,
                                   entry.attempt, in_process=False)
            except Exception as exc:  # noqa: BLE001 - reported to parent
                conn.send((entry.index,
                           _TaskFailure(entry.stream_id, repr(exc))))
                channel.release(meta)
                continue
            conn.send((entry.index, result))
            channel.release(meta)
        conn.send(None)  # shard complete
    finally:
        conn.close()
        channel.close()


class FleetExecutor:
    """Run a fleet of camera streams with deterministic results.

    Parameters
    ----------
    factory:
        ``(task, seed) -> DriftAwareAnalytics`` -- builds a fresh pipeline
        for a stream.  Called once per attempt, inside the worker; the
        ``seed`` argument is the task's :func:`stream_seed` and should feed
        every stochastic knob of the pipeline so streams stay independent.
    workers:
        ``0`` runs every task in-process (the deterministic reference
        path); ``N >= 1`` forks ``N`` worker processes over the planned
        shards.
    batch_size:
        Chunk size for the pipeline's batched monitor path.
    checkpoint_dir / checkpoint_every:
        Enable periodic checkpoints every that many stream frames; required
        for crash recovery to resume rather than restart.
    max_restarts:
        How many times a crashed task may be re-dispatched before the run
        fails with :class:`FleetError`.
    base_seed:
        Fleet-level seed from which every per-stream seed is derived (it
        also seeds the shard planner's tie-break permutation).
    transport:
        ``"shm"`` (default) moves frames through per-worker shared-memory
        rings; ``"pipe"`` is the legacy pickled-pipe path kept for
        equivalence testing.
    steal:
        ``False`` disables the virtual-time work-stealing rebalance and
        dispatches the plain round-robin shards.
    steal_order:
        Explicit victim tie-break permutation forwarded to
        :func:`~repro.parallel.sharding.plan_shards`; the determinism
        suite forces adversarial orders through it.
    """

    def __init__(self, factory: PipelineFactory, workers: int = 0,
                 batch_size: int = 64, checkpoint_dir: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 max_restarts: int = 1, base_seed: int = 0,
                 transport: str = "shm", steal: bool = True,
                 steal_order: Optional[Sequence[int]] = None) -> None:
        if workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative: {workers}")
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive: {batch_size}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ConfigurationError(
                f"checkpoint_every must be positive: {checkpoint_every}")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir")
        if max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be non-negative: {max_restarts}")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}")
        self.factory = factory
        self.workers = workers
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.base_seed = base_seed
        self.transport = transport
        self.steal = steal
        self.steal_order = (list(steal_order)
                            if steal_order is not None else None)
        #: Shard plans of the most recent :meth:`run`, one per dispatch
        #: round, with task indices in submission-order terms.  Purely
        #: observational -- the benchmark harness and the determinism
        #: suite read them.
        self.last_plans: List[ShardPlan] = []

    # ------------------------------------------------------------------
    def plan_for(self, tasks: Sequence[FleetTask],
                 workers: Optional[int] = None) -> ShardPlan:
        """The shard plan :meth:`run` would execute for ``tasks`` (first
        dispatch round, before any crash re-dispatch)."""
        count = self.workers if workers is None else workers
        count = max(1, min(count, len(tasks))) if tasks else 1
        # mirror _run_sharded: an explicit steal_order only applies when
        # the effective worker count equals the configured one; a round
        # clamped to fewer workers falls back to the seeded permutation
        return plan_shards([task_load(task) for task in tasks], count,
                           seed=self.base_seed, steal=self.steal,
                           steal_order=(self.steal_order
                                        if count == self.workers else None))

    def _clear_checkpoints(self, tasks: Sequence[FleetTask]) -> None:
        if self.checkpoint_dir is None:
            return
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        for task in tasks:
            path = _checkpoint_path(self.checkpoint_dir, task)
            if os.path.exists(path):
                os.remove(path)

    def _run_one(self, task: FleetTask, attempt: int) -> FleetTaskResult:
        return _run_task(task, self.factory, self.base_seed,
                         self.batch_size, self.checkpoint_dir,
                         self.checkpoint_every, attempt, in_process=True)

    def _run_in_process(
            self, tasks: Sequence[FleetTask]) -> List[FleetTaskResult]:
        results: List[FleetTaskResult] = []
        for task in tasks:
            attempt = 0
            while True:
                try:
                    results.append(self._run_one(task, attempt))
                    break
                except SimulatedWorkerCrash as exc:
                    attempt += 1
                    if attempt > self.max_restarts:
                        raise FleetError(
                            f"stream {task.stream_id!r} exhausted "
                            f"{self.max_restarts} restart(s)") from exc
        return results

    # ------------------------------------------------------------------
    def _remap_plan(self, plan: ShardPlan,
                    pending: List[Tuple[int, int]]) -> ShardPlan:
        """Translate a plan over ``pending`` positions into submission
        task indices for external consumers."""
        lookup = [index for index, _ in pending]
        return ShardPlan(
            workers=plan.workers,
            loads=list(plan.loads),
            assignments=[[lookup[i] for i in shard]
                         for shard in plan.assignments],
            initial=[[lookup[i] for i in shard] for shard in plan.initial],
            steals=[Steal(virtual_time=s.virtual_time, thief=s.thief,
                          victim=s.victim, task_index=lookup[s.task_index])
                    for s in plan.steals])

    @staticmethod
    def _feed_frames(channel, entries: List[_ShardEntry],
                     frames: List[np.ndarray]) -> None:
        """Feeder-thread body: stream a shard's frame blocks into its
        transport.  Runs beside the dispatcher's result drain so neither
        side ever waits on the other.  A dead worker surfaces here as
        :class:`BrokenPipeError` (its transport ends died with it) or
        :class:`FleetError` (ring aborted / push timeout); recovery is
        driven off the result pipe, so the feeder just stops feeding and
        lets the drain loop observe the death."""
        try:
            for entry, block in zip(entries, frames):
                channel.push(entry.stream_id, block)
            channel.close_send()
        except (OSError, FleetError):
            pass

    def _dispatch_worker(self, context, tasks: Sequence[FleetTask],
                         shard: List[Tuple[int, int]]) -> "_WorkerHandle":
        """Fork one worker for ``shard`` (``(task_index, attempt)`` in
        execution order).  Frames are *not* pushed here: the caller
        starts a feeder thread per handle once every worker has forked,
        so no transport is mid-push while later workers fork."""
        frames = [np.asarray(tasks[index].frames, dtype=np.float64)
                  for index, _ in shard]
        slot_bytes = max((f.nbytes for f in frames), default=0)
        channel = make_transport(self.transport, context,
                                 slots=max(1, len(shard)),
                                 slot_bytes=slot_bytes)
        entries = [_ShardEntry(index=index,
                               stream_id=tasks[index].stream_id,
                               attempt=attempt,
                               crash_at_frame=tasks[index].crash_at_frame)
                   for index, attempt in shard]
        parent_conn, child_conn = context.Pipe(duplex=False)
        proc = context.Process(
            target=_worker_main,
            args=(child_conn, channel, entries, self.factory,
                  self.base_seed, self.batch_size, self.checkpoint_dir,
                  self.checkpoint_every))
        proc.start()
        child_conn.close()
        # leave the worker's inherited copy as the only consumer end so
        # a worker death breaks the frame transport under a blocked push
        channel.close_consumer()
        return _WorkerHandle(proc=proc, conn=parent_conn, channel=channel,
                             shard=[tuple(item) for item in shard],
                             entries=entries, frames=frames)

    def _run_sharded(self,
                     tasks: Sequence[FleetTask]) -> List[FleetTaskResult]:
        context = multiprocessing.get_context("fork")
        done: Dict[int, FleetTaskResult] = {}
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
        self.last_plans = []
        while pending:
            worker_count = min(self.workers, len(pending))
            plan = plan_shards(
                [task_load(tasks[index]) for index, _ in pending],
                worker_count, seed=self.base_seed, steal=self.steal,
                steal_order=(self.steal_order
                             if worker_count == self.workers else None))
            self.last_plans.append(self._remap_plan(plan, pending))
            shards: List[List[Tuple[int, int]]] = [
                [tuple(pending[position]) for position in assignment]
                for assignment in plan.assignments]
            handles = [self._dispatch_worker(context, tasks, shard)
                       for shard in shards if shard]
            # feed frames from background threads, started only after
            # every worker has forked: the dispatcher must be free to
            # drain result pipes the whole time -- a worker blocked
            # sending a large result into an undrained pipe would
            # otherwise deadlock against a parent blocked pushing frames
            # (or descriptors) into a full transport
            for handle in handles:
                handle.feeder = threading.Thread(
                    target=self._feed_frames,
                    args=(handle.channel, handle.entries, handle.frames),
                    daemon=True)
                handle.feeder.start()
            failure: Optional[_TaskFailure] = None
            active = {handle.conn: handle for handle in handles}
            while active:
                for conn in mp_connection.wait(list(active)):
                    handle = active[conn]
                    try:
                        message = conn.recv()
                    except EOFError:
                        del active[conn]  # worker died mid-shard
                        continue
                    if message is None:
                        del active[conn]  # shard complete
                        continue
                    index, payload = message
                    handle.finished.add(index)
                    if isinstance(payload, _TaskFailure):
                        failure = failure or payload
                    else:
                        done[index] = payload
            crashed: List[Tuple[int, int]] = []
            for handle in handles:
                handle.conn.close()
                # unwedge a feeder still blocked on slots a dead worker
                # will never release, then reap both
                handle.channel.abort()
                handle.feeder.join(timeout=_FEEDER_JOIN_S)
                handle.proc.join()
                handle.channel.unlink()
                unfinished = [(index, attempt)
                              for index, attempt in handle.shard
                              if index not in handle.finished
                              and index not in done]
                # only the first unfinished task was actually running when
                # the worker died; later ones never started, so their
                # attempt counter (and crash injection) must not advance
                for position, (index, attempt) in enumerate(unfinished):
                    crashed.append(
                        (index, attempt + 1 if position == 0 else attempt))
            if failure is not None:
                raise FleetError(
                    f"stream {failure.stream_id!r} failed in a worker: "
                    f"{failure.error}")
            over_budget = [index for index, attempt in crashed
                           if attempt > self.max_restarts]
            if over_budget:
                names = ", ".join(
                    repr(tasks[i].stream_id) for i in over_budget)
                raise FleetError(
                    f"stream(s) {names} exhausted "
                    f"{self.max_restarts} restart(s)")
            crashed.sort()
            pending = crashed
        return [done[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[FleetTask]) -> List[FleetTaskResult]:
        """Process every task; returns results in submission order.

        The merge is deterministic by construction: stream results are
        keyed by task index, so worker scheduling, shard layout and
        completion order never reorder (or alter) the output.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        ids = [task.stream_id for task in tasks]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(
                f"stream ids must be unique, got {ids}")
        self._clear_checkpoints(tasks)
        if self.workers == 0:
            self.last_plans = []
            return self._run_in_process(tasks)
        return self._run_sharded(tasks)
