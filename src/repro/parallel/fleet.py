"""Sharded fleet execution of drift-aware camera pipelines.

:class:`FleetExecutor` runs one :class:`~repro.core.pipeline.\
DriftAwareAnalytics` session per camera stream, sharded round-robin across
``multiprocessing`` workers (or in-process with ``workers=0``), and merges
the per-stream results in submission order.  Reproducibility is the design
constraint throughout:

- **Seeding** -- every stream gets its own seed derived from
  ``(base_seed, stream_id)`` via :func:`stream_seed` (CRC32 of the id into
  a :class:`numpy.random.SeedSequence`), so a stream's result never depends
  on which worker ran it, what ran before it, or how many workers exist.
- **Checkpoint recovery** -- with a ``checkpoint_dir``, each worker
  persists its session every ``checkpoint_every`` frames using the
  :mod:`repro.core.checkpoint` archive format (plus a ``fleet`` manifest
  entry recording how many stream frames were consumed).  A crashed
  worker's unfinished tasks are re-dispatched; the retry restores the last
  checkpoint and resumes mid-stream.  Because the pipeline's batched path
  is bit-identical for any chunking, a resumed stream produces exactly the
  records an uninterrupted run would.
- **Fault injection** -- a task may carry ``crash_at_frame``; the worker
  running it dies (``os._exit`` in a subprocess,
  :class:`SimulatedWorkerCrash` in-process) after consuming that many
  frames, *on the first attempt only*.  Tests use this to prove the
  recovery path bit-exact.

Workers are forked (results travel back through pipes), so factories may
close over unpicklable state; only per-task results must pickle.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.checkpoint import apply_session_state, session_state
from repro.core.pipeline import DriftAwareAnalytics, PipelineResult
from repro.errors import ConfigurationError, FleetError
from repro.obs.report import merge_telemetry
from repro.nn.serialization import load_manifest_archive, save_manifest_archive
from repro.rng import stable_hash

_CRASH_EXIT_CODE = 87


class SimulatedWorkerCrash(Exception):
    """Raised (in-process) or converted to a hard exit (subprocess) when a
    task's ``crash_at_frame`` fault fires.  Not a :class:`ReproError`: the
    executor's recovery machinery must treat it exactly like a real worker
    death, not like a library error."""


def stream_seed(base_seed: int, stream_id: str) -> int:
    """Deterministic per-stream seed from the fleet seed and the stream id.

    Uses :func:`repro.rng.stable_hash` (CRC32) rather than ``hash`` so the
    derivation is identical across processes and interpreter runs.
    """
    sequence = np.random.SeedSequence(
        [int(base_seed), stable_hash(stream_id)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


@dataclass
class FleetTask:
    """One camera stream to process.

    ``crash_at_frame`` injects a worker crash after that many frames have
    been consumed (first attempt only) -- a test hook for the recovery path.
    """

    stream_id: str
    frames: np.ndarray
    crash_at_frame: Optional[int] = None


@dataclass
class FleetTaskResult:
    """Outcome of one stream: the pipeline result plus recovery telemetry."""

    stream_id: str
    result: PipelineResult
    attempts: int = 1
    resumed_at: Optional[int] = None


@dataclass
class _TaskFailure:
    """A real (non-simulated) error inside a worker, reported to the
    parent so it can fail fast instead of burning restarts."""

    stream_id: str
    error: str


PipelineFactory = Callable[[FleetTask, int], DriftAwareAnalytics]


def fleet_telemetry(
        results: Sequence[FleetTaskResult]) -> Optional[dict]:
    """Merge per-stream telemetry summaries into one fleet summary.

    Each worker's pipeline carries its own recorder; its summary travels
    back inside :attr:`PipelineResult.telemetry`.  Merging in submission
    order (the order :meth:`FleetExecutor.run` already guarantees) makes
    the fleet-level summary independent of worker count and scheduling:
    counters, event counts, histogram buckets and span aggregates add,
    so ``workers=0`` and ``workers=N`` produce the same document.

    Returns ``None`` when no stream carried telemetry (pipelines built
    without a recorder).  Raises :class:`~repro.errors.TelemetryError`
    when shard summaries are incompatible (e.g. histogram boundary
    mismatch between factory configurations).
    """
    summaries = [r.result.telemetry["summary"] for r in results
                 if r.result.telemetry is not None]
    if not summaries:
        return None
    return merge_telemetry(summaries)


def _checkpoint_path(checkpoint_dir: str, task: FleetTask) -> str:
    return os.path.join(checkpoint_dir, f"{task.stream_id}.fleet.npz")


def _save_fleet_checkpoint(path: str, pipeline: DriftAwareAnalytics,
                           task: FleetTask, consumed: int) -> None:
    manifest, arrays = session_state(pipeline)
    manifest["fleet"] = {"stream_id": task.stream_id,
                         "frames_consumed": int(consumed)}
    save_manifest_archive(path, manifest, arrays)


def _run_task(task: FleetTask, factory: PipelineFactory, base_seed: int,
              batch_size: int, checkpoint_dir: Optional[str],
              checkpoint_every: Optional[int], attempt: int,
              in_process: bool) -> FleetTaskResult:
    """Process one stream to completion, checkpointing along the way.

    Resumes from the stream's checkpoint when one exists (written by a
    previous attempt); honours ``crash_at_frame`` on attempt 0 only.
    """
    pipeline = factory(task, stream_seed(base_seed, task.stream_id))
    frames = np.asarray(task.frames, dtype=np.float64)
    total = frames.shape[0]
    ckpt = (_checkpoint_path(checkpoint_dir, task)
            if checkpoint_dir is not None else None)
    consumed = 0
    resumed_at = None
    if ckpt is not None and os.path.exists(ckpt):
        manifest, arrays = load_manifest_archive(ckpt)
        fleet_meta = manifest.get("fleet")
        if not fleet_meta or fleet_meta.get("stream_id") != task.stream_id:
            raise FleetError(
                f"checkpoint {ckpt} does not belong to stream "
                f"{task.stream_id!r}")
        apply_session_state(pipeline, manifest, arrays)
        consumed = int(fleet_meta["frames_consumed"])
        resumed_at = consumed
    else:
        pipeline.start()
    crash_at = task.crash_at_frame if attempt == 0 else None
    while consumed < total:
        stop = total
        if checkpoint_every is not None:
            stop = min(stop, consumed + checkpoint_every
                       - consumed % checkpoint_every)
        if crash_at is not None and consumed < crash_at:
            stop = min(stop, crash_at)
        pipeline.step_batch(frames[consumed:stop], batch_size=batch_size)
        consumed = stop
        at_boundary = (checkpoint_every is not None
                       and consumed % checkpoint_every == 0)
        if ckpt is not None and (at_boundary or consumed == total):
            _save_fleet_checkpoint(ckpt, pipeline, task, consumed)
        if crash_at is not None and consumed == crash_at:
            if in_process:
                raise SimulatedWorkerCrash(
                    f"stream {task.stream_id!r} crashed at frame {crash_at}")
            os._exit(_CRASH_EXIT_CODE)
    pipeline.flush()
    return FleetTaskResult(stream_id=task.stream_id,
                           result=pipeline.result(),
                           attempts=attempt + 1,
                           resumed_at=resumed_at)


def _worker_main(conn, entries: List[Tuple[int, FleetTask, int]],
                 factory: PipelineFactory, base_seed: int, batch_size: int,
                 checkpoint_dir: Optional[str],
                 checkpoint_every: Optional[int]) -> None:
    """Subprocess body: run a shard of tasks, stream results back."""
    try:
        for index, task, attempt in entries:
            try:
                result = _run_task(task, factory, base_seed, batch_size,
                                   checkpoint_dir, checkpoint_every,
                                   attempt, in_process=False)
            except Exception as exc:  # noqa: BLE001 - reported to parent
                conn.send((index, _TaskFailure(task.stream_id, repr(exc))))
                continue
            conn.send((index, result))
        conn.send(None)  # shard complete
    finally:
        conn.close()


class FleetExecutor:
    """Run a fleet of camera streams with deterministic results.

    Parameters
    ----------
    factory:
        ``(task, seed) -> DriftAwareAnalytics`` -- builds a fresh pipeline
        for a stream.  Called once per attempt, inside the worker; the
        ``seed`` argument is the task's :func:`stream_seed` and should feed
        every stochastic knob of the pipeline so streams stay independent.
    workers:
        ``0`` runs every task in-process (the deterministic reference
        path); ``N >= 1`` forks ``N`` worker processes and shards tasks
        round-robin.
    batch_size:
        Chunk size for the pipeline's batched monitor path.
    checkpoint_dir / checkpoint_every:
        Enable periodic checkpoints every that many stream frames; required
        for crash recovery to resume rather than restart.
    max_restarts:
        How many times a crashed task may be re-dispatched before the run
        fails with :class:`FleetError`.
    base_seed:
        Fleet-level seed from which every per-stream seed is derived.
    """

    def __init__(self, factory: PipelineFactory, workers: int = 0,
                 batch_size: int = 64, checkpoint_dir: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 max_restarts: int = 1, base_seed: int = 0) -> None:
        if workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative: {workers}")
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive: {batch_size}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ConfigurationError(
                f"checkpoint_every must be positive: {checkpoint_every}")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir")
        if max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be non-negative: {max_restarts}")
        self.factory = factory
        self.workers = workers
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    def _clear_checkpoints(self, tasks: Sequence[FleetTask]) -> None:
        if self.checkpoint_dir is None:
            return
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        for task in tasks:
            path = _checkpoint_path(self.checkpoint_dir, task)
            if os.path.exists(path):
                os.remove(path)

    def _run_one(self, task: FleetTask, attempt: int) -> FleetTaskResult:
        return _run_task(task, self.factory, self.base_seed,
                         self.batch_size, self.checkpoint_dir,
                         self.checkpoint_every, attempt, in_process=True)

    def _run_in_process(
            self, tasks: Sequence[FleetTask]) -> List[FleetTaskResult]:
        results: List[FleetTaskResult] = []
        for task in tasks:
            attempt = 0
            while True:
                try:
                    results.append(self._run_one(task, attempt))
                    break
                except SimulatedWorkerCrash as exc:
                    attempt += 1
                    if attempt > self.max_restarts:
                        raise FleetError(
                            f"stream {task.stream_id!r} exhausted "
                            f"{self.max_restarts} restart(s)") from exc
        return results

    def _run_sharded(self,
                     tasks: Sequence[FleetTask]) -> List[FleetTaskResult]:
        context = multiprocessing.get_context("fork")
        done: Dict[int, FleetTaskResult] = {}
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
        while pending:
            worker_count = min(self.workers, len(pending))
            shards: List[List[Tuple[int, FleetTask, int]]] = [
                [] for _ in range(worker_count)]
            for position, (index, attempt) in enumerate(pending):
                shards[position % worker_count].append(
                    (index, tasks[index], attempt))
            procs = []
            for shard in shards:
                parent_conn, child_conn = context.Pipe(duplex=False)
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn, shard, self.factory, self.base_seed,
                          self.batch_size, self.checkpoint_dir,
                          self.checkpoint_every))
                proc.start()
                child_conn.close()
                procs.append((proc, parent_conn, shard))
            crashed: List[Tuple[int, int]] = []
            failure: Optional[_TaskFailure] = None
            for proc, conn, shard in procs:
                finished = set()
                while True:
                    try:
                        message = conn.recv()
                    except EOFError:
                        break  # worker died mid-shard
                    if message is None:
                        break
                    index, payload = message
                    if isinstance(payload, _TaskFailure):
                        failure = failure or payload
                        finished.add(index)
                        continue
                    done[index] = payload
                    finished.add(index)
                conn.close()
                proc.join()
                unfinished = [(index, attempt)
                              for index, task, attempt in shard
                              if index not in finished and index not in done]
                # only the first unfinished task was actually running when
                # the worker died; later ones never started, so their
                # attempt counter (and crash injection) must not advance
                for position, (index, attempt) in enumerate(unfinished):
                    crashed.append(
                        (index, attempt + 1 if position == 0 else attempt))
            if failure is not None:
                raise FleetError(
                    f"stream {failure.stream_id!r} failed in a worker: "
                    f"{failure.error}")
            over_budget = [index for index, attempt in crashed
                           if attempt > self.max_restarts]
            if over_budget:
                names = ", ".join(
                    repr(tasks[i].stream_id) for i in over_budget)
                raise FleetError(
                    f"stream(s) {names} exhausted "
                    f"{self.max_restarts} restart(s)")
            pending = crashed
        return [done[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[FleetTask]) -> List[FleetTaskResult]:
        """Process every task; returns results in submission order.

        The merge is deterministic by construction: stream results are
        keyed by task index, so worker scheduling and completion order
        never reorder (or alter) the output.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        ids = [task.stream_id for task in tasks]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(
                f"stream ids must be unique, got {ids}")
        self._clear_checkpoints(tasks)
        if self.workers == 0:
            return self._run_in_process(tasks)
        return self._run_sharded(tasks)
