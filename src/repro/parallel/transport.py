"""Frame transports between the fleet parent and its workers.

Two implementations of one contract move frame batches from the
dispatching parent into worker processes:

- :class:`FrameRing` -- the shared-memory path.  One
  :mod:`multiprocessing.shared_memory` segment per worker is divided
  into fixed-capacity slots; the parent copies a frame block into a free
  slot exactly once, and the worker maps it as a **zero-copy read-only
  numpy view**.  Ownership is handed off explicitly: a slot belongs to
  the parent until :meth:`FrameRing.push` publishes its descriptor, then
  to the worker until :meth:`FrameRing.release` returns it to the free
  pool.  A counting semaphore tracks free slots (the parent blocks when
  the ring is full) and a descriptor pipe carries the tiny
  :class:`BlockMeta` records in FIFO order, so the byte payload never
  travels through a pipe.
- :class:`PipeChannel` -- the legacy path (frames pickled through a
  ``multiprocessing`` pipe, one copy on each side).  It survives as the
  reference implementation the property suite equivalence-tests the
  ring against; :class:`~repro.parallel.fleet.FleetExecutor` accepts
  ``transport="pipe"`` to run on it.

Both transports preserve ``dtype`` and ``shape`` bit-exactly.
Non-contiguous inputs are compacted to C order on ``push`` (same bits,
canonical strides); ``object`` dtypes are rejected -- a frame block must
be plain bytes to cross a process boundary without pickling.

The ring is safe under the fleet's ``fork`` start method: workers
inherit the parent's mapping, so the segment is attached exactly once
and the parent alone unlinks it (a worker killed mid-shard cannot leak
the segment).  Process death is loud, not a wedge: after the fork each
side drops its copy of the *other* side's descriptor end
(:meth:`FrameRing.close_consumer` in the parent,
:meth:`FrameRing.close_producer` in the worker), so a dead worker
breaks the descriptor pipe under a blocked ``push`` and a dead parent
surfaces as ``EOFError`` in ``pop``; :meth:`FrameRing.abort` cancels a
push still waiting on slots a corpse will never release.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, FleetError

#: Transport kinds understood by the fleet executor.
TRANSPORTS: Tuple[str, ...] = ("shm", "pipe")

#: How long (seconds) a push may wait for a free slot before the
#: transport declares the consumer wedged.  Generous: the fleet sizes
#: rings to their shard, so in practice a push never blocks.
_PUSH_TIMEOUT_S = 60.0

#: Poll interval for a push blocked on the slot semaphore, so an
#: :meth:`FrameRing.abort` from another thread is noticed promptly
#: instead of after the full push timeout.
_ABORT_POLL_S = 0.05


@dataclass(frozen=True)
class BlockMeta:
    """Descriptor of one published frame block (travels over the pipe).

    ``slot`` is ``-1`` for pipe-transported blocks (no shared slot to
    hand back); shared-memory blocks carry the slot index the worker
    must eventually :meth:`~FrameRing.release`.
    """

    key: str
    shape: Tuple[int, ...]
    dtype: str
    slot: int = -1


def _as_block(array: np.ndarray) -> np.ndarray:
    """Canonicalise an array for transport: C-contiguous, same bits."""
    arr = np.asarray(array)
    if arr.dtype == object:
        raise ConfigurationError(
            "object-dtype frames cannot cross the frame transport")
    return np.ascontiguousarray(arr)


class FrameRing:
    """A shared-memory ring of frame-block slots with explicit handoff.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context that will fork the consumer (the
        semaphore and descriptor pipe must come from it).
    slots:
        Number of concurrently outstanding blocks.  The fleet sizes this
        to the worker's shard so the parent never blocks; a smaller ring
        exercises backpressure (the property suite does).
    slot_bytes:
        Capacity of each slot; a push larger than this raises
        :class:`FleetError` rather than silently truncating.
    """

    def __init__(self, context, slots: int, slot_bytes: int) -> None:
        if slots <= 0:
            raise ConfigurationError(f"slots must be positive: {slots}")
        if slot_bytes < 0:
            raise ConfigurationError(
                f"slot_bytes must be non-negative: {slot_bytes}")
        self.slots = slots
        # a zero-byte slot still needs an addressable segment
        self.slot_bytes = max(1, slot_bytes)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_bytes)
        self._free = context.Semaphore(slots)
        self._recv, self._send = context.Pipe(duplex=False)
        self._next_slot = 0
        self._next_release = 0
        self._closed = False
        self._unlinked = False
        self._aborted = False

    # -- producer side -------------------------------------------------
    def push(self, key: str, array: np.ndarray) -> BlockMeta:
        """Copy ``array`` into the next free slot and publish it.

        Blocks while the ring is full (every slot owned by the worker);
        raises :class:`FleetError` if no slot frees up within the
        transport timeout -- a wedged consumer -- or as soon as
        :meth:`abort` is called, and :class:`BrokenPipeError` when the
        consumer's descriptor end is gone (a dead worker, once the
        parent has dropped its own copy via :meth:`close_consumer`).
        """
        if self._closed:
            raise FleetError("push on a closed FrameRing")
        if self._aborted:
            raise FleetError("push on an aborted FrameRing")
        block = _as_block(array)
        if block.nbytes > self.slot_bytes:
            raise FleetError(
                f"frame block {key!r} is {block.nbytes} bytes; ring slots "
                f"hold {self.slot_bytes}")
        waited = 0.0
        while not self._free.acquire(timeout=_ABORT_POLL_S):
            if self._aborted:
                raise FleetError(
                    f"frame ring aborted while pushing {key!r}")
            waited += _ABORT_POLL_S
            if waited >= _PUSH_TIMEOUT_S:
                raise FleetError(
                    f"frame ring full for {_PUSH_TIMEOUT_S:.0f}s pushing "
                    f"{key!r}: consumer is not releasing slots")
        if self._aborted:
            # the segment may be unlinked under us any moment; give the
            # slot back and bail before touching the buffer
            self._free.release()
            raise FleetError(f"frame ring aborted while pushing {key!r}")
        slot = self._next_slot
        self._next_slot = (self._next_slot + 1) % self.slots
        offset = slot * self.slot_bytes
        if block.nbytes:
            self._shm.buf[offset:offset + block.nbytes] = block.tobytes()
        meta = BlockMeta(key=key, shape=tuple(block.shape),
                         dtype=block.dtype.str, slot=slot)
        self._send.send(meta)
        return meta

    def close_send(self) -> None:
        """Publish end-of-stream: the consumer's next pop returns None."""
        if not self._closed:
            self._closed = True
            self._send.send(None)

    def abort(self) -> None:
        """Make any blocked (or future) push give up with
        :class:`FleetError` instead of waiting out the full transport
        timeout.  The dispatcher calls this once the consumer is known
        dead: a corpse never releases the slots it holds, so the slot
        semaphore alone would wedge the feeding thread."""
        self._aborted = True

    def close_consumer(self) -> None:
        """Drop this process's copy of the consumer-side descriptor end.

        The dispatching parent calls this right after forking the
        worker, leaving the worker's inherited copy as the only receive
        end: a dead worker then breaks the descriptor pipe, so a
        blocked ``push``/``close_send`` raises :class:`BrokenPipeError`
        instead of wedging.  :meth:`pop` is invalid in this process
        afterwards.
        """
        self._recv.close()

    # -- consumer side -------------------------------------------------
    def close_producer(self) -> None:
        """Drop this process's copy of the producer-side descriptor end
        (worker-side mirror of :meth:`close_consumer`): with it gone, a
        dead parent surfaces as ``EOFError`` in :meth:`pop` rather than
        an orphaned worker blocking forever."""
        self._send.close()

    def pop(self) -> Optional[Tuple[BlockMeta, np.ndarray]]:
        """Receive the next block as a zero-copy read-only view.

        Returns ``None`` at end-of-stream.  The view stays valid until
        :meth:`release` hands its slot back; consumers that outlive the
        handoff must copy first.
        """
        try:
            meta = self._recv.recv()
        except EOFError:
            raise FleetError(
                "frame ring descriptor pipe closed mid-stream") from None
        if meta is None:
            return None
        offset = meta.slot * self.slot_bytes
        view = np.ndarray(meta.shape, dtype=np.dtype(meta.dtype),
                          buffer=self._shm.buf, offset=offset)
        view.flags.writeable = False
        return meta, view

    def release(self, meta: BlockMeta) -> None:
        """Return ``meta``'s slot to the free pool (ownership handoff
        back to the producer).  Views into the slot are invalid after
        this call.

        Slots must come back in pop (FIFO) order: the producer reuses
        them round-robin, so an out-of-order release would let it
        overwrite a block the consumer still holds.  That misuse is a
        loud :class:`FleetError`, never silent corruption.
        """
        if meta.slot != self._next_release:
            raise FleetError(
                f"ring slots must be released in FIFO order: got slot "
                f"{meta.slot}, expected {self._next_release}")
        self._next_release = (self._next_release + 1) % self.slots
        self._free.release()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (worker side of the handshake)."""
        try:
            self._shm.close()
        except BufferError:
            # numpy views still alive; the mapping dies with the process
            pass

    def unlink(self) -> None:
        """Destroy the segment (parent only, exactly once)."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class PipeChannel:
    """The legacy transport: frame blocks pickled through a pipe.

    Same push/pop/release surface as :class:`FrameRing` so the fleet
    worker body is transport-agnostic; ``release`` is a no-op (there is
    no shared slot to hand back) and ``pop`` returns an owned array.
    """

    def __init__(self, context, slots: int = 0, slot_bytes: int = 0) -> None:
        self._recv, self._send = context.Pipe(duplex=False)
        self._closed = False

    # -- producer side -------------------------------------------------
    def push(self, key: str, array: np.ndarray) -> BlockMeta:
        if self._closed:
            raise FleetError("push on a closed PipeChannel")
        block = _as_block(array)
        meta = BlockMeta(key=key, shape=tuple(block.shape),
                         dtype=block.dtype.str, slot=-1)
        self._send.send((meta, block))
        return meta

    def close_send(self) -> None:
        if not self._closed:
            self._closed = True
            self._send.send(None)

    def abort(self) -> None:
        """Nothing to poke: a pipe push blocked on a full buffer
        unblocks with :class:`BrokenPipeError` the moment the worker's
        receive end dies with it (see :meth:`close_consumer`)."""

    def close_consumer(self) -> None:
        """Parent-side: drop the local receive end after forking the
        worker so a dead worker breaks the pipe under a blocked push
        instead of wedging it forever."""
        self._recv.close()

    # -- consumer side -------------------------------------------------
    def close_producer(self) -> None:
        """Worker-side mirror of :meth:`close_consumer`: a dead parent
        surfaces as ``EOFError`` in :meth:`pop`."""
        self._send.close()

    def pop(self) -> Optional[Tuple[BlockMeta, np.ndarray]]:
        try:
            message = self._recv.recv()
        except EOFError:
            raise FleetError(
                "pipe channel closed mid-stream") from None
        if message is None:
            return None
        meta, block = message
        return meta, block

    def release(self, meta: BlockMeta) -> None:
        """No shared slot to hand back; kept for interface parity."""

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


def make_transport(kind: str, context, slots: int, slot_bytes: int):
    """Build the ``kind`` transport (``"shm"`` or ``"pipe"``)."""
    if kind == "shm":
        return FrameRing(context, slots=slots, slot_bytes=slot_bytes)
    if kind == "pipe":
        return PipeChannel(context, slots=slots, slot_bytes=slot_bytes)
    raise ConfigurationError(
        f"transport must be one of {TRANSPORTS}, got {kind!r}")


def drain_all(channel) -> List[Tuple[str, np.ndarray]]:
    """Pop every block until end-of-stream, copying each payload out
    before releasing its slot.  Test/diagnostic helper: the fleet worker
    consumes blocks lazily instead."""
    out: List[Tuple[str, np.ndarray]] = []
    while True:
        item = channel.pop()
        if item is None:
            return out
        meta, view = item
        out.append((meta.key, np.array(view, copy=True)))
        channel.release(meta)
