"""The ``BENCH_pipeline.json`` performance-report schema (v2).

``benchmarks/bench_perf.py`` measures the sequential, batched and fleet
execution modes, runs the fleet scaling sweep (workers x streams over
the deterministic shard planner), and writes its findings as one JSON
document at the repo root.  This module owns the document's contract: a
JSON-Schema definition (:data:`BENCH_SCHEMA`), a dependency-free
validator that enforces it, a v1 upgrade shim
(:func:`upgrade_bench_report`, mirroring the serve report's), and
read/write helpers that refuse to produce or accept a malformed report.
``scripts/check.sh`` validates the committed report on every run, so a
schema drift fails CI rather than silently rotting the benchmark data.

Schema v2 adds the ``scaling`` section: one entry per (workers,
streams) sweep point, carrying the shard plan's deterministic numbers
(``critical_path_frames``, ``balance``, ``steals``) alongside
``speedup_vs_sequential`` -- the fleet x batched speedup the plan
achieves, i.e. the measured batched throughput scaled by the plan's
virtual-time parallelism (total frames over the critical path).  The
plan numbers are bit-reproducible on any machine; the committed
``elapsed_s`` / ``fps`` fields are the build host's wall-clock
measurement of the same point and are optional by contract.

Validation runs on the shared :mod:`repro.obs.schema` walker (the same
one behind the telemetry summary contract).  When the ``jsonschema``
package is importable the document is additionally checked against
:data:`BENCH_SCHEMA` with it, guarding the hand-rolled walker.
"""

from __future__ import annotations

import json

from repro.errors import BenchReportError
from repro.obs.schema import cross_check, validate_document

#: Current report schema version (see :func:`upgrade_bench_report`).
BENCH_SCHEMA_VERSION = 2

_MODE_ENTRY = {
    "type": "object",
    "required": ["frames", "elapsed_s", "fps"],
    "additionalProperties": False,
    "properties": {
        "frames": {"type": "integer", "minimum": 1},
        "elapsed_s": {"type": "number", "exclusiveMinimum": 0},
        "fps": {"type": "number", "exclusiveMinimum": 0},
        "speedup_vs_sequential": {"type": "number", "exclusiveMinimum": 0},
        "workers": {"type": "integer", "minimum": 1},
        "batch_size": {"type": "integer", "minimum": 1},
        "transport": {"type": "string", "enum": ["shm", "pipe"]},
    },
}

_STAGE_ENTRY = {
    "type": "object",
    "required": ["sequential_us_per_frame", "batched_us_per_frame", "speedup"],
    "additionalProperties": False,
    "properties": {
        "sequential_us_per_frame": {"type": "number", "exclusiveMinimum": 0},
        "batched_us_per_frame": {"type": "number", "exclusiveMinimum": 0},
        "speedup": {"type": "number", "exclusiveMinimum": 0},
    },
}

_SCALING_ENTRY = {
    "type": "object",
    "required": ["workers", "streams", "frames", "speedup_vs_sequential"],
    "additionalProperties": False,
    "properties": {
        "workers": {"type": "integer", "minimum": 1},
        "streams": {"type": "integer", "minimum": 1},
        "frames": {"type": "integer", "minimum": 1},
        "speedup_vs_sequential": {"type": "number", "exclusiveMinimum": 0},
        "critical_path_frames": {"type": "integer", "minimum": 1},
        "balance": {"type": "number", "exclusiveMinimum": 0},
        "steals": {"type": "integer", "minimum": 0},
        "elapsed_s": {"type": "number", "exclusiveMinimum": 0},
        "fps": {"type": "number", "exclusiveMinimum": 0},
    },
}

BENCH_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro pipeline performance report",
    "type": "object",
    "required": ["schema_version", "benchmark", "quick", "config",
                 "modes", "stages", "scaling"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer",
                           "enum": [BENCH_SCHEMA_VERSION]},
        "benchmark": {"type": "string"},
        "quick": {"type": "boolean"},
        "config": {
            "type": "object",
            "required": ["streams", "frames_per_stream", "frame_shape",
                         "batch_size", "workers", "reference_size",
                         "latent_dim"],
            "additionalProperties": False,
            "properties": {
                "streams": {"type": "integer", "minimum": 1},
                "frames_per_stream": {"type": "integer", "minimum": 1},
                "frame_shape": {"type": "array",
                                "items": {"type": "integer", "minimum": 1}},
                "batch_size": {"type": "integer", "minimum": 1},
                "workers": {"type": "integer", "minimum": 0},
                "reference_size": {"type": "integer", "minimum": 2},
                "latent_dim": {"type": "integer", "minimum": 1},
                "transport": {"type": "string", "enum": ["shm", "pipe"]},
                "host_cores": {"type": "integer", "minimum": 1},
            },
        },
        "modes": {
            "type": "object",
            "required": ["sequential", "batched", "fleet"],
            "additionalProperties": False,
            "properties": {
                "sequential": _MODE_ENTRY,
                "batched": _MODE_ENTRY,
                "fleet": _MODE_ENTRY,
            },
        },
        "stages": {
            "type": "object",
            "required": ["encode", "pvalue", "martingale", "selection"],
            "additionalProperties": False,
            "properties": {
                "encode": _STAGE_ENTRY,
                "pvalue": _STAGE_ENTRY,
                "martingale": _STAGE_ENTRY,
                "selection": _STAGE_ENTRY,
            },
        },
        "scaling": {"type": "array", "items": _SCALING_ENTRY},
    },
}


def validate_bench_report(report: object) -> None:
    """Raise :class:`BenchReportError` unless ``report`` satisfies
    :data:`BENCH_SCHEMA`; also cross-checks with ``jsonschema`` when that
    package is available."""
    validate_document(report, BENCH_SCHEMA, "bench report", BenchReportError)
    cross_check(report, BENCH_SCHEMA, "bench report", BenchReportError)


def upgrade_bench_report(report: dict) -> dict:
    """Upgrade a v1 pipeline report to the v2 shape (returns a new dict).

    v1 predates the scaling sweep, so its one fleet measurement *is* the
    sweep: the shim synthesises a single ``scaling`` entry from
    ``modes.fleet`` (worker count, stream count, frames and the measured
    speedup), leaving the plan-derived fields absent -- they are optional
    by contract precisely so upgraded documents stay honest about what
    was never measured.  A v2 document passes through unchanged.
    """
    if not isinstance(report, dict):
        raise BenchReportError(
            f"bench report must be an object, got {type(report).__name__}")
    version = report.get("schema_version")
    if version == BENCH_SCHEMA_VERSION:
        return report
    if version != 1:
        raise BenchReportError(
            f"cannot upgrade bench report schema_version {version!r}; "
            f"expected 1 or {BENCH_SCHEMA_VERSION}")
    upgraded = json.loads(json.dumps(report))
    upgraded["schema_version"] = BENCH_SCHEMA_VERSION
    fleet = upgraded.get("modes", {}).get("fleet", {})
    config = upgraded.get("config", {})
    entry = {
        "workers": fleet.get("workers", config.get("workers", 1)) or 1,
        "streams": config.get("streams", 1),
        "frames": fleet.get("frames", 1),
        "speedup_vs_sequential": fleet.get("speedup_vs_sequential", 1.0),
    }
    if "elapsed_s" in fleet:
        entry["elapsed_s"] = fleet["elapsed_s"]
    if "fps" in fleet:
        entry["fps"] = fleet["fps"]
    upgraded.setdefault("scaling", [entry])
    return upgraded


def write_bench_report(path: str, report: dict) -> None:
    """Validate ``report`` and write it to ``path`` as formatted JSON."""
    validate_bench_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_report(path: str) -> dict:
    """Read and validate a report written by :func:`write_bench_report`.

    Legacy v1 documents are transparently upgraded to v2 (see
    :func:`upgrade_bench_report`) before validation, so readers only
    ever see the current shape.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchReportError(
                f"bench report {path} is not valid JSON: {exc}") from exc
    if isinstance(report, dict) and report.get("schema_version") == 1:
        report = upgrade_bench_report(report)
    validate_bench_report(report)
    return report
