"""The ``BENCH_pipeline.json`` performance-report schema.

``benchmarks/bench_perf.py`` measures the sequential, batched and fleet
execution modes and writes its findings as one JSON document at the repo
root.  This module owns the document's contract: a JSON-Schema definition
(:data:`BENCH_SCHEMA`), a dependency-free validator that enforces it, and
read/write helpers that refuse to produce or accept a malformed report.
``scripts/check.sh`` validates the committed report on every run, so a
schema drift fails CI rather than silently rotting the benchmark data.

Validation runs on the shared :mod:`repro.obs.schema` walker (the same
one behind the telemetry summary contract).  When the ``jsonschema``
package is importable the document is additionally checked against
:data:`BENCH_SCHEMA` with it, guarding the hand-rolled walker.
"""

from __future__ import annotations

import json

from repro.errors import BenchReportError
from repro.obs.schema import cross_check, validate_document

_MODE_ENTRY = {
    "type": "object",
    "required": ["frames", "elapsed_s", "fps"],
    "additionalProperties": False,
    "properties": {
        "frames": {"type": "integer", "minimum": 1},
        "elapsed_s": {"type": "number", "exclusiveMinimum": 0},
        "fps": {"type": "number", "exclusiveMinimum": 0},
        "speedup_vs_sequential": {"type": "number", "exclusiveMinimum": 0},
        "workers": {"type": "integer", "minimum": 1},
        "batch_size": {"type": "integer", "minimum": 1},
    },
}

_STAGE_ENTRY = {
    "type": "object",
    "required": ["sequential_us_per_frame", "batched_us_per_frame", "speedup"],
    "additionalProperties": False,
    "properties": {
        "sequential_us_per_frame": {"type": "number", "exclusiveMinimum": 0},
        "batched_us_per_frame": {"type": "number", "exclusiveMinimum": 0},
        "speedup": {"type": "number", "exclusiveMinimum": 0},
    },
}

BENCH_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro pipeline performance report",
    "type": "object",
    "required": ["schema_version", "benchmark", "quick", "config",
                 "modes", "stages"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"type": "integer", "enum": [1]},
        "benchmark": {"type": "string"},
        "quick": {"type": "boolean"},
        "config": {
            "type": "object",
            "required": ["streams", "frames_per_stream", "frame_shape",
                         "batch_size", "workers", "reference_size",
                         "latent_dim"],
            "additionalProperties": False,
            "properties": {
                "streams": {"type": "integer", "minimum": 1},
                "frames_per_stream": {"type": "integer", "minimum": 1},
                "frame_shape": {"type": "array",
                                "items": {"type": "integer", "minimum": 1}},
                "batch_size": {"type": "integer", "minimum": 1},
                "workers": {"type": "integer", "minimum": 0},
                "reference_size": {"type": "integer", "minimum": 2},
                "latent_dim": {"type": "integer", "minimum": 1},
            },
        },
        "modes": {
            "type": "object",
            "required": ["sequential", "batched", "fleet"],
            "additionalProperties": False,
            "properties": {
                "sequential": _MODE_ENTRY,
                "batched": _MODE_ENTRY,
                "fleet": _MODE_ENTRY,
            },
        },
        "stages": {
            "type": "object",
            "required": ["encode", "pvalue", "martingale", "selection"],
            "additionalProperties": False,
            "properties": {
                "encode": _STAGE_ENTRY,
                "pvalue": _STAGE_ENTRY,
                "martingale": _STAGE_ENTRY,
                "selection": _STAGE_ENTRY,
            },
        },
    },
}

def validate_bench_report(report: object) -> None:
    """Raise :class:`BenchReportError` unless ``report`` satisfies
    :data:`BENCH_SCHEMA`; also cross-checks with ``jsonschema`` when that
    package is available."""
    validate_document(report, BENCH_SCHEMA, "bench report", BenchReportError)
    cross_check(report, BENCH_SCHEMA, "bench report", BenchReportError)


def write_bench_report(path: str, report: dict) -> None:
    """Validate ``report`` and write it to ``path`` as formatted JSON."""
    validate_bench_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_report(path: str) -> dict:
    """Read and validate a report written by :func:`write_bench_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchReportError(
                f"bench report {path} is not valid JSON: {exc}") from exc
    validate_bench_report(report)
    return report
