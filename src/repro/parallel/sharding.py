"""Load-aware stream sharding with deterministic work stealing.

The fleet used to deal streams round-robin, which balances *counts* but
not *load*: one long stream pins its worker while the others idle, and
BENCH_pipeline.json showed the multiprocess fleet losing to a single
batched process partly for that reason.  :func:`plan_shards` fixes the
balance ahead of dispatch, in **virtual time**:

1. Streams are dealt round-robin into initial shards (the legacy
   layout, so a one-worker plan is exactly the old execution order).
2. A discrete-event simulation then runs the shards forward on virtual
   load counters -- each stream costs its frame count, nothing reads a
   wall clock.  Whenever a worker's queue runs dry it *steals* the tail
   task of the most-loaded victim's queue (the classic work-stealing
   deque end -- the victim is chosen by backlog, the task is whatever
   sits at its tail), and the steal is logged with its virtual
   timestamp.

Because every steal decision is a pure function of ``(loads, workers,
seed)`` -- ties broken by a seed-derived worker permutation, never by
scheduling or wall clock -- the plan is bit-identical on every machine
and at every worker count, and so is anything downstream of it.  The
executed results never depend on the plan anyway (streams are seeded
individually and merged by submission index; the fleet suite pins
that), so stealing only ever moves *where* work runs, not *what* it
produces.

:class:`ShardPlan` also carries the numbers the scaling sweep reports:
``critical_path`` (the most-loaded worker after stealing -- the virtual
makespan) and ``balance`` (perfect-split load over critical path, the
parallel efficiency the plan achieves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Steal:
    """One work-steal event in the virtual-time plan simulation."""

    virtual_time: int   # load units consumed by the thief when it stole
    thief: int          # worker that ran dry
    victim: int         # worker whose queue tail was raided
    task_index: int     # submission index of the stolen stream


@dataclass
class ShardPlan:
    """The deterministic execution layout for one dispatch round.

    ``assignments[w]`` lists task indices in the order worker ``w``
    will run them (steals already applied); ``initial[w]`` is the
    pre-steal round-robin deal, kept for diagnostics and the regression
    tests that pin the planner.
    """

    workers: int
    loads: List[int]
    assignments: List[List[int]]
    initial: List[List[int]]
    steals: List[Steal] = field(default_factory=list)

    @property
    def total_load(self) -> int:
        return sum(self.loads)

    @property
    def worker_loads(self) -> List[int]:
        return [sum(self.loads[i] for i in shard)
                for shard in self.assignments]

    @property
    def critical_path(self) -> int:
        """Virtual makespan: the most-loaded worker's total."""
        return max(self.worker_loads, default=0)

    @property
    def balance(self) -> float:
        """Parallel efficiency of the plan in ``(0, 1]``: the perfect
        ``total/workers`` split over the achieved critical path."""
        critical = self.critical_path
        if critical == 0:
            return 1.0
        return self.total_load / (self.workers * critical)

    def speedup(self) -> float:
        """Virtual-time speedup over one worker (``total / critical``)."""
        critical = self.critical_path
        return self.total_load / critical if critical else 1.0


def _steal_order(workers: int, seed: int) -> List[int]:
    """Seed-derived worker permutation used to break victim ties --
    the only entropy in the planner, and it is explicit."""
    return [int(w) for w in
            np.random.default_rng(seed).permutation(workers)]


def plan_shards(loads: Sequence[int], workers: int, seed: int = 0,
                steal: bool = True,
                steal_order: Sequence[int] = None) -> ShardPlan:
    """Plan shard assignments for ``loads`` over ``workers``.

    Parameters
    ----------
    loads:
        Virtual cost of each task (the fleet uses frame counts), in
        submission order.
    workers:
        Worker count; at 1 the plan is the submission order unchanged.
    seed:
        Seeds the victim tie-break permutation.
    steal:
        ``False`` returns the plain round-robin deal (the legacy
        layout) with no steal simulation.
    steal_order:
        Explicit tie-break permutation overriding the seeded one -- the
        determinism suite forces adversarial orders through here and
        asserts results never change.
    """
    if workers <= 0:
        raise ConfigurationError(f"workers must be positive: {workers}")
    loads = [int(load) for load in loads]
    if any(load < 0 for load in loads):
        raise ConfigurationError(f"loads must be non-negative: {loads}")
    initial: List[List[int]] = [[] for _ in range(workers)]
    for index in range(len(loads)):
        initial[index % workers].append(index)
    if not steal or workers == 1 or not loads:
        return ShardPlan(workers=workers, loads=loads,
                         assignments=[list(shard) for shard in initial],
                         initial=initial, steals=[])

    if steal_order is None:
        order = _steal_order(workers, seed)
    else:
        order = [int(w) for w in steal_order]
        if sorted(order) != list(range(workers)):
            raise ConfigurationError(
                f"steal_order must permute range({workers}): {order}")
    rank = {worker: position for position, worker in enumerate(order)}

    queues = [list(shard) for shard in initial]   # pending, FIFO
    executed: List[List[int]] = [[] for _ in range(workers)]
    clocks = [0] * workers                        # virtual load consumed
    steals: List[Steal] = []

    def run_next(worker: int) -> bool:
        if not queues[worker]:
            return False
        task = queues[worker].pop(0)
        executed[worker].append(task)
        clocks[worker] += loads[task]
        return True

    # Simulate in rounds: the globally least-loaded worker acts next
    # (ties by worker index), running its queue head or stealing.  All
    # state is integer load counters, so the trace is exact.
    while any(queues[w] for w in range(workers)):
        worker = min(range(workers), key=lambda w: (clocks[w], w))
        if run_next(worker):
            continue
        # worker is idle: steal the tail of the heaviest backlog
        victims = [w for w in range(workers) if queues[w]]
        victim = max(
            victims,
            key=lambda w: (sum(loads[i] for i in queues[w]), -rank[w]))
        task = queues[victim].pop()               # deque tail
        steals.append(Steal(virtual_time=clocks[worker], thief=worker,
                            victim=victim, task_index=task))
        executed[worker].append(task)
        clocks[worker] += loads[task]

    return ShardPlan(workers=workers, loads=loads, assignments=executed,
                     initial=initial, steals=steals)
