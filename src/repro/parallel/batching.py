"""Batched feature extraction.

:class:`BatchedFeatureExtractor` wraps a VAE-style embedder (anything with
``sample_embed(frames, rng=...)`` or ``embed(frames)``) and turns a stack of
frames into a ``(B, D)`` latent matrix, chunking large stacks to bound peak
memory.

Two modes, mirroring :meth:`repro.core.drift_inspector.DriftInspector\
.observe_batch`:

- the default batched mode embeds whole chunks in one embedder call -- the
  fast path, whose encoder matmuls may differ from per-frame encoding in
  low-order mantissa bits on blocked BLAS backends;
- ``exact=True`` embeds frame by frame, bit-identical to ``B`` single-frame
  calls, for pipelines that require sequential-exact results.

In both modes the posterior-sampling RNG consumes its bit stream exactly as
per-frame calls would (numpy generators fill arrays from the same stream),
so switching modes never desynchronises downstream seeded components.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng


class BatchedFeatureExtractor:
    """Chunked batched embedding front-end.

    Parameters
    ----------
    embedder:
        Object exposing ``sample_embed(frames, rng=...)`` (preferred:
        posterior sampling keeps extracted features distributed like the
        reference sample ``Sigma_T``) or plain ``embed(frames)``.
    chunk_size:
        Maximum frames per embedder call in batched mode.
    exact:
        Embed frame by frame, reproducing per-frame extraction bit-exactly.
    seed:
        Seed for the posterior-sampling stream.  The extractor owns a
        dedicated generator so shared embedders do not couple the streams of
        unrelated components.
    """

    def __init__(self, embedder: object, chunk_size: int = 256,
                 exact: bool = False, seed: SeedLike = None) -> None:
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive: {chunk_size}")
        self.embedder = embedder
        self.chunk_size = chunk_size
        self.exact = exact
        self._rng = ensure_rng(seed)

    def _embed_chunk(self, frames: np.ndarray) -> np.ndarray:
        sample_embed = getattr(self.embedder, "sample_embed", None)
        if sample_embed is not None:
            try:
                latent = sample_embed(frames, rng=self._rng)
            except TypeError:
                latent = sample_embed(frames)
        else:
            latent = self.embedder.embed(frames)
        return np.asarray(latent, dtype=np.float64).reshape(
            frames.shape[0], -1)

    def extract(self, frames: np.ndarray) -> np.ndarray:
        """Latents for a ``(B, ...)`` frame stack (a single frame is
        promoted to a batch of one); returns ``(B, D)``."""
        arr = np.asarray(frames, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        n = arr.shape[0]
        if n == 0:
            return np.empty((0, 0), dtype=np.float64)
        step = 1 if self.exact else self.chunk_size
        blocks = [self._embed_chunk(arr[start:start + step])
                  for start in range(0, n, step)]
        return np.vstack(blocks)

    __call__ = extract
