"""Deterministic batched / sharded execution (``repro.parallel``).

The package scales the per-frame algorithms to fleet workloads without
giving up reproducibility:

- :mod:`repro.parallel.batching` -- :class:`BatchedFeatureExtractor`, a
  chunked batched front-end for VAE-style embedders.
- :mod:`repro.parallel.fleet` -- :class:`FleetExecutor`, which runs many
  camera pipelines across ``multiprocessing`` workers with per-stream seed
  derivation, periodic checkpoints, crash recovery and a deterministic
  merge.
- :mod:`repro.parallel.report` -- the ``BENCH_pipeline.json`` schema and
  its validator, shared by the perf harness and the CI smoke check.

Determinism contract: a fleet run's merged output is a pure function of
``(tasks, factory, base_seed)`` -- independent of the worker count, the
batch size, checkpoint cadence, crash/restart timing and OS scheduling.
The pipeline layer guarantees the per-stream half of this contract
(``process_batched`` is bit-identical to ``process`` for any batch size);
the executor adds per-stream seed isolation and a submission-order merge.
"""

from repro.parallel.batching import BatchedFeatureExtractor
from repro.parallel.fleet import (
    FleetExecutor,
    FleetTask,
    FleetTaskResult,
    SimulatedWorkerCrash,
    fleet_telemetry,
    stream_seed,
)
from repro.parallel.report import (
    BENCH_SCHEMA,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)

__all__ = [
    "BatchedFeatureExtractor",
    "FleetExecutor",
    "FleetTask",
    "FleetTaskResult",
    "SimulatedWorkerCrash",
    "fleet_telemetry",
    "stream_seed",
    "BENCH_SCHEMA",
    "load_bench_report",
    "validate_bench_report",
    "write_bench_report",
]
