"""Deterministic batched / sharded execution (``repro.parallel``).

The package scales the per-frame algorithms to fleet workloads without
giving up reproducibility:

- :mod:`repro.parallel.batching` -- :class:`BatchedFeatureExtractor`, a
  chunked batched front-end for VAE-style embedders.
- :mod:`repro.parallel.transport` -- frame transports between the fleet
  parent and its workers: :class:`FrameRing` (shared-memory slots,
  zero-copy worker views, explicit ownership handoff) and
  :class:`PipeChannel` (the legacy pickled-pipe path, kept as the
  equivalence reference).
- :mod:`repro.parallel.sharding` -- :func:`plan_shards`, load-aware
  stream sharding with deterministic virtual-time work stealing; every
  plan is a pure function of ``(loads, workers, seed)``.
- :mod:`repro.parallel.fleet` -- :class:`FleetExecutor`, which runs many
  camera pipelines across ``multiprocessing`` workers with per-stream seed
  derivation, batched kernels inside each worker, periodic checkpoints,
  crash recovery and a deterministic merge.
- :mod:`repro.parallel.report` -- the ``BENCH_pipeline.json`` schema
  (v2, with the fleet scaling sweep), its validator and the v1 upgrade
  shim, shared by the perf harness and the CI smoke check.

Determinism contract: a fleet run's merged output is a pure function of
``(tasks, factory, base_seed)`` -- independent of the worker count, the
transport, the shard plan and its steal order, the batch size,
checkpoint cadence, crash/restart timing and OS scheduling.  The
pipeline layer guarantees the per-stream half of this contract
(``process_batched`` is bit-identical to ``process`` for any batch size);
the executor adds per-stream seed isolation and a submission-order merge.
"""

from repro.parallel.batching import BatchedFeatureExtractor
from repro.parallel.fleet import (
    FleetExecutor,
    FleetTask,
    FleetTaskResult,
    SimulatedWorkerCrash,
    fleet_telemetry,
    stream_seed,
    task_load,
)
from repro.parallel.report import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    load_bench_report,
    upgrade_bench_report,
    validate_bench_report,
    write_bench_report,
)
from repro.parallel.sharding import ShardPlan, Steal, plan_shards
from repro.parallel.transport import (
    TRANSPORTS,
    BlockMeta,
    FrameRing,
    PipeChannel,
    make_transport,
)

__all__ = [
    "BatchedFeatureExtractor",
    "FleetExecutor",
    "FleetTask",
    "FleetTaskResult",
    "SimulatedWorkerCrash",
    "fleet_telemetry",
    "stream_seed",
    "task_load",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "load_bench_report",
    "upgrade_bench_report",
    "validate_bench_report",
    "write_bench_report",
    "ShardPlan",
    "Steal",
    "plan_shards",
    "TRANSPORTS",
    "BlockMeta",
    "FrameRing",
    "PipeChannel",
    "make_transport",
]
