"""The :class:`Recorder` -- one handle tying metrics, spans and events.

Design constraints (these are the test surface, not aspirations):

- **Passive.**  A recorder never touches RNG streams, never charges the
  simulated clock and never mutates pipeline inputs, so attaching one (or
  not) cannot change a run's output.  The :class:`NullRecorder` makes the
  disabled case a handful of no-op calls.
- **Deterministic.**  Timestamps come from an injectable ``elapsed_ms``
  clock (bind the pipeline's :class:`~repro.sim.clock.SimulatedClock` for
  reproducible traces; an unbound recorder stamps ``0.0``).  Events carry
  a per-category sequence number, so the *logical* event stream -- drift
  detections, deployments, guard interventions, retries, breaker
  transitions -- is identical across sequential, batched and fleet
  execution; only ``timing``-category events (spans) depend on the
  execution strategy.
- **Rollback-aware.**  :meth:`state_dict` / :meth:`load_state_dict`
  capture and restore the whole recorder cheaply (events are append-only,
  so restore truncates), letting the pipeline's optimistic batched path
  roll telemetry back exactly as it rolls back the inspector and clock.

Sinks are drained explicitly: :meth:`flush` appends every not-yet-flushed
event to the attached :class:`JsonlSink` (or any ``write_events``
object).  Draining lazily -- rather than on emission -- is what keeps the
JSONL stream consistent with rollbacks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: Event categories.
LOGICAL = "logical"
TIMING = "timing"

#: Fields that depend on when/how a run executed rather than on what it
#: logically did; stripped by :func:`logical_events` for comparisons.
TIMING_FIELDS = ("ts_ms",)


def logical_events(events_or_snapshot: object,
                   strip: Sequence[str] = TIMING_FIELDS) -> List[dict]:
    """The logical event stream, normalized for cross-mode comparison.

    Accepts a raw event list or a :meth:`Recorder.snapshot` dict; filters
    to ``cat == "logical"`` and drops the fields named by ``strip``
    (timestamps by default -- batched execution admits frames ahead of
    observing them, so simulated timestamps legitimately differ while the
    events themselves must not).
    """
    if isinstance(events_or_snapshot, dict):
        events = events_or_snapshot.get("events", [])
    else:
        events = events_or_snapshot
    return [{key: value for key, value in event.items()
             if key not in strip}
            for event in events if event.get("cat") == LOGICAL]


class JsonlSink:
    """Appends events to a file, one JSON document per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0

    def write_events(self, events: Iterable[dict]) -> int:
        count = 0
        with open(self.path, "a", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
                count += 1
        self.written += count
        return count


class MemorySink:
    """Collects flushed events in memory (tests, in-process consumers)."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def write_events(self, events: Iterable[dict]) -> int:
        batch = list(events)
        self.events.extend(batch)
        return len(batch)


class Recorder:
    """Live telemetry for one run: metrics + tracer + event stream.

    Parameters
    ----------
    clock:
        Any object with an ``elapsed_ms`` property.  ``None`` leaves the
        recorder unbound (timestamps are ``0.0``); the pipeline binds its
        own simulated clock to an unbound recorder on attach.
    sink:
        Optional event sink (``write_events(events)``), drained by
        :meth:`flush`.
    keep_events:
        ``False`` drops events after counting them: aggregates, sequence
        numbers and the summary still advance, but :attr:`events` stays
        empty and a sink receives nothing.  Use for long-running fleets
        where per-event retention is too expensive.
    """

    enabled = True

    def __init__(self, clock: Optional[object] = None,
                 sink: Optional[object] = None,
                 keep_events: bool = True) -> None:
        self.clock = clock
        self.sink = sink
        self.keep_events = keep_events
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock, on_close=self._on_span_close)
        self._events: List[dict] = []
        self._seq: Dict[str, int] = {LOGICAL: 0, TIMING: 0}
        self._by_kind: Dict[str, int] = {}
        self._span_stats: Dict[str, Dict[str, float]] = {}
        self._flushed = 0

    # ------------------------------------------------------------------
    # clock binding
    # ------------------------------------------------------------------
    def bind_clock(self, clock: object) -> None:
        """Attach ``clock`` if the recorder is still unbound (the pipeline
        calls this so ``Recorder()`` just works with simulated time)."""
        if self.clock is None:
            self.clock = clock
            self.tracer.clock = clock

    def _now(self) -> float:
        if self.clock is None:
            return 0.0
        return float(self.clock.elapsed_ms)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def event(self, kind: str, cat: str = LOGICAL, **fields: object) -> dict:
        """Record one event; returns the event dict."""
        seq = self._seq[cat]
        self._seq[cat] = seq + 1
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        record = {"seq": seq, "cat": cat, "kind": kind,
                  "ts_ms": self._now(), **fields}
        if self.keep_events:
            self._events.append(record)
        return record

    def _on_span_close(self, span: Span) -> None:
        stats = self._span_stats.get(span.name)
        duration = span.duration_ms
        if stats is None:
            self._span_stats[span.name] = {
                "count": 1, "total_ms": duration, "max_ms": duration}
        else:
            stats["count"] += 1
            stats["total_ms"] += duration
            if duration > stats["max_ms"]:
                stats["max_ms"] = duration
        self.event("span", cat=TIMING, name=span.name,
                   parent=span.parent, depth=span.depth,
                   start_ms=span.start_ms, dur_ms=duration)

    @property
    def events(self) -> List[dict]:
        return self._events

    # ------------------------------------------------------------------
    # instruments (delegate to the registry)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None) -> Histogram:
        return self.metrics.histogram(name, boundaries)

    def span(self, name: str):
        return self.tracer.span(name)

    # ------------------------------------------------------------------
    # rollback support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Cheap restore point (events are append-only: only the length
        is captured; aggregates are copied)."""
        return {"n_events": len(self._events),
                "seq": dict(self._seq),
                "by_kind": dict(self._by_kind),
                "metrics": self.metrics.state_dict(),
                "span_stats": {name: dict(stats)
                               for name, stats in self._span_stats.items()},
                "flushed": self._flushed}

    def load_state_dict(self, state: dict) -> None:
        """Roll back to a :meth:`state_dict` restore point."""
        del self._events[int(state["n_events"]):]
        self._seq = {str(k): int(v) for k, v in state["seq"].items()}
        self._by_kind = {str(k): int(v)
                         for k, v in state["by_kind"].items()}
        self.metrics.load_state_dict(state["metrics"])
        self._span_stats = {
            str(name): {"count": int(stats["count"]),
                        "total_ms": float(stats["total_ms"]),
                        "max_ms": float(stats["max_ms"])}
            for name, stats in state["span_stats"].items()}
        self._flushed = min(int(state["flushed"]), len(self._events))

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def flush(self, sink: Optional[object] = None) -> int:
        """Drain not-yet-flushed events to ``sink`` (or the attached one);
        returns how many events were written."""
        target = sink if sink is not None else self.sink
        if target is None:
            return 0
        pending = self._events[self._flushed:]
        if not pending:
            return 0
        written = target.write_events(pending)
        self._flushed = len(self._events)
        return written

    def summary(self) -> dict:
        """The end-of-run aggregate (validated by
        :func:`repro.obs.report.validate_telemetry`)."""
        snapshot = self.metrics.snapshot()
        return {
            "schema_version": 1,
            "events": {
                "total": self._seq[LOGICAL] + self._seq[TIMING],
                "logical": self._seq[LOGICAL],
                "timing": self._seq[TIMING],
                "by_kind": {name: self._by_kind[name]
                            for name in sorted(self._by_kind)},
            },
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "spans": {name: {"count": int(stats["count"]),
                             "total_ms": stats["total_ms"],
                             "max_ms": stats["max_ms"]}
                      for name, stats in sorted(self._span_stats.items())},
        }

    def snapshot(self) -> dict:
        """Everything a consumer needs, as plain picklable data: the
        summary plus the retained event stream."""
        return {"summary": self.summary(), "events": list(self._events)}


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


class _NullSpan:
    """Reentrant no-op span context."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullRecorder:
    """The disabled recorder: every call is a no-op.

    The pipeline defaults to a shared :data:`NULL_RECORDER` instance, so
    running without observability costs a few attribute lookups per frame
    and provably cannot alter behaviour (the no-op equivalence property
    test pins this).
    """

    enabled = False

    _instrument = _NullInstrument()
    _span = _NullSpan()

    def bind_clock(self, clock: object) -> None:
        pass

    def event(self, kind: str, cat: str = LOGICAL, **fields: object) -> None:
        return None

    def counter(self, name: str) -> _NullInstrument:
        return self._instrument

    def gauge(self, name: str) -> _NullInstrument:
        return self._instrument

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None
                  ) -> _NullInstrument:
        return self._instrument

    def span(self, name: str) -> _NullSpan:
        return self._span

    def state_dict(self) -> None:
        return None

    def load_state_dict(self, state: object) -> None:
        pass

    def flush(self, sink: Optional[object] = None) -> int:
        return 0

    def summary(self) -> None:
        return None

    def snapshot(self) -> None:
        return None


#: Shared disabled recorder (stateless, safe to share across pipelines).
NULL_RECORDER = NullRecorder()
