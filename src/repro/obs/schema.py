"""A dependency-free JSON-Schema-subset walker shared by report contracts.

Both machine-readable report formats in the repo -- the
``BENCH_pipeline.json`` performance report (:mod:`repro.parallel.report`)
and the telemetry summary (:mod:`repro.obs.report`) -- validate their
documents with this walker.  It implements the subset of JSON Schema the
contracts use: ``type``, ``required``, ``properties``,
``additionalProperties`` (``False`` or a sub-schema for map-like objects),
``items``, ``minItems``, ``enum``, ``minimum``, ``maximum``,
``exclusiveMinimum``.

When the ``jsonschema`` package is importable, callers may additionally
cross-check with :func:`cross_check` to guard the hand-rolled walker.
"""

from __future__ import annotations

from typing import List, Optional, Type

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    # bool is an int subclass in Python; a schema integer must reject it
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "null": lambda v: v is None,
}


def walk_schema(value: object, schema: dict, path: str,
                errors: List[str]) -> None:
    """Append a message to ``errors`` for every way ``value`` violates
    ``schema``; ``path`` locates the value inside the document."""
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "maximum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")
    if "exclusiveMinimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value <= schema["exclusiveMinimum"]:
            errors.append(
                f"{path}: {value} <= exclusiveMinimum "
                f"{schema['exclusiveMinimum']}")
    if isinstance(value, dict):
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        if additional is False:
            for name in value:
                if name not in properties:
                    errors.append(f"{path}: unexpected key {name!r}")
        elif isinstance(additional, dict):
            # map-like object: free keys, uniform value schema
            for name, entry in value.items():
                if name not in properties:
                    walk_schema(entry, additional, f"{path}.{name}", errors)
        for name, subschema in properties.items():
            if name in value:
                walk_schema(value[name], subschema, f"{path}.{name}", errors)
    elif isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                f"{path}: {len(value)} items < minItems "
                f"{schema['minItems']}")
        if "items" in schema:
            for i, entry in enumerate(value):
                walk_schema(entry, schema["items"], f"{path}[{i}]", errors)


def validate_document(document: object, schema: dict, label: str,
                      error_cls: Type[Exception]) -> None:
    """Raise ``error_cls`` unless ``document`` satisfies ``schema``."""
    errors: List[str] = []
    walk_schema(document, schema, "$", errors)
    if errors:
        raise error_cls(
            f"{label} violates schema:\n  " + "\n  ".join(errors))


def cross_check(document: object, schema: dict, label: str,
                error_cls: Type[Exception]) -> Optional[bool]:
    """Re-validate with the ``jsonschema`` package when it is installed
    (guards the hand-rolled walker); returns ``None`` when unavailable."""
    try:
        import jsonschema
    except ImportError:
        return None
    try:
        jsonschema.validate(document, schema)
    except jsonschema.ValidationError as exc:
        raise error_cls(
            f"{label} violates schema (jsonschema): {exc.message}") from exc
    return True
