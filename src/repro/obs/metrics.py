"""Deterministic metric primitives: counters, gauges, histograms.

All three instruments are pure accumulators -- they never read wall-clock
time or random state, so recording them cannot perturb a pipeline run and
their values are a pure function of the observations fed in.  Histograms
use *fixed* bucket boundaries chosen at creation time (Prometheus-style
cumulative-free buckets): the same observation stream always lands in the
same buckets regardless of arrival order or batching.

:class:`MetricsRegistry` is the namespace: instruments are created lazily
by name, re-requests return the existing instrument, and a name can only
ever hold one instrument kind.  Snapshots serialize in sorted-name order
so two registries fed the same observations compare equal as plain dicts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Default histogram boundaries for millisecond-scale durations.
DEFAULT_MS_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                      250.0, 500.0, 1000.0)

#: Default histogram boundaries for probabilities / p-values.
DEFAULT_P_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


class Counter:
    """A monotonically non-decreasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram: ``len(boundaries) + 1`` buckets.

    An observation ``v`` lands in bucket ``i`` when
    ``boundaries[i-1] < v <= boundaries[i]`` (the final bucket is the
    ``> boundaries[-1]`` overflow).  Boundaries are frozen at creation so
    bucketing is independent of the observation stream.
    """

    def __init__(self, name: str,
                 boundaries: Sequence[float] = DEFAULT_MS_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one boundary")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} boundaries must be strictly "
                f"increasing: {bounds}")
        self.name = name
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self.total += 1
        self.sum += value

    def _bucket(self, value: float) -> int:
        """Index of the half-open bucket ``(b[i-1], b[i]]`` holding
        ``value`` (``bisect_left`` over the boundaries)."""
        lo, hi = 0, len(self.boundaries)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.boundaries[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe_many(self, values: Iterable[float]) -> None:
        """Observe every value; state ends identical to a scalar loop."""
        for value in values:
            self.observe(float(value))


class MetricsRegistry:
    """Named instrument namespace with get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _claim(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other, table in owners.items():
            if other != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other}")

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._claim(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._claim(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None) -> Histogram:
        existing = self._histograms.get(name)
        if existing is not None:
            if (boundaries is not None
                    and tuple(float(b) for b in boundaries)
                    != existing.boundaries):
                raise ConfigurationError(
                    f"histogram {name!r} already registered with boundaries "
                    f"{existing.boundaries}")
            return existing
        self._claim(name, "histogram")
        self._histograms[name] = Histogram(
            name, boundaries if boundaries is not None else DEFAULT_MS_BUCKETS)
        return self._histograms[name]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, keys sorted."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {"boundaries": list(h.boundaries),
                       "counts": list(h.counts),
                       "total": h.total,
                       "sum": h.sum}
                for name, h in sorted(self._histograms.items())},
        }

    def state_dict(self) -> dict:
        """Restorable snapshot (used by the pipeline's optimistic batched
        path to roll metrics back alongside the inspector and clock)."""
        return self.snapshot()

    def load_state_dict(self, state: dict) -> None:
        """Restore instrument values captured by :meth:`state_dict`.

        Instruments present in the registry but absent from the snapshot
        are reset to zero (they did not exist at capture time).
        """
        counters = state.get("counters", {})
        for name, counter in self._counters.items():
            counter.value = float(counters.get(name, 0.0))
        gauges = state.get("gauges", {})
        for name, gauge in self._gauges.items():
            gauge.value = float(gauges.get(name, 0.0))
        histograms = state.get("histograms", {})
        for name, histogram in self._histograms.items():
            entry = histograms.get(name)
            if entry is None:
                histogram.counts = [0] * (len(histogram.boundaries) + 1)
                histogram.total = 0
                histogram.sum = 0.0
            else:
                histogram.counts = [int(c) for c in entry["counts"]]
                histogram.total = int(entry["total"])
                histogram.sum = float(entry["sum"])
