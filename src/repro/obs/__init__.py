"""Deterministic observability (``repro.obs``).

A metrics registry (counters, gauges, fixed-bucket histograms), a
span-based tracer over an injectable clock, a JSONL event sink, and a
schema-validated end-of-run summary -- designed so that *recording
telemetry can never change a run*:

- the :class:`NullRecorder` (the pipeline default) makes disabled
  observability a handful of no-ops, and an enabled :class:`Recorder` is
  passive -- it reads the simulated clock but never charges it, and never
  touches an RNG stream;
- timestamps come from any object with an ``elapsed_ms`` property
  (:class:`~repro.sim.clock.SimulatedClock` for reproducible traces,
  :class:`WallClock` for real durations);
- events are split into a **logical** stream (drift detections, model
  deployments, guard interventions, retries, breaker transitions) that is
  identical across sequential, batched and fleet execution under one
  seed, and a **timing** stream (spans) that may legitimately differ;
- the recorder can be snapshotted and rolled back in O(aggregates), so
  the pipeline's optimistic batched path rewinds telemetry exactly as it
  rewinds the drift inspector and the clock.
"""

from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    DEFAULT_P_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    LOGICAL,
    NULL_RECORDER,
    TIMING,
    JsonlSink,
    MemorySink,
    NullRecorder,
    Recorder,
    logical_events,
)
from repro.obs.report import (
    TELEMETRY_SCHEMA,
    format_summary,
    load_telemetry,
    merge_telemetry,
    validate_telemetry,
    write_telemetry,
)
from repro.obs.tracer import Span, Tracer, WallClock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_P_BUCKETS",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "JsonlSink",
    "MemorySink",
    "logical_events",
    "LOGICAL",
    "TIMING",
    "Span",
    "Tracer",
    "WallClock",
    "TELEMETRY_SCHEMA",
    "validate_telemetry",
    "write_telemetry",
    "load_telemetry",
    "merge_telemetry",
    "format_summary",
]
