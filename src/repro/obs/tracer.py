"""Span-based stage tracing over an injectable clock.

The tracer measures *where time goes* without owning a notion of time
itself: any object exposing an ``elapsed_ms`` property is a clock, so
tests and pipelines trace against :class:`repro.sim.clock.SimulatedClock`
(bit-reproducible spans) while the experiments runner traces against
:class:`WallClock` (real durations).  Spans nest: entering a span while
another is open records the parent name and depth, giving the
DI -> MSBI -> retrain loop its stage breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional


class WallClock:
    """Real time as an ``elapsed_ms`` clock (``time.perf_counter``)."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    @property
    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self._start) * 1000.0


@dataclass
class Span:
    """One completed (or still-open) stage timing."""

    name: str
    start_ms: float
    depth: int
    parent: Optional[str] = None
    end_ms: Optional[float] = None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms


class Tracer:
    """Nested stage timing against a pluggable ``elapsed_ms`` clock.

    ``on_close`` (when given) receives every completed :class:`Span` --
    the :class:`~repro.obs.recorder.Recorder` uses it to fold spans into
    its event stream and per-name aggregates.
    """

    def __init__(self, clock: Optional[object] = None,
                 on_close: Optional[Callable[[Span], None]] = None) -> None:
        self.clock = clock
        self.on_close = on_close
        self._stack: List[Span] = []

    def _now(self) -> float:
        if self.clock is None:
            return 0.0
        return float(self.clock.elapsed_ms)

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str) -> "_SpanContext":
        """Context manager timing a stage; yields the open :class:`Span`."""
        return _SpanContext(self, name)

    def _open(self, name: str) -> Span:
        parent = self._stack[-1].name if self._stack else None
        span = Span(name=name, start_ms=self._now(),
                    depth=len(self._stack), parent=parent)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            # unwinding out of order (an exception escaped a nested span):
            # pop until we find it so the stack cannot corrupt
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
        if self._stack:
            self._stack.pop()
        span.end_ms = self._now()
        if self.on_close is not None:
            self.on_close(span)


class _SpanContext:
    def __init__(self, tracer: Tracer, name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._span)
